"""Bootstrap cost (§4.4): how long a new subscriber takes to join as a
function of the publisher's dataset size, and the payoff of partial
(model-scoped) bootstraps (§4.3)."""

from __future__ import annotations

import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

SIZES = [500, 2000, 8000]


def build(n_objects: int):
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    @pub.model(publish=["label"])
    class Widget(Model):
        label = Field(str)

    for i in range(n_objects):
        User.create(name=f"u{i}")
    for i in range(n_objects // 10):
        Widget.create(label=f"w{i}")

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    @sub.model(subscribe={"from": "pub", "fields": ["label"]}, name="Widget")
    class SubWidget(Model):
        label = Field(str)

    return eco, pub, sub


def test_bootstrap_scales_linearly(benchmark):
    rows = []
    rates = []
    for size in SIZES:
        eco, pub, sub = build(size)
        start = time.perf_counter()
        applied = bootstrap_subscriber(sub)
        elapsed = time.perf_counter() - start
        rate = applied / elapsed
        rates.append(rate)
        rows.append([size, applied, f"{elapsed * 1000:.1f}", f"{rate:,.0f}"])
        assert sub.registry["User"].count() == size
    emit(format_table(
        "Bootstrap cost vs publisher dataset size (§4.4)",
        ["objects (users)", "bulk-applied", "elapsed ms", "objects/s"],
        rows,
    ))
    # Roughly linear: the per-object rate stays within 4x across a 16x
    # dataset growth.
    assert max(rates) < 4 * min(rates)

    eco, pub, sub = build(500)
    benchmark(lambda: bootstrap_subscriber(sub))


def test_partial_bootstrap_is_cheaper(benchmark):
    eco, pub, sub = build(4000)
    start = time.perf_counter()
    applied_partial = bootstrap_subscriber(sub, "pub", models=["Widget"])
    partial_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    applied_full = bootstrap_subscriber(sub)
    full_elapsed = time.perf_counter() - start
    emit([
        "== Partial vs full bootstrap (4000 users + 400 widgets) ==",
        f"  partial (Widget only): {applied_partial} objects in "
        f"{partial_elapsed * 1000:.1f} ms",
        f"  full:                  {applied_full} objects in "
        f"{full_elapsed * 1000:.1f} ms",
    ])
    assert applied_partial < applied_full
    assert partial_elapsed < full_elapsed

    benchmark(lambda: bootstrap_subscriber(sub, "pub", models=["Widget"]))
