"""Ablation: dependency-hash space size (§4.2 "Scaling the Version Store").

Synapse hashes dependency names into a fixed space for O(1) version-store
memory; collisions serialise unrelated objects. The paper notes that a
1-entry space is equivalent to global ordering. We sweep the space size
and measure (a) subscriber parallelism via the DES and (b) version-store
memory (key count).
"""

from __future__ import annotations

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.runtime.simulation import SimMessage, capture_messages, simulate_subscriber
from repro.versionstore import DependencyHasher
from repro.workloads import SocialWorkload, build_social_publisher

SPACES = [1, 2, 8, 64, 1024, None]  # None = unhashed (identity)
MESSAGES = 800
USERS = 200
CALLBACK = 0.05
WORKERS = 100


def captured(space):
    eco = Ecosystem(hasher=DependencyHasher(space=space))
    service, User, Post, Comment = build_social_publisher(eco, ephemeral=True)
    drain = capture_messages(eco, "social")
    workload = SocialWorkload(service, User, Post, Comment, users=USERS)
    workload.run(MESSAGES)
    keys = service.publisher_version_store.kv.total_keys()
    return [SimMessage.from_message(m, "causal") for m in drain()], keys


def test_ablation_dependency_hash_space(benchmark):
    rows = []
    throughputs = {}
    for space in SPACES:
        messages, keys = captured(space)
        result = simulate_subscriber(messages, workers=WORKERS,
                                     service_time=CALLBACK)
        label = str(space) if space is not None else "unhashed"
        throughputs[space] = result.throughput
        rows.append([label, keys, f"{result.throughput:,.1f}"])
    emit(format_table(
        "Ablation — dependency hash space vs memory and parallelism "
        f"({WORKERS} workers, {int(CALLBACK * 1000)} ms callback)",
        ["hash space", "version-store keys", "throughput msg/s"],
        rows,
    ))

    # Space=1 degenerates to global ordering: ~1/callback.
    assert throughputs[1] < 1.5 / CALLBACK
    # Larger spaces monotonically recover parallelism; unhashed best.
    assert throughputs[None] > 10 * throughputs[1]
    assert throughputs[1] < throughputs[8] < throughputs[64] \
        < throughputs[1024] < throughputs[None]
    # Memory really is bounded by the space.
    _msgs, keys_8 = captured(8)
    assert keys_8 <= 8

    messages, _ = captured(64)
    benchmark(lambda: simulate_subscriber(messages, workers=WORKERS,
                                          service_time=CALLBACK))
