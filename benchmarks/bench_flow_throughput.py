"""Flow-control apply throughput: batching + coalescing vs. the
single-message path.

A hot-object update workload (a few objects absorbing many writes in
per-object bursts — the shape §4.4's overload anecdotes describe) is
pre-filled into a causal subscriber queue, then the drain is timed
three ways. Bursts are object-major because causal sessions chain each
write to the session's previous write: interleaving objects makes every
message depend on its neighbour's object and the union-safety scan
rightly refuses to coalesce any of them.

- **disabled** — flow control off: one pop, one dependency check, one
  engine write per message (the pre-PR pipeline);
- **batched** — ``pop_many`` + ``process_batch`` group commit, but no
  coalescing: same message count, one engine transaction per batch;
- **batched+coalesced** — the full subsystem: queued same-object writes
  collapse before the drain even starts, and the survivors apply in
  group-committed batches.

Throughput is *publisher updates replicated per second* (every variant
must converge each hot object to the same final score, so the work
delivered is identical). The acceptance bar: batched+coalesced ≥ 2x
disabled. Results also land in ``BENCH_flow.json`` at the repo root so
CI can archive them; set ``REPRO_BENCH_QUICK=1`` for the small workload.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
HOT_OBJECTS = 16
ROUNDS = 25 if QUICK else 150  # updates per hot object
UPDATES = HOT_OBJECTS * ROUNDS

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_flow.json")

VARIANTS = [
    ("disabled", None),
    ("batched", {"coalesce": False}),
    ("batched+coalesced", {"coalesce": True}),
]


def _build(flow_kwargs):
    eco = Ecosystem()
    if flow_kwargs is not None:
        from repro.runtime.flow import FlowConfig

        eco.enable_flow(FlowConfig(batch_max=16, **flow_kwargs))
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"], name="Item")
    class Item(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="Item")
    class SubItem(Model):
        name = Field(str)
        score = Field(int, default=0)

    items = []
    with pub.controller():
        for i in range(HOT_OBJECTS):
            items.append(Item.create(name=f"hot-{i}", score=0))
    sub.subscriber.drain()
    return eco, pub, sub, items, SubItem


def _run_variant(name, flow_kwargs):
    eco, pub, sub, items, SubItem = _build(flow_kwargs)
    with pub.controller():
        for item in items:
            for _ in range(ROUNDS):
                item.score += 1
                item.save()
    queued = len(sub.subscriber.queue)
    start = time.perf_counter()
    applied = sub.subscriber.drain()
    elapsed = time.perf_counter() - start
    for item in items:
        row = SubItem.__mapper__.find(item.id)
        assert row is not None and row["score"] == ROUNDS, (
            f"{name}: hot object {item.id} did not converge"
        )
    assert not len(sub.subscriber.queue)
    return {
        "variant": name,
        "updates": UPDATES,
        "queued_at_drain": queued,
        "messages_applied": applied,
        "drain_s": elapsed,
        "updates_per_s": UPDATES / elapsed if elapsed else float("inf"),
    }


def test_batched_coalesced_apply_throughput():
    """The full subsystem must replicate the same update stream at
    >= 2x the single-message pipeline's rate."""
    results = [_run_variant(name, kwargs) for name, kwargs in VARIANTS]
    by_name = {r["variant"]: r for r in results}
    speedup = (by_name["batched+coalesced"]["updates_per_s"]
               / by_name["disabled"]["updates_per_s"])

    emit(format_table(
        f"Flow-control apply throughput ({HOT_OBJECTS} hot objects x "
        f"{ROUNDS} update rounds{', quick' if QUICK else ''})",
        ["variant", "queued", "applied msgs", "drain ms", "updates/s"],
        [[r["variant"], r["queued_at_drain"], r["messages_applied"],
          f"{r['drain_s'] * 1000:.1f}", f"{r['updates_per_s']:,.0f}"]
         for r in results],
    ) + [f"batched+coalesced vs disabled: {speedup:.1f}x"])

    with open(_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump({
            "benchmark": "flow_throughput",
            "quick": QUICK,
            "hot_objects": HOT_OBJECTS,
            "rounds": ROUNDS,
            "variants": results,
            "speedup_batched_coalesced_vs_disabled": speedup,
        }, fh, indent=2)
        fh.write("\n")

    # Coalescing collapses the hot-object backlog to ~one message per
    # object; batching group-commits what's left.
    assert by_name["batched+coalesced"]["queued_at_drain"] <= 2 * HOT_OBJECTS
    assert by_name["disabled"]["queued_at_drain"] == UPDATES
    assert speedup >= 2.0, f"only {speedup:.2f}x over the single-message path"


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    test_batched_coalesced_apply_throughput()
    print(f"wrote {_JSON_PATH}")
