"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style table/series it regenerates (run
pytest with ``-s`` to see them inline; they are also appended to
``bench_report.txt`` in the repo root so plain runs keep the evidence).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

_REPORT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                            "bench_report.txt")


def emit(lines: Iterable[str]) -> None:
    text = "\n".join(lines)
    print("\n" + text)
    with open(_REPORT_PATH, "a", encoding="utf-8") as fh:
        fh.write(text + "\n\n")


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> List[str]:
    """Fixed-width table matching the paper's layout."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return lines


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_metrics(title: str, registry, prefix: str = "") -> List[str]:
    """Render a :class:`MetricsRegistry` snapshot as a report section.

    Counters print their value; histograms print count/mean/p99 (ms).
    """
    lines = [f"== {title} =="]
    for name, value in registry.snapshot(prefix=prefix).items():
        if isinstance(value, dict):
            rendered = (
                f"count={value['count']} mean={value['mean'] * 1000:.3f}ms "
                f"p99={value['p99'] * 1000:.3f}ms"
            )
        else:
            rendered = str(value)
        lines.append(f"{name:<40} {rendered}")
    return lines


def drain_probe(queue) -> list:
    """Pop-and-ack everything from a probe queue."""
    out = []
    while True:
        message = queue.pop()
        if message is None:
            return out
        queue.ack(message)
        out.append(message)
