"""CDC ingest cost: what does the outbox front-end pay vs the ORM path?

The ORM interceptor publishes synchronously inside the write (versioning,
marshalling, broker fan-out all on the caller's thread). A raw write
commits only the data row plus its outbox record; the publish happens
later, when the CDC poller tails the outbox. This bench measures both
halves of that trade:

- **ingest throughput** — writes/s as the caller observes them, ORM
  create vs ``raw_session`` insert (poller off during the write loop);
- **end-to-end cost** — raw write + its share of the poll pass, i.e.
  what the write costs once the deferred publish is paid;
- **poll lag** — commit-to-publish latency percentiles across repeated
  write-then-poll rounds (the ``cdc.*.poll_lag`` histogram).

Both variants replicate into the same subscriber topology, so the work
per published message is identical past the front-end seam.

Results land in ``BENCH_cdc.json`` at the repo root; set
``REPRO_BENCH_QUICK=1`` for the small workload.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from benchmarks.common import emit, format_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
#: Writes per variant in the throughput loop.
WRITES = 300 if QUICK else 3000
#: Write-then-poll rounds for the lag distribution.
LAG_ROUNDS = 20 if QUICK else 100
#: Raw writes per lag round.
LAG_BATCH = 5

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_cdc.json")


def build_pipeline():
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"),
                      delivery_mode="causal")

    @pub.model(publish=["name", "score"], name="Doc")
    class Doc(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "score"],
                   "mode": "causal"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        score = Field(int, default=0)

    pub.enable_outbox()
    return eco, pub, sub, Doc


def run_orm(writes: int) -> Dict[str, Any]:
    eco, pub, sub, doc_cls = build_pipeline()
    started = time.perf_counter()
    with pub.controller():
        for i in range(writes):
            doc_cls.create(name=f"doc-{i}", score=i)
    elapsed = time.perf_counter() - started
    sub.subscriber.drain()
    return {"writes": writes, "elapsed_s": elapsed,
            "writes_per_s": writes / elapsed}


def run_raw(writes: int) -> Dict[str, Any]:
    eco, pub, sub, doc_cls = build_pipeline()
    raw = pub.raw_session()
    started = time.perf_counter()
    for i in range(writes):
        raw.insert(doc_cls, {"name": f"doc-{i}", "score": i})
    write_elapsed = time.perf_counter() - started
    poll_started = time.perf_counter()
    published = eco.cdc.poll_all()
    poll_elapsed = time.perf_counter() - poll_started
    sub.subscriber.drain()
    assert published == writes
    return {
        "writes": writes,
        "elapsed_s": write_elapsed,
        "writes_per_s": writes / write_elapsed,
        "poll_s": poll_elapsed,
        "end_to_end_per_s": writes / (write_elapsed + poll_elapsed),
    }


def run_lag() -> Dict[str, Any]:
    """Commit-to-publish lag: write a small batch, poll, repeat; the
    poller's ``poll_lag`` histogram collects the distribution."""
    eco, pub, sub, doc_cls = build_pipeline()
    raw = pub.raw_session()
    for round_no in range(LAG_ROUNDS):
        for i in range(LAG_BATCH):
            raw.insert(doc_cls, {"name": f"lag-{round_no}-{i}", "score": i})
        eco.cdc.poll_all()
    sub.subscriber.drain()
    stats = eco.metrics.snapshot()["cdc.pub.poll_lag"]
    return {
        "samples": stats["count"],
        "p50_us": stats["p50"] * 1e6,
        "p99_us": stats["p99"] * 1e6,
        "mean_us": stats["mean"] * 1e6,
    }


def test_cdc_ingest():
    """Raw-write ingest is at least as fast as the ORM intercept path
    (the publish is deferred to the poller), and commit-to-publish lag
    stays bounded."""
    orm = run_orm(WRITES)
    raw = run_raw(WRITES)
    lag = run_lag()

    emit(format_table(
        f"CDC ingest: {WRITES} writes per variant"
        f"{' (quick)' if QUICK else ''}",
        ["variant", "writes/s", "end-to-end writes/s"],
        [["orm intercept", f"{orm['writes_per_s']:,.0f}",
          f"{orm['writes_per_s']:,.0f}"],
         ["raw + outbox", f"{raw['writes_per_s']:,.0f}",
          f"{raw['end_to_end_per_s']:,.0f}"]],
    ) + [
        f"poll lag over {lag['samples']} entries: "
        f"p50={lag['p50_us']:.0f}us p99={lag['p99_us']:.0f}us "
        f"mean={lag['mean_us']:.0f}us",
    ])

    with open(_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump({
            "benchmark": "cdc_ingest",
            "quick": QUICK,
            "writes": WRITES,
            "orm": orm,
            "raw": raw,
            "poll_lag": lag,
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # The caller-observed raw write must not be slower than the ORM
    # intercept (generous 0.5x floor: the point is it defers the
    # publish, not that engines are fast today).
    assert raw["writes_per_s"] > 0.5 * orm["writes_per_s"]
    assert lag["samples"] == LAG_ROUNDS * LAG_BATCH


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    test_cdc_ingest()
    print(f"wrote {_JSON_PATH}")
