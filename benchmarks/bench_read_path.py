"""Read-path cost: what does the versioned cache buy a read-heavy app?

The CQRS argument for subscriber-side views is that web workloads are
overwhelmingly reads: under a 99:1 read/write mix, an aggregate served
from the cache tier should be an order of magnitude cheaper than
recomputing it from the base rows on every request — *without* giving
up freshness, because invalidation rides the replication stream itself
(per-key version watermarks, bumped in the apply path).

One seeded dataset, two variants of the same 99:1 mix:

- **direct** — every read recomputes the aggregate from a full scan of
  the subscriber's base rows (what an app without views would do);
- **cached** — every read goes through ``ViewManager.read`` (cache-aside
  over the KV tier, write-through invalidation from the apply path).

Every cached read is also checked against the expected aggregate the
bench maintains itself: with the subscriber drained after each write, a
single stale read is an INV_VIEW violation and fails the run.

Results land in ``BENCH_read.json`` at the repo root; set
``REPRO_BENCH_QUICK=1`` for the small workload.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from benchmarks.common import emit, format_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
#: Rows seeded before the mix starts.
ROWS = 200 if QUICK else 400
#: Total operations in the 99:1 mix (1% of these are writes).
OPERATIONS = 1000 if QUICK else 10_000

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_read.json")


def build_pipeline():
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model
    from repro.views import CountView, SumView

    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"),
                      delivery_mode="causal")

    @pub.model(publish=["name", "score"], name="Doc")
    class Doc(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "score"],
                   "mode": "causal"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        score = Field(int, default=0)

    views = sub.enable_views()
    views.declare(CountView("docs", "Doc"))
    views.declare(SumView("total", "Doc", "score"))
    return eco, pub, sub, Doc


def run_mix(read) -> Dict[str, Any]:
    """One 99:1 mix over a fresh pipeline; ``read(sub)`` is the variant
    under test and must return the current sum-of-scores."""
    eco, pub, sub, doc_cls = build_pipeline()
    docs = []
    expected = 0
    with pub.controller():
        for i in range(ROWS):
            docs.append(doc_cls.create(name=f"doc-{i}", score=i))
            expected += i
    sub.subscriber.drain()

    reads = writes = stale = 0
    read_time = 0.0
    started = time.perf_counter()
    for step in range(OPERATIONS):
        if step % 100 == 99:
            doc = docs[step % ROWS]
            with pub.controller():
                doc.score += 10
                doc.save()
            sub.subscriber.drain()
            expected += 10
            writes += 1
            continue
        t0 = time.perf_counter()
        value = read(sub)
        read_time += time.perf_counter() - t0
        reads += 1
        if value != expected:
            stale += 1
    elapsed = time.perf_counter() - started
    return {
        "reads": reads,
        "writes": writes,
        "stale_reads": stale,
        "elapsed_s": elapsed,
        "read_time_s": read_time,
        "read_us": read_time / reads * 1e6,
        "cache": sub.views.cache.stats(),
    }


def direct_read(sub) -> int:
    """What an app without views pays per request: a full base-row scan
    through the engine, summed on the way out."""
    mapper = sub.registry.get("Doc").__mapper__
    return sum(row.get("score") or 0 for row in mapper._do_where({}, None, None))


def cached_read(sub) -> int:
    return sub.views.read("total")


def test_read_path_speedup():
    """Cached aggregate reads are >= 10x cheaper than direct engine
    recomputation under the 99:1 mix, with zero stale reads."""
    direct = run_mix(direct_read)
    cached = run_mix(cached_read)
    speedup = direct["read_us"] / cached["read_us"]
    hit_rate = cached["cache"]["hits"] / max(1, cached["reads"])

    emit(format_table(
        f"Read path: 99:1 mix over {ROWS} rows, {OPERATIONS} operations"
        f"{' (quick)' if QUICK else ''}",
        ["variant", "reads", "writes", "us/read", "stale reads"],
        [["direct scan", direct["reads"], direct["writes"],
          f"{direct['read_us']:.2f}", direct["stale_reads"]],
         ["cached view", cached["reads"], cached["writes"],
          f"{cached['read_us']:.2f}", cached["stale_reads"]]],
    ) + [
        f"speedup (direct/cached): {speedup:.1f}x",
        f"cache hit rate: {hit_rate:.3f} "
        f"(hits={cached['cache']['hits']} misses={cached['cache']['misses']} "
        f"invalidations={cached['cache']['invalidations']})",
    ])

    with open(_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump({
            "benchmark": "read_path",
            "quick": QUICK,
            "rows": ROWS,
            "operations": OPERATIONS,
            "read_write_ratio": "99:1",
            "direct": direct,
            "cached": cached,
            "speedup": speedup,
            "cache_hit_rate": hit_rate,
        }, fh, indent=2)
        fh.write("\n")

    # Freshness is non-negotiable: a stale cached read breaks INV_VIEW.
    assert direct["stale_reads"] == 0
    assert cached["stale_reads"] == 0, (
        f"{cached['stale_reads']} cached reads were staler than an "
        "already-applied write"
    )
    # The point of the cache tier: an order of magnitude per read.
    assert speedup >= 10, (
        f"cached reads only {speedup:.1f}x faster than direct scans"
    )
    # Reads between writes hit; only post-invalidation reads miss.
    assert hit_rate > 0.9


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    test_read_path_speedup()
    print(f"wrote {_JSON_PATH}")
