"""Fig 13(c): subscriber throughput vs #workers per delivery mode, with a
100 ms subscriber callback (simulating heavy processing such as emails).

Messages are captured from the real publisher running the social
workload under each publisher mode (global / causal / weak) so they
carry that mode's real dependency structure; the worker scale-out runs
in the discrete-event simulator (DESIGN.md substitution table).

Expected shape (paper): global scales poorly (serial commits, ~10 msg/s
at 100 ms); causal scales with the workload's inherent parallelism;
weak scales perfectly up to 400 workers (4,000 msg/s at 100 ms).
"""

from __future__ import annotations

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.runtime.simulation import SimMessage, capture_messages, simulate_subscriber
from repro.workloads import SocialWorkload, build_social_publisher

WORKERS = [1, 2, 5, 10, 20, 50, 100, 200, 400]
MESSAGES = 1500
USERS = 600
CALLBACK = 0.100  # the paper's 100 ms


def captured(mode: str):
    eco = Ecosystem()
    service, User, Post, Comment = build_social_publisher(
        eco, ephemeral=True, delivery_mode=mode
    )
    drain = capture_messages(eco, "social")
    workload = SocialWorkload(service, User, Post, Comment, users=USERS)
    workload.run(MESSAGES)
    return [SimMessage.from_message(m, mode) for m in drain()]


def test_fig13c_delivery_mode_scaling(benchmark):
    series = {}
    for mode in ("global", "causal", "weak"):
        messages = captured(mode)
        points = []
        for workers in WORKERS:
            result = simulate_subscriber(messages, workers=workers,
                                         service_time=CALLBACK)
            points.append(result.throughput)
        series[mode] = points

    rows = [[mode] + [f"{p:,.1f}" for p in points]
            for mode, points in series.items()]
    emit(format_table(
        "Fig 13(c) — throughput (msg/s) vs #workers per delivery mode "
        "(100 ms subscriber callback)",
        ["mode"] + [str(w) for w in WORKERS],
        rows,
    ))

    glob, causal, weak = series["global"], series["causal"], series["weak"]
    # Global is flat: total serialisation pins it to ~1/callback.
    assert glob[-1] < 15
    assert glob[-1] < 1.5 * glob[0]
    # Weak scales linearly all the way: ~workers/callback.
    assert weak[-1] > 3000
    assert weak[3] > 8 * weak[0]
    # Causal sits between: scales well but saturates at the workload's
    # inherent parallelism.
    assert causal[-1] > 20 * causal[0]
    assert glob[-1] < causal[-1] < weak[-1]

    messages = captured("causal")
    benchmark(lambda: simulate_subscriber(messages[:300], workers=50,
                                          service_time=CALLBACK))
