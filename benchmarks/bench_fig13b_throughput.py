"""Fig 13(b): end-to-end throughput vs number of workers per DB pair.

Messages are captured from the *real* publisher running the §6.3 social
workload (so their dependency structure is the real causal structure,
~4 deps/message); the scale-out itself runs in the discrete-event
simulator because one laptop cannot host 2x400 workers (DESIGN.md,
substitution table). Engine ceilings are calibrated to the saturation
points the paper reports (PostgreSQL ~12k writes/s, Elasticsearch ~20k).

Expected shape: Ephemeral->Observer scales ~linearly past 60k msg/s;
each DB-backed pair scales linearly until the slower engine of the pair
(marked *) saturates.
"""

from __future__ import annotations

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.runtime.simulation import (
    DBCeiling,
    SimMessage,
    capture_messages,
    simulate_pipeline,
)
from repro.workloads import SocialWorkload, build_social_publisher

WORKERS = [1, 2, 5, 10, 20, 50, 100, 200, 400]
MESSAGES = 10000
#: wide user population so the workload's inherent parallelism does not
#: bind before the engines do (the paper's AWS fleet served many users).
USERS = 4000
#: per-worker service time: ~150 msg/s/worker, the paper's ephemeral
#: line reaching ~60k msg/s at 400 workers.
SERVICE_TIME = 1.0 / 150

#: engine -> max sustained ops/s, calibrated to the paper's saturation
#: points; modelled as a concurrency ceiling of (cap/1000) slots @ 1ms.
ENGINE_CAPS = {
    "ephemeral": None,
    "cassandra": 35000,
    "elasticsearch": 20000,
    "mongodb": 25000,
    "rethinkdb": 18000,
    "postgresql": 12000,
    "tokumx": 22000,
    "mysql": 18000,
    "neo4j": 8000,
}

PAIRS = [
    ("Ephemeral -> Observer *", "ephemeral", "ephemeral"),
    ("Cassandra -> Elasticsearch *", "cassandra", "elasticsearch"),
    ("MongoDB -> RethinkDB *", "mongodb", "rethinkdb"),
    ("* PostgreSQL -> TokuMX", "postgresql", "tokumx"),
    ("MySQL -> Neo4j *", "mysql", "neo4j"),
]


def ceiling(engine: str):
    cap = ENGINE_CAPS[engine]
    if cap is None:
        return None
    return DBCeiling(capacity=max(1, cap // 1000), op_time=0.001)


def captured_workload():
    eco = Ecosystem()
    service, User, Post, Comment = build_social_publisher(eco, ephemeral=True)
    drain = capture_messages(eco, "social")
    workload = SocialWorkload(service, User, Post, Comment, users=USERS)
    workload.run(MESSAGES)
    return [SimMessage.from_message(m, "causal") for m in drain()]


def test_fig13b_throughput_by_db_pair(benchmark):
    messages = captured_workload()
    series = {}
    for label, pub_engine, sub_engine in PAIRS:
        points = []
        for workers in WORKERS:
            result = simulate_pipeline(
                messages,
                workers=workers,
                publish_time=SERVICE_TIME,
                subscribe_time=SERVICE_TIME,
                publisher_db=ceiling(pub_engine),
                subscriber_db=ceiling(sub_engine),
            )
            points.append(result.throughput)
        series[label] = points

    rows = [[label] + [f"{p:,.0f}" for p in points]
            for label, points in series.items()]
    emit(format_table(
        "Fig 13(b) — throughput (msg/s) vs #workers per DB pair "
        "(* = saturating engine)",
        ["pair"] + [str(w) for w in WORKERS],
        rows,
    ))

    eph = series["Ephemeral -> Observer *"]
    pg = series["* PostgreSQL -> TokuMX"]
    es = series["Cassandra -> Elasticsearch *"]
    neo = series["MySQL -> Neo4j *"]
    # Ephemeral exceeds 50k msg/s at 400 workers and dominates every pair.
    assert eph[-1] > 45000
    # PostgreSQL saturates near its 12k ceiling.
    assert 9000 < pg[-1] <= 12600
    # Elasticsearch saturates near 20k.
    assert 15000 < es[-1] <= 21000
    # Neo4j is the slowest pair.
    assert neo[-1] <= 8400
    assert neo[-1] < pg[-1] < es[-1] < eph[-1]
    # Linear region at small scale: 10 workers ~ 10x one worker.
    assert eph[3] > 7 * eph[0]

    benchmark(lambda: simulate_pipeline(
        messages[:500], workers=50,
        publish_time=SERVICE_TIME, subscribe_time=SERVICE_TIME,
        publisher_db=ceiling("postgresql"), subscriber_db=ceiling("tokumx"),
    ))
