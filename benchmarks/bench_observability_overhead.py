"""Cost of the always-on health layer at production sampling rates.

The design target: the replication-health machinery (lag windows, the
flight-recorder sink, sampled tracing) must be cheap enough to leave on.
Head-based sampling makes the per-message cost a seeded CRC plus an
``is None`` check for unsampled messages, so a 1% rate should sit within
noise of tracing-off — that is the asserted bound. Full tracing (rate
1.0) is reported for scale but only sanity-bounded: it allocates spans
for every message and is a debugging mode, not a production default.
"""

from __future__ import annotations

import gc
import statistics
import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

WRITES = 1500
BLOCKS = 6
RATES = [0.0, 0.01, 1.0]  # each compared against tracing never enabled


def build():
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"])
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    return eco, pub, sub, User


def run_once(rate) -> float:
    """Wall-clock of one publish+drain workload at one sampling rate."""
    eco, pub, sub, User = build()
    if rate is not None:
        eco.enable_tracing(sample_rate=rate, seed=11)
    # GC pauses landing inside one configuration's window and not
    # another's are the dominant noise source at this scale; collect
    # up front and keep the collector out of the timed section.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        with pub.controller():
            for i in range(WRITES):
                User.create(name=f"u{i}", score=i)
        sub.subscriber.drain()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert sub.subscriber.processed_messages == WRITES
    return elapsed


def measure(rate) -> dict:
    """Estimate one rate's overhead ratio against tracing-off.

    Wall-clock on a shared machine is contaminated by bursty exogenous
    load, so absolute times are meaningless across a session. Each
    *block* runs off/rate/rate/off back to back (load is ~constant
    inside a one-second window) and contributes the ratio of
    within-block minima. Exogenous bursts inflate whichever block they
    hit; the true tracing cost inflates every block. The minimum block
    ratio is therefore the least-contaminated estimate of the real
    overhead — it only stays above a bound if every block did.
    """
    ratios = []
    best_off = best_rate = float("inf")
    for _ in range(BLOCKS):
        off_a = run_once(None)
        rate_a = run_once(rate)
        rate_b = run_once(rate)
        off_b = run_once(None)
        ratios.append(min(rate_a, rate_b) / min(off_a, off_b))
        best_off = min(best_off, off_a, off_b)
        best_rate = min(best_rate, rate_a, rate_b)
    return {
        "overhead": min(ratios),
        "median": statistics.median(ratios),
        "best_off": best_off,
        "best": best_rate,
    }


def test_one_percent_sampling_is_within_noise_of_off(benchmark):
    run_once(None)  # warm up imports and allocator before timing
    results = {rate: measure(rate) for rate in RATES}

    baseline = min(r["best_off"] for r in results.values())
    rows = [["off", WRITES, f"{baseline * 1000:.1f}",
             f"{WRITES / baseline:,.0f}", "baseline", "baseline"]]
    for rate in RATES:
        r = results[rate]
        rows.append([
            f"{rate:g}", WRITES, f"{r['best'] * 1000:.1f}",
            f"{WRITES / r['best']:,.0f}",
            f"{(r['overhead'] - 1) * 100:+.1f}%",
            f"{(r['median'] - 1) * 100:+.1f}%",
        ])
    emit(format_table(
        f"Observability overhead vs sampling rate ({WRITES} writes, "
        f"{BLOCKS} paired blocks per rate)",
        ["sample rate", "writes", "best ms", "writes/s",
         "overhead (clean)", "overhead (median)"],
        rows,
    ))

    # The production configuration: 1% sampling within 5% of tracing-off.
    assert results[0.01]["overhead"] < 1.05
    # Rate 0 must also be free: the whole cost is one CRC per message.
    assert results[0.0]["overhead"] < 1.05
    # Full tracing allocates spans per message; generous sanity bound.
    assert results[1.0]["overhead"] < 3.0

    benchmark(lambda: run_once(0.01))
