"""End-to-end throughput of the full Fig 10 Crowdtap ecosystem: nine
services, threaded worker fleet, realistic request mix. Measures
requests/s at the main app and the fan-out amplification (messages
processed across all subscribers per request)."""

from __future__ import annotations

import random
import time

from benchmarks.common import emit, format_metrics, format_table
from repro.apps.crowdtap import build_crowdtap_ecosystem
from repro.runtime.workers import WorkerFleet

REQUESTS = 300


def run_ecosystem(workers_per_service: int):
    ct = build_crowdtap_ecosystem()
    rng = random.Random(9)
    members = [ct.signup(f"m{i}", f"m{i}@x") for i in range(10)]
    brands = [ct.add_brand(f"b{i}", f"brand number {i}") for i in range(4)]
    ct.sync()

    with WorkerFleet(ct.eco, workers=workers_per_service,
                     wait_timeout=0.5) as fleet:
        start = time.perf_counter()
        for step in range(REQUESTS):
            member = rng.choice(members)
            roll = rng.random()
            if roll < 0.5:
                ct.submit_action(member, rng.choice(brands), "review",
                                 text=f"req {step}")
            elif roll < 0.8:
                ct.submit_action(member, rng.choice(brands), "share")
            else:
                ct.crawl_profile(member, likes=[f"topic{step % 5}"])
        publish_elapsed = time.perf_counter() - start
        assert fleet.wait_until_idle(timeout=60)
        total_elapsed = time.perf_counter() - start

    processed = sum(
        service.subscriber.processed_messages
        for service in ct.eco.services.values()
    )
    published = sum(
        service.publisher.messages_published
        for service in ct.eco.services.values()
    )
    return {
        "publish_rps": REQUESTS / publish_elapsed,
        "end_to_end_rps": REQUESTS / total_elapsed,
        "published": published,
        "processed": processed,
        "amplification": processed / REQUESTS,
        "metrics": ct.eco.metrics,
    }


def test_fig10_ecosystem_throughput(benchmark):
    rows = []
    results = {}
    for workers in (1, 4):
        result = run_ecosystem(workers)
        results[workers] = result
        rows.append([
            workers,
            f"{result['publish_rps']:,.0f}",
            f"{result['end_to_end_rps']:,.0f}",
            result["published"],
            result["processed"],
            f"{result['amplification']:.1f}x",
        ])
    emit(format_table(
        "Fig 10 ecosystem under load (300 requests, 9 services)",
        ["workers/service", "publish req/s", "end-to-end req/s",
         "msgs published", "msgs processed", "fan-out per request"],
        rows,
    ))
    emit(format_metrics(
        "Broker counters, 4-worker run (MetricsRegistry snapshot)",
        results[4]["metrics"], prefix="broker.",
    ))
    for result in results.values():
        # Each request publishes 1-3 messages that fan out to multiple
        # subscribers: amplification well above 1.
        assert result["amplification"] > 2.0
        assert result["processed"] >= result["published"]
        assert result["end_to_end_rps"] > 50

    benchmark(lambda: run_ecosystem(2))
