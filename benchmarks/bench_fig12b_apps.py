"""Fig 12(b): Synapse overhead per controller across three applications
(Crowdtap, Diaspora, Discourse).

Expected shape (paper): read-only controllers (stream/index,
topics/index, awards/index) exhibit near-zero overhead; write controllers
show up to ~20% (Diaspora/Discourse) and up to ~50% (Crowdtap's
actions/update).
"""

from __future__ import annotations

import time

from benchmarks.common import emit, format_table
from repro.apps.diaspora import DiasporaApp
from repro.apps.discourse import DiscourseApp
from repro.core import Ecosystem
from repro.workloads import CrowdtapApp

CALLS = 400


def _measure(service, fn, calls=CALLS):
    """Mean total controller time and Synapse share for one controller."""
    publisher = service.publisher
    total = 0.0
    synapse = 0.0
    for _ in range(calls):
        before = publisher.overhead.total()
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
        synapse += publisher.overhead.total() - before
    mean_ms = 1000 * total / calls
    pct = 100 * synapse / total if total else 0.0
    return mean_ms, pct


def test_fig12b_application_overheads(benchmark):
    eco = Ecosystem()

    crowdtap = CrowdtapApp(eco)
    diaspora = DiasporaApp(eco)
    discourse = DiscourseApp(eco)

    users = [diaspora.users_create(f"u{i}", f"u{i}@x") for i in range(10)]
    for i in range(20):
        diaspora.posts_create(users[i % 10], f"post {i}")
    topics = [discourse.topics_create(users[0].id, f"t{i}") for i in range(5)]

    controllers = [
        ("Crowdtap", "awards/index",
         crowdtap.service, lambda: crowdtap.run_request("awards/index")),
        ("Crowdtap", "brands/show",
         crowdtap.service, lambda: crowdtap.run_request("brands/show")),
        ("Crowdtap", "actions/index",
         crowdtap.service, lambda: crowdtap.run_request("actions/index")),
        ("Diaspora", "stream/index",
         diaspora.service, lambda: diaspora.stream_index(users[0])),
        ("Diaspora", "friends/create",
         diaspora.service, lambda: diaspora.friends_create(users[0], users[1])),
        ("Diaspora", "posts/create",
         diaspora.service, lambda: diaspora.posts_create(users[0], "hello")),
        ("Discourse", "topics/index",
         discourse.service, lambda: discourse.topics_index()),
        ("Discourse", "topics/create",
         discourse.service, lambda: discourse.topics_create(users[0].id, "t")),
        ("Discourse", "posts/create",
         discourse.service,
         lambda: discourse.posts_create(users[0].id, topics[0], "body")),
    ]

    rows = []
    results = {}
    for app_name, controller, service, fn in controllers:
        mean_ms, pct = _measure(service, fn)
        results[(app_name, controller)] = (mean_ms, pct)
        rows.append([app_name, controller, f"{mean_ms:.3f}", f"{pct:.1f}%"])

    emit(format_table(
        "Fig 12(b) — Synapse overhead per controller, three applications",
        ["application", "controller", "total ms", "synapse overhead"],
        rows,
    ))

    # Shape: read-only controllers near zero; write controllers modest.
    assert results[("Crowdtap", "awards/index")][1] < 2.0
    assert results[("Diaspora", "stream/index")][1] < 2.0
    assert results[("Discourse", "topics/index")][1] < 2.0
    for key in [("Diaspora", "posts/create"), ("Discourse", "posts/create"),
                ("Diaspora", "friends/create")]:
        assert 0.0 < results[key][1] < 75.0

    benchmark(lambda: diaspora.posts_create(users[2], "bench post"))
