"""Ablation: version-store sharding (§4.2).

The version store "can become a throughput bottleneck due to network or
CPU, so Synapse shards [it] using a hash ring". We measure (a) real
multi-threaded publish throughput against 1..8 shards and (b) key
balance across the ring.
"""

from __future__ import annotations

import threading
import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.orm import Field, Model

SHARD_COUNTS = [1, 2, 4, 8]
THREADS = 8
WRITES_PER_THREAD = 150


def build(shards: int):
    eco = Ecosystem()
    service = eco.service("pub", database=None,
                          version_store_shards=shards)

    @service.model(publish=["n"], ephemeral=True, name="Event")
    class Event(Model):
        n = Field(int)

    return eco, service, Event


def threaded_publish(shards: int) -> float:
    """Wall-clock msg/s of THREADS concurrent ephemeral publishers."""
    eco, service, Event = build(shards)

    def worker(k: int):
        for i in range(WRITES_PER_THREAD):
            Event.create(n=k * 1000 + i)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(THREADS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = THREADS * WRITES_PER_THREAD
    assert service.publisher.messages_published == total
    return total / elapsed


def test_ablation_version_store_sharding(benchmark):
    rows = []
    balance_rows = []
    for shards in SHARD_COUNTS:
        throughput = threaded_publish(shards)
        eco, service, Event = build(shards)
        for i in range(400):
            Event.create(n=i)
        per_shard = [s.dbsize() for s in service.publisher_version_store.kv.shards]
        rows.append([shards, f"{throughput:,.0f}"])
        balance_rows.append([shards, per_shard])
    lines = format_table(
        "Ablation — version-store shards vs threaded publish throughput",
        ["shards", "publish msg/s"],
        rows,
    )
    lines += format_table(
        "Ablation — key balance across shards (400 distinct objects)",
        ["shards", "keys per shard"],
        balance_rows,
    )
    emit(lines)

    # Balance: with 4 shards no shard owns more than ~60% of the keys.
    four = balance_rows[2][1]
    assert max(four) < 0.6 * sum(four)
    # All shards participate at 8.
    assert all(k > 0 for k in balance_rows[3][1])

    benchmark(lambda: threaded_publish(4))
