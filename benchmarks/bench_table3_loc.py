"""Table 3: per-engine support code size.

The paper reports the ORM-specific and DB-specific lines of code needed
to support each engine (474 for ActiveRecord, ~200-300 per further ORM,
~50 per extra SQL vendor). We measure the analogous quantity in this
code base: the mapper (ORM adapter) source size per engine family, and
the per-vendor delta (the variant subclasses).
"""

from __future__ import annotations

import inspect

from benchmarks.common import emit, format_table
from repro.databases.columnar.engine import CassandraLike
from repro.databases.document.engine import MongoLike, RethinkDBLike, TokuMXLike
from repro.databases.graph.engine import Neo4jLike
from repro.databases.relational.engine import MySQLLike, OracleLike, PostgresLike
from repro.databases.search.engine import ElasticsearchLike
from repro.orm import engine_mappers


def loc_of(obj) -> int:
    return len(inspect.getsource(obj).splitlines())


def test_table3_support_code_size(benchmark):
    mapper_loc = {
        "ActiveRecord (relational)": loc_of(engine_mappers.RelationalMapper),
        "Mongoid (document)": loc_of(engine_mappers.DocumentMapper),
        "Cequel (columnar)": loc_of(engine_mappers.ColumnarMapper),
        "Stretcher (search)": loc_of(engine_mappers.SearchMapper),
        "Neo4j (graph)": loc_of(engine_mappers.GraphMapper),
    }
    vendor_delta = {
        "PostgreSQL": loc_of(PostgresLike),
        "MySQL": loc_of(MySQLLike),
        "Oracle": loc_of(OracleLike),
        "MongoDB": loc_of(MongoLike),
        "TokuMX": loc_of(TokuMXLike),
        "RethinkDB": loc_of(RethinkDBLike),
        "Cassandra": loc_of(CassandraLike),
        "Elasticsearch": loc_of(ElasticsearchLike),
        "Neo4j": loc_of(Neo4jLike),
    }
    rows = [[name, loc] for name, loc in mapper_loc.items()]
    lines = format_table(
        "Table 3 (analogue) — ORM-adapter code per engine family",
        ["ORM adapter", "LoC"], rows,
    )
    rows2 = [[name, loc] for name, loc in vendor_delta.items()]
    lines += format_table(
        "Table 3 (analogue) — per-vendor variant code",
        ["vendor stand-in", "LoC"], rows2,
    )
    emit(lines)

    # Shape: the first adapter (relational) is the largest; further
    # vendors of a supported family cost ~a few lines (the paper's "for
    # free with ActiveRecord" observation).
    assert mapper_loc["ActiveRecord (relational)"] == max(mapper_loc.values())
    for vendor in ("Oracle", "TokuMX", "RethinkDB"):
        assert vendor_delta[vendor] < 15

    benchmark(lambda: [loc_of(cls) for cls in
                       (engine_mappers.RelationalMapper, MongoLike)])
