"""Durability cost: what does the WAL charge, and what does a snapshot buy?

Two questions, one benchmark:

- **Publish throughput by fsync policy.** The same create+drain workload
  runs with durability disabled, then WAL-enabled under each policy —
  ``off`` (write+flush, no fsync), ``interval`` (group commit) and
  ``always`` (fsync per record). The gap between ``none`` and ``off`` is
  the logging tax; the gap between ``off`` and ``always`` is the price
  of surviving a host crash rather than just a process crash.
- **Restore: snapshot+tail vs pure log replay.** For growing datasets,
  restore the same data dir twice — once replaying the full WAL from
  record one, once from a snapshot taken at the end of the run (so only
  the pinned-overlap tail replays). Snapshot restore must replay far
  fewer records; that, not wall time on an in-memory engine, is the
  honest metric, though both times are reported.

Results land in ``BENCH_durability.json`` at the repo root; set
``REPRO_BENCH_QUICK=1`` for the small workload.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Any, Dict, Optional

from benchmarks.common import emit, format_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
#: Creates per throughput variant.
OPERATIONS = 300 if QUICK else 2000
#: Dataset sizes for the restore comparison.
RESTORE_SIZES = [100, 400] if QUICK else [500, 2000, 8000]

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_durability.json")

#: ``None`` means durability disabled entirely (the baseline pipeline).
FSYNC_VARIANTS = [None, "off", "interval", "always"]


def build_pipeline(data_dir: Optional[str], fsync: Optional[str]):
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"),
                      delivery_mode="causal")

    @pub.model(publish=["name", "score"], name="Doc")
    class Doc(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "score"],
                   "mode": "causal"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        score = Field(int, default=0)

    manager = None
    if fsync is not None:
        manager = eco.enable_durability(data_dir=data_dir, fsync=fsync)
    return eco, pub, sub, manager, Doc


def run_workload(pub, sub, doc_cls, operations: int) -> None:
    with pub.controller():
        for i in range(operations):
            doc_cls.create(name=f"doc-{i}", score=i)
    sub.subscriber.drain()


def bench_throughput(fsync: Optional[str]) -> Dict[str, Any]:
    data_dir = tempfile.mkdtemp(prefix="repro-bench-dur-")
    try:
        eco, pub, sub, manager, Doc = build_pipeline(data_dir, fsync)
        started = time.perf_counter()
        run_workload(pub, sub, Doc, OPERATIONS)
        elapsed = time.perf_counter() - started
        appends = eco.metrics.value("durability.wal.appends")
        fsyncs = eco.metrics.value("durability.wal.fsyncs")
        if manager is not None:
            manager.close()
        return {
            "fsync": fsync or "none",
            "operations": OPERATIONS,
            "elapsed_s": elapsed,
            "ops_per_s": OPERATIONS / elapsed,
            "wal_appends": appends,
            "wal_fsyncs": fsyncs,
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def _timed_restore(data_dir: str) -> Dict[str, Any]:
    eco, pub, sub, manager, _ = build_pipeline(data_dir, "off")
    started = time.perf_counter()
    report = manager.restore()
    elapsed = time.perf_counter() - started
    assert not report.unrecoverable
    manager.close()
    return {
        "elapsed_s": elapsed,
        "replayed": report.replayed,
        "snapshot_id": report.snapshot_id,
    }


def bench_restore(size: int) -> Dict[str, Any]:
    data_dir = tempfile.mkdtemp(prefix="repro-bench-dur-restore-")
    try:
        eco, pub, sub, manager, Doc = build_pipeline(data_dir, "off")
        run_workload(pub, sub, Doc, size)
        manager.wal.sync()

        # Pure log replay: copy the dir *before* any snapshot exists.
        replay_dir = tempfile.mkdtemp(prefix="repro-bench-dur-replay-")
        shutil.rmtree(replay_dir)
        shutil.copytree(data_dir, replay_dir)

        # Checkpointed restore: snapshot the live run, then restore it.
        manager.snapshot()
        manager.close()

        full = _timed_restore(replay_dir)
        snap = _timed_restore(data_dir)
        shutil.rmtree(replay_dir, ignore_errors=True)
        assert full.get("snapshot_id") is None
        assert snap["snapshot_id"] is not None
        assert snap["replayed"] < full["replayed"], (
            "snapshot restore should replay fewer records than full replay"
        )
        return {
            "dataset": size,
            "full_replayed": full["replayed"],
            "full_restore_s": full["elapsed_s"],
            "snapshot_replayed": snap["replayed"],
            "snapshot_restore_s": snap["elapsed_s"],
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def test_durability_cost_profile():
    """WAL throughput tax bounded; snapshot restore replays O(1) records
    instead of the whole log."""
    throughput = [bench_throughput(f) for f in FSYNC_VARIANTS]
    restores = [bench_restore(size) for size in RESTORE_SIZES]

    by_policy = {t["fsync"]: t for t in throughput}
    assert by_policy["off"]["wal_appends"] > 0
    assert by_policy["always"]["wal_fsyncs"] >= OPERATIONS
    # interval group-commits: strictly fewer fsyncs than records.
    assert 0 < by_policy["interval"]["wal_fsyncs"] < (
        by_policy["interval"]["wal_appends"]
    )
    tax = (by_policy["none"]["ops_per_s"]
           / by_policy["off"]["ops_per_s"])

    emit(format_table(
        f"Publish throughput by fsync policy ({OPERATIONS} creates"
        f"{', quick' if QUICK else ''})",
        ["fsync", "ops/s", "elapsed s", "wal appends", "fsyncs"],
        [[t["fsync"], f"{t['ops_per_s']:,.0f}", f"{t['elapsed_s']:.3f}",
          t["wal_appends"], t["wal_fsyncs"]] for t in throughput],
    ) + [f"logging tax (none vs off): {tax:.2f}x"])

    emit(format_table(
        "Restore: snapshot+tail vs pure log replay",
        ["dataset", "full replayed", "full s", "snap replayed", "snap s"],
        [[r["dataset"], r["full_replayed"], f"{r['full_restore_s']:.3f}",
          r["snapshot_replayed"], f"{r['snapshot_restore_s']:.3f}"]
         for r in restores],
    ))

    with open(_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump({
            "benchmark": "durability",
            "quick": QUICK,
            "operations": OPERATIONS,
            "throughput": throughput,
            "logging_tax_none_vs_off": tax,
            "restore": restores,
        }, fh, indent=2)
        fh.write("\n")

    # Snapshot replay stays flat while full replay grows with the log.
    snap_counts = [r["snapshot_replayed"] for r in restores]
    full_counts = [r["full_replayed"] for r in restores]
    assert full_counts == sorted(full_counts) and full_counts[-1] > (
        full_counts[0]
    )
    assert max(snap_counts) <= 2, (
        f"snapshot restore replayed a real tail: {snap_counts}"
    )


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    test_durability_cost_profile()
    print(f"wrote {_JSON_PATH}")
