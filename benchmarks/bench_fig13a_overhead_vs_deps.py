"""Fig 13(a): publisher overhead vs number of dependencies, per engine.

A post is created in a controller carrying N read dependencies; the
Synapse time of the publish is measured for each engine family (and for
DB-less ephemerals).

Expected shape (paper): small overhead at 1 dependency, growing slowly
to ~20 dependencies, then sharply toward 1000; the engine family only
shifts the curve (Cassandra cheapest, PostgreSQL/MySQL highest among
the DB-backed ones); real applications stay in the low-dependency
regime (Fig 12a).
"""

from __future__ import annotations

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.core.dependencies import dep_name
from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike, TokuMXLike
from repro.databases.relational import MySQLLike, PostgresLike
from repro.orm import Field, Model

DEP_COUNTS = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
SAMPLES = 30

ENGINES = [
    ("MySQL", lambda: MySQLLike("my"), False),
    ("PostgreSQL", lambda: PostgresLike("pg"), False),
    ("TokuMX", lambda: TokuMXLike("toku"), False),
    ("MongoDB", lambda: MongoLike("mongo"), False),
    ("Cassandra", lambda: CassandraLike("cass"), False),
    ("Ephemeral", lambda: None, True),
]


def build_service(eco, label, factory, ephemeral):
    service = eco.service(f"pub-{label}", database=factory())

    @service.model(publish=["body"], ephemeral=ephemeral, name="Post")
    class Post(Model):
        body = Field(str)

    return service, service.registry["Post"]


class _FakeDep:
    """Stands in for a read object: only table/id matter for dep names."""

    def __init__(self, dep_id):
        self.id = dep_id

    @staticmethod
    def table_name():
        return "things"


def measure_engine(label, factory, ephemeral):
    eco = Ecosystem()
    service, Post = build_service(eco, label, factory, ephemeral)
    publisher = service.publisher
    results = {}
    for n_deps in DEP_COUNTS:
        deps = [_FakeDep(i) for i in range(n_deps)]
        publisher.overhead.reset()
        for _ in range(SAMPLES):
            with service.controller() as ctx:
                for dep in deps:
                    ctx.record_local_read(
                        dep_name(service.name, dep.table_name(), dep.id)
                    )
                Post.create(body="x")
        results[n_deps] = publisher.overhead.mean() * 1000  # ms
    return results


def baseline_write_ms(factory):
    """Raw engine write latency without Synapse (the paper's 0.8-1.9ms)."""
    import time

    db = factory()
    eco = Ecosystem()
    service = eco.service("baseline", database=db)

    @service.model(name="Post")
    class Post(Model):
        body = Field(str)

    start = time.perf_counter()
    for _ in range(200):
        Post.create(body="x")
    return 1000 * (time.perf_counter() - start) / 200


def test_fig13a_publisher_overhead_vs_dependencies(benchmark):
    all_results = {}
    for label, factory, ephemeral in ENGINES:
        all_results[label] = measure_engine(label, factory, ephemeral)

    rows = []
    for label, _factory, _eph in ENGINES:
        row = [label] + [f"{all_results[label][n]:.3f}" for n in DEP_COUNTS]
        rows.append(row)
    emit(format_table(
        "Fig 13(a) — publisher overhead (ms) vs #dependencies",
        ["engine"] + [str(n) for n in DEP_COUNTS],
        rows,
    ))

    base = baseline_write_ms(lambda: PostgresLike("pg-base"))
    emit([f"PostgreSQL baseline write without Synapse: {base:.3f} ms"])

    # Shape assertions: monotone-ish growth, slow then sharp.
    for label, results in all_results.items():
        assert results[1000] > results[1], label
        # Sub-linear region first: 20 deps costs far less than 20x 1 dep.
        assert results[20] < 20 * max(results[1], 1e-6), label
        # The 1000-dep point is dominated by dependency bookkeeping and
        # dwarfs the 1-dep case.
        assert results[1000] > 5 * results[1], label

    eco = Ecosystem()
    service, Post = build_service(eco, "kernel", lambda: MongoLike("k"), False)

    def kernel():
        with service.controller():
            Post.create(body="x")

    benchmark(kernel)
