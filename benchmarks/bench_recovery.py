"""Recovery-time measurements for the §6.5 failure scenarios:

- message loss deadlocking a causal subscriber, unblocked by rebootstrap
- queue-overflow decommission followed by partial bootstrap
- publisher version-store death (generation bump) cost
"""

from __future__ import annotations

import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

DATASET = 2000


def build(queue_limit=None):
    eco = Ecosystem(queue_limit=queue_limit)
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["n"], name="Item")
    class Item(Model):
        n = Field(int)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Item")
    class SubItem(Model):
        n = Field(int)

    return eco, pub, pub.registry["Item"], sub, sub.registry["Item"]


def scenario_message_loss():
    eco, pub, Item, sub, SubItem = build()
    items = [Item.create(n=i) for i in range(DATASET)]
    sub.subscriber.drain()
    eco.broker.drop_next(1)
    items[0].update(n=-1)        # lost
    for item in items[1:50]:
        item.update(n=-2)        # some fine, object deps independent
    items[0].update(n=-3)        # deadlocked behind the loss
    sub.subscriber.drain()
    stuck = len(sub.subscriber.queue)
    start = time.perf_counter()
    bootstrap_subscriber(sub)
    recovery = time.perf_counter() - start
    assert SubItem.find(items[0].id).n == -3
    return stuck, recovery


def scenario_queue_overflow():
    eco, pub, Item, sub, SubItem = build(queue_limit=100)
    items = [Item.create(n=i) for i in range(100)]
    sub.subscriber.drain()
    # Subscriber goes dark; traffic overflows the queue.
    for i in range(150):
        items[i % 100].update(n=i)
    assert sub.subscriber.queue.decommissioned
    start = time.perf_counter()
    bootstrap_subscriber(sub)
    recovery = time.perf_counter() - start
    assert SubItem.count() == 100
    return recovery


def scenario_generation_bump():
    eco, pub, Item, sub, SubItem = build()
    for i in range(200):
        Item.create(n=i)
    sub.subscriber.drain()
    for shard in pub.publisher_version_store.kv.shards:
        shard.crash()
    start = time.perf_counter()
    Item.create(n=-1)  # triggers transparent recovery
    publish_cost = time.perf_counter() - start
    sub.subscriber.drain()
    assert SubItem.count() == 201
    return publish_cost


def test_recovery_times(benchmark):
    stuck, loss_recovery = scenario_message_loss()
    overflow_recovery = scenario_queue_overflow()
    generation_cost = scenario_generation_bump()
    emit(format_table(
        "§6.5 recovery costs",
        ["scenario", "metric", "value"],
        [
            ["message loss (causal)", "messages deadlocked", stuck],
            ["message loss (causal)", "rebootstrap time ms",
             f"{loss_recovery * 1000:.1f}"],
            ["queue overflow", "partial bootstrap ms",
             f"{overflow_recovery * 1000:.1f}"],
            ["publisher store death", "first-publish-after ms",
             f"{generation_cost * 1000:.3f}"],
        ],
    ))
    assert stuck >= 1
    assert loss_recovery < 5.0
    assert overflow_recovery < 5.0
    assert generation_cost < 1.0

    benchmark(lambda: scenario_generation_bump())
