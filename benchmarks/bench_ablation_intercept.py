"""Ablation: written-row capture protocol (§4.1).

Engines with ``RETURNING *`` hand Synapse the written rows for free;
engines without (MySQL, Cassandra) need an additional read query — "safe
but somewhat more expensive". We measure the end-to-end publish cost on
both protocols and the extra engine reads they cause.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike
from repro.databases.relational import MySQLLike, PostgresLike
from repro.orm import Field, Model

WRITES = 800

ENGINES = [
    ("PostgreSQL (RETURNING)", lambda: PostgresLike("pg")),
    ("MongoDB (returns writes)", lambda: MongoLike("mo")),
    ("MySQL (read-back)", lambda: MySQLLike("my")),
    ("Cassandra (read-back)", lambda: CassandraLike("ca")),
]


def measure(factory):
    eco = Ecosystem()
    db = factory()
    service = eco.service("pub", database=db)

    @service.model(publish=["body"], name="Post")
    class Post(Model):
        body = Field(str)

    db.stats.reset()
    start = time.perf_counter()
    for i in range(WRITES):
        Post.create(body=f"post {i}")
    elapsed = time.perf_counter() - start
    reads_per_write = db.stats.reads / WRITES
    return 1e6 * elapsed / WRITES, reads_per_write, db.supports_returning


def test_ablation_intercept_protocols(benchmark):
    rows = []
    results = {}
    for label, factory in ENGINES:
        cost_us, reads_per_write, returning = measure(factory)
        results[label] = (cost_us, reads_per_write, returning)
        rows.append([label, "Y" if returning else "N",
                     f"{reads_per_write:.2f}", f"{cost_us:.1f}"])
    emit(format_table(
        "Ablation — RETURNING vs read-back intercept protocols",
        ["engine", "RETURNING", "engine reads per write", "publish cost us"],
        rows,
    ))

    # RETURNING engines never issue extra reads on the write path.
    assert results["PostgreSQL (RETURNING)"][1] == 0.0
    assert results["MongoDB (returns writes)"][1] == 0.0
    # Read-back engines pay at least one additional read per write.
    assert results["MySQL (read-back)"][1] >= 1.0
    assert results["Cassandra (read-back)"][1] >= 1.0

    eco = Ecosystem()
    service = eco.service("kernel", database=MySQLLike("k"))

    @service.model(publish=["body"], name="Post")
    class Post(Model):
        body = Field(str)

    benchmark(lambda: Post.create(body="x"))
