"""Fig 9: execution samples in the social ecosystem.

(a) A user posts on Diaspora; the mailer and the semantic analyzer
receive the post in parallel; Diaspora(-side consumers) and Spree then
receive the analyzer-decorated User model.

(b) Two users post with the mailer disconnected; on reconnect the mailer
processes the two users' backlogs in parallel but each user's posts in
serial (causal) order.

The bench prints both timelines with measured timestamps.
"""

from __future__ import annotations

import time

from benchmarks.common import emit
from repro.apps import build_social_ecosystem


def run_sample_a():
    world = build_social_ecosystem()
    ada = world.diaspora.users_create("ada", "ada@x")
    bob = world.diaspora.users_create("bob", "bob@x")
    world.diaspora.friends_create(ada, bob)
    world.sync()

    t0 = time.perf_counter()
    events = [("t=0.000ms", "(1) user posts on Diaspora")]
    world.diaspora.posts_create(ada, "coffee coffee coffee and more coffee")

    def stamp(label):
        events.append((f"t={1000 * (time.perf_counter() - t0):.3f}ms", label))

    stamp("    post committed + published")
    world.mailer.service.subscriber.drain()
    stamp("(2) mailer received the post (email queued)")
    world.analyzer.service.subscriber.drain()
    stamp("(3) semantic analyzer received the post (interests extracted)")
    world.analyzer.service.subscriber.drain()
    world.spree.service.subscriber.drain()
    stamp("(4,5) Spree received the decorated User model")
    interests = world.spree.User.find(ada.id).interests
    return events, world.mailer.outbox, interests


def run_sample_b():
    world = build_social_ecosystem()
    user1 = world.diaspora.users_create("user1", "u1@x")
    user2 = world.diaspora.users_create("user2", "u2@x")
    watcher = world.diaspora.users_create("watcher", "w@x")
    world.diaspora.friends_create(user1, watcher)
    world.diaspora.friends_create(user2, watcher)
    world.sync()
    # Mailer disconnected: posts pile up.
    world.diaspora.posts_create(user1, "user1 first")
    world.diaspora.posts_create(user2, "user2 first")
    world.diaspora.posts_create(user1, "user1 second")
    world.diaspora.posts_create(user2, "user2 second")
    backlog = len(world.mailer.service.subscriber.queue)
    # Reconnect.
    world.sync()
    bodies = [m["body"] for m in world.mailer.outbox]
    return backlog, bodies


def test_fig9_execution_samples(benchmark):
    events, outbox, interests = run_sample_a()
    lines = ["== Fig 9(a) — execution sample: post -> mailer ∥ analyzer -> Spree =="]
    for stamp, label in events:
        lines.append(f"  {stamp:<14} {label}")
    lines.append(f"  mailer outbox: {len(outbox)} email(s)")
    lines.append(f"  Spree sees ada's interests: {interests}")
    emit(lines)
    assert len(outbox) == 1
    assert "coffee" in interests

    backlog, bodies = run_sample_b()
    lines = ["== Fig 9(b) — disconnected mailer catches up causally =="]
    lines.append(f"  backlog while disconnected: {backlog} messages")
    for body in bodies:
        lines.append(f"  sent: {body}")
    emit(lines)
    per_user = {
        "user1": [b for b in bodies if b.startswith("user1")],
        "user2": [b for b in bodies if b.startswith("user2")],
    }
    assert per_user["user1"] == ["user1 posted: user1 first",
                                 "user1 posted: user1 second"]
    assert per_user["user2"] == ["user2 posted: user2 first",
                                 "user2 posted: user2 second"]

    benchmark(run_sample_a)
