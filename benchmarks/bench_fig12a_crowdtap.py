"""Fig 12(a): Synapse publishing overheads on the Crowdtap controller mix.

Replays the published 24-hour production profile (controller shares,
messages/call, dependencies/message) against this library and regenerates
the per-controller table: published messages, dependencies per message,
controller time and Synapse time (mean and 99th percentile).

Expected shape (paper): read-only controllers ~0% overhead; the
write-heavy ``actions/update`` the highest (~38% in the paper); mean
across the mix in the low percents.
"""

from __future__ import annotations

import time
from collections import defaultdict

from benchmarks.common import drain_probe, emit, format_table
from repro.core import Ecosystem
from repro.workloads import CONTROLLER_MIX, CrowdtapApp

REQUESTS = 3000


def profile_crowdtap(requests: int = REQUESTS):
    eco = Ecosystem()
    app = CrowdtapApp(eco)
    probe = eco.broker.bind("probe", "crowdtap-main")
    drain_probe(probe)  # discard setup traffic
    app.service.publisher.overhead.reset()

    stats = defaultdict(lambda: {
        "calls": 0, "messages": 0, "deps": 0,
        "controller_times": [], "synapse_times": [],
    })
    publisher = app.service.publisher
    for _ in range(requests):
        name = app.sample_controller()
        overhead_before = publisher.overhead.total()
        msgs_before = publisher.messages_published
        start = time.perf_counter()
        app.run_request(name)
        elapsed = time.perf_counter() - start
        entry = stats[name]
        entry["calls"] += 1
        entry["controller_times"].append(elapsed)
        entry["synapse_times"].append(publisher.overhead.total() - overhead_before)
        entry["messages"] += publisher.messages_published - msgs_before
        for message in drain_probe(probe):
            entry["deps"] += len(message.dependencies)
    return stats


def _mean(xs):
    return sum(xs) / len(xs) if xs else 0.0


def _p99(xs):
    if not xs:
        return 0.0
    ordered = sorted(xs)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def test_fig12a_crowdtap_overheads(benchmark):
    stats = profile_crowdtap()
    total_calls = sum(e["calls"] for e in stats.values())

    rows = []
    weighted_overhead = []
    for name in CONTROLLER_MIX:
        entry = stats.get(name)
        if entry is None or not entry["calls"]:
            continue
        msgs_per_call = entry["messages"] / entry["calls"]
        deps_per_msg = entry["deps"] / entry["messages"] if entry["messages"] else 0.0
        ctrl_mean = _mean(entry["controller_times"]) * 1000
        syn_mean = _mean(entry["synapse_times"]) * 1000
        pct = 100 * syn_mean / ctrl_mean if ctrl_mean else 0.0
        weighted_overhead.extend(
            [s / c if c else 0.0 for s, c in
             zip(entry["synapse_times"], entry["controller_times"])]
        )
        rows.append([
            name,
            f"{100 * entry['calls'] / total_calls:.1f}%",
            f"{msgs_per_call:.2f}",
            f"{deps_per_msg:.1f}",
            f"{ctrl_mean:.3f}",
            f"{_p99(entry['controller_times']) * 1000:.3f}",
            f"{syn_mean:.3f} ({pct:.1f}%)",
            f"{_p99(entry['synapse_times']) * 1000:.3f}",
        ])
    mean_overhead = 100 * _mean(weighted_overhead)
    lines = format_table(
        "Fig 12(a) — Crowdtap controller overheads",
        ["controller", "%calls", "msgs/call", "deps/msg",
         "ctrl mean ms", "ctrl p99 ms", "synapse mean ms", "synapse p99 ms"],
        rows,
    )
    lines.append(f"Overhead across all controllers: mean={mean_overhead:.1f}%")
    emit(lines)

    # Shape assertions against the paper.
    by_name = {row[0]: row for row in rows}
    assert float(by_name["awards/index"][2]) == 0.0      # read-only
    assert float(by_name["me/show"][2]) == 0.0           # read-only
    assert 3.0 < float(by_name["actions/update"][2]) < 4.0
    assert 10.0 < float(by_name["actions/index"][3]) < 25.0
    assert mean_overhead < 60.0

    # Benchmark kernel: the write-heaviest controller.
    eco = Ecosystem()
    app = CrowdtapApp(eco)
    benchmark(lambda: app.run_request("actions/update"))
