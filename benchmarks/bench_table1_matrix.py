"""Table 1: DB types and vendors supported by Synapse.

Exercises every supported engine as a publisher and as a subscriber
(where the paper supports it — Elasticsearch/Neo4j/RethinkDB are
subscriber-only in Table 3) and prints the measured support matrix.
"""

from __future__ import annotations

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike, RethinkDBLike, TokuMXLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import MySQLLike, OracleLike, PostgresLike
from repro.databases.search import ElasticsearchLike
from repro.orm import Field, Model

ENGINES = [
    ("PostgreSQL", lambda n: PostgresLike(n), "Relational", True),
    ("MySQL", lambda n: MySQLLike(n), "Relational", True),
    ("Oracle", lambda n: OracleLike(n), "Relational", True),
    ("MongoDB", lambda n: MongoLike(n), "Document", True),
    ("TokuMX", lambda n: TokuMXLike(n), "Document", True),
    ("RethinkDB", lambda n: RethinkDBLike(n), "Document", False),
    ("Cassandra", lambda n: CassandraLike(n), "Columnar", True),
    ("Elasticsearch", lambda n: ElasticsearchLike(n), "Search", False),
    ("Neo4j", lambda n: Neo4jLike(n), "Graph", False),
]

ROUNDTRIP_OBJECTS = 10


def roundtrip(pub_factory, sub_factory, tag: str) -> bool:
    eco = Ecosystem()
    pub = eco.service(f"pub-{tag}", database=pub_factory(f"pub-{tag}-db"))

    @pub.model(publish=["name"], name="Item")
    class Item(Model):
        name = Field(str)

    sub = eco.service(f"sub-{tag}", database=sub_factory(f"sub-{tag}-db"))

    @sub.model(subscribe={"from": f"pub-{tag}", "fields": ["name"]}, name="Item")
    class SubItem(Model):
        name = Field(str)

    items = [Item.create(name=f"item{i}") for i in range(ROUNDTRIP_OBJECTS)]
    items[0].update(name="renamed")
    items[1].destroy()
    sub.subscriber.drain()
    ok = (
        SubItem.count() == ROUNDTRIP_OBJECTS - 1
        and SubItem.find(items[0].id).name == "renamed"
    )
    return ok


def test_table1_support_matrix(benchmark):
    publishers = [(n, f) for n, f, _t, can_pub in ENGINES if can_pub]
    rows = []
    results = {}
    for sub_name, sub_factory, db_type, can_pub in ENGINES:
        row = [db_type, sub_name, "Y" if can_pub else "-"]
        ok_all = True
        for pub_name, pub_factory in publishers:
            ok = roundtrip(pub_factory, sub_factory, f"{pub_name}-{sub_name}")
            results[(pub_name, sub_name)] = ok
            ok_all = ok_all and ok
        row.append("Y" if ok_all else "FAIL")
        rows.append(row)
    emit(format_table(
        "Table 1 — supported engines (measured: every publisher x every "
        "subscriber round-trips create/update/delete)",
        ["type", "vendor stand-in", "pub?", "sub? (all pairs verified)"],
        rows,
    ))
    assert all(results.values())
    assert len(results) == len(publishers) * len(ENGINES)

    benchmark(lambda: roundtrip(
        lambda n: PostgresLike(n), lambda n: MongoLike(n), "kernel"
    ))
