"""Update-propagation delay distribution (the §1/§6.1 claim of "modest
update propagation delays", quantified end to end).

One publisher, three concurrent threaded subscribers; each published
object carries its publish timestamp, and each subscriber records its
apply timestamp in an ``after_save`` callback. Reports the per-subscriber
latency distribution.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model, after_save
from repro.runtime.metrics import Histogram
from repro.runtime.workers import SubscriberWorkerPool

OBJECTS = 300


def run_propagation():
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["sent_at"])
    class Event(Model):
        sent_at = Field(float)

    latencies = {}
    subscribers = []
    for name, db in [
        ("sub-sql", PostgresLike("sql-db")),
        ("sub-doc", MongoLike("doc-db")),
        ("sub-col", CassandraLike("col-db")),
    ]:
        service = eco.service(name, database=db)
        histogram = Histogram()
        latencies[name] = histogram

        @service.model(subscribe={"from": "pub", "fields": ["sent_at"]},
                       name="Event")
        class SubEvent(Model):
            sent_at = Field(float)

            @after_save
            def record(self, _h=histogram):
                _h.record(time.time() - self.sent_at)

        subscribers.append(service)

    pools = [SubscriberWorkerPool(s, workers=2).start() for s in subscribers]
    try:
        for _ in range(OBJECTS):
            Event.create(sent_at=time.time())
        for pool in pools:
            assert pool.wait_until_idle(timeout=30)
    finally:
        for pool in pools:
            pool.stop()
    return latencies


def test_propagation_latency(benchmark):
    latencies = run_propagation()
    rows = []
    for name, histogram in latencies.items():
        assert histogram.count == OBJECTS
        rows.append([
            name,
            histogram.count,
            f"{histogram.mean() * 1000:.3f}",
            f"{histogram.percentile(50) * 1000:.3f}",
            f"{histogram.percentile(99) * 1000:.3f}",
        ])
    emit(format_table(
        "Update propagation latency, publisher -> 3 threaded subscribers",
        ["subscriber", "updates", "mean ms", "p50 ms", "p99 ms"],
        rows,
    ))
    # "Modest propagation delays": p99 under 250 ms even on one busy box.
    for name, histogram in latencies.items():
        assert histogram.percentile(99) < 0.25, name

    benchmark(lambda: None)  # measurement happens above; kernel is a no-op


def test_single_hop_latency_kernel(benchmark):
    """Benchmark kernel: one publish + one synchronous apply."""
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("p"))

    @pub.model(publish=["x"], name="Event")
    class Event(Model):
        x = Field(int)

    sub = eco.service("sub", database=PostgresLike("s"))

    @sub.model(subscribe={"from": "pub", "fields": ["x"]}, name="Event")
    class SubEvent(Model):
        x = Field(int)

    def hop():
        Event.create(x=1)
        sub.subscriber.drain()

    benchmark(hop)
