"""Benchmark-session setup: start a fresh report file per run."""

import os

import pytest

_REPORT = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                       "bench_report.txt")


@pytest.fixture(scope="session", autouse=True)
def fresh_report():
    import platform
    import sys
    import time

    if os.path.exists(_REPORT):
        os.remove(_REPORT)
    with open(_REPORT, "w", encoding="utf-8") as fh:
        fh.write(
            "Synapse reproduction benchmark report\n"
            f"generated: {time.strftime('%Y-%m-%d %H:%M:%S')}\n"
            f"python: {sys.version.split()[0]}  "
            f"platform: {platform.platform()}\n\n"
        )
    yield
