"""Cost of cross-shard trace propagation on the forwarded path.

PR 9 puts trace context *on the wire*: a sampled message's envelope
carries ``trace`` across ``Broker.deliver_remote``, the origin records a
``transport.forward`` span plus a partial trace, and the receiving shard
resumes the same trace_id. All of that must stay off the fast path for
unsampled messages — head-based sampling means an unsampled forward
serializes exactly the wire payload it always did, no span objects, no
extra JSON field.

This benchmark drives the forwarded path between two in-process
ecosystems wired through the broker's placement seam (the same
serialize→forward→deliver_remote sequence the OS-process shards use,
minus pipe noise that would swamp a 5% bound) and times publish+drain at
sampling off / 1% / 100%. Paired within-block minima cancel exogenous
load, as in ``bench_observability_overhead``. Results land in
``BENCH_cluster.json`` at the repo root; set ``REPRO_BENCH_QUICK=1`` for
the small workload. The gate: 1% sampling within 5% of tracing-off.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
WRITES = 400 if QUICK else 1200
BLOCKS = 3 if QUICK else 6
RATES = [0.0, 0.01, 1.0]  # each compared against tracing never enabled

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_cluster.json")


def build_full():
    """One full pub→sub topology (both processes build the whole app in
    the shard runtime too; placement decides what runs locally)."""
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"])
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    return eco, pub, sub, User


def build_pair():
    """Two ecosystems joined at the broker seam: ``origin`` owns the
    publisher, ``receiver`` owns the subscriber, and every message
    crosses ``deliver_remote`` as a wire string — the forwarded path."""
    origin, pub, _, User = build_full()
    receiver, _, recv_sub, _ = build_full()
    origin.owned_services = {"pub"}
    receiver.owned_services = {"sub"}
    origin.broker.attach_placement(
        lambda sub_name: sub_name != "sub",
        lambda sub_name, payload: receiver.broker.deliver_remote(
            sub_name, payload
        ),
    )
    return origin, receiver, pub, recv_sub, User


def run_once(rate) -> float:
    """Wall-clock of one forwarded publish+drain workload at one rate
    (``None`` = tracing never enabled)."""
    origin, receiver, pub, recv_sub, User = build_pair()
    if rate is not None:
        origin.enable_tracing(sample_rate=rate, seed=11)
        receiver.enable_tracing(sample_rate=rate, seed=11)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        with pub.controller():
            for i in range(WRITES):
                User.create(name=f"u{i}", score=i)
        recv_sub.subscriber.drain()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert recv_sub.subscriber.processed_messages == WRITES
    return elapsed


def measure(rate) -> dict:
    """Minimum of paired within-block ratios — the least-contaminated
    estimate of the real sampling overhead (see module docstring)."""
    ratios = []
    best_off = best_rate = float("inf")
    for _ in range(BLOCKS):
        off_a = run_once(None)
        rate_a = run_once(rate)
        rate_b = run_once(rate)
        off_b = run_once(None)
        ratios.append(min(rate_a, rate_b) / min(off_a, off_b))
        best_off = min(best_off, off_a, off_b)
        best_rate = min(best_rate, rate_a, rate_b)
    return {
        "rate": rate,
        "overhead": min(ratios),
        "median": statistics.median(ratios),
        "best_off_s": best_off,
        "best_s": best_rate,
        "forwards_per_s": WRITES / best_rate,
    }


def test_cluster_trace_sampling_overhead():
    run_once(None)  # warm up imports and allocator before timing
    results = [measure(rate) for rate in RATES]
    by_rate = {r["rate"]: r for r in results}

    baseline = min(r["best_off_s"] for r in results)
    rows = [["off", WRITES, f"{baseline * 1000:.1f}",
             f"{WRITES / baseline:,.0f}", "baseline", "baseline"]]
    for r in results:
        rows.append([
            f"{r['rate']:g}", WRITES, f"{r['best_s'] * 1000:.1f}",
            f"{r['forwards_per_s']:,.0f}",
            f"{(r['overhead'] - 1) * 100:+.1f}%",
            f"{(r['median'] - 1) * 100:+.1f}%",
        ])
    emit(format_table(
        f"Cross-shard trace propagation overhead ({WRITES} forwarded "
        f"writes, {BLOCKS} paired blocks per rate"
        f"{', quick' if QUICK else ''})",
        ["sample rate", "forwards", "best ms", "forwards/s",
         "overhead (clean)", "overhead (median)"],
        rows,
    ))

    with open(_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump({
            "benchmark": "cluster_trace_overhead",
            "quick": QUICK,
            "writes": WRITES,
            "blocks": BLOCKS,
            "baseline_best_s": baseline,
            "rates": results,
        }, fh, indent=2)
        fh.write("\n")

    # The production configuration: 1% sampling within 5% of off.
    assert by_rate[0.01]["overhead"] < 1.05
    # Rate 0 pays one seeded CRC per message — also within noise.
    assert by_rate[0.0]["overhead"] < 1.05
    # Full tracing allocates spans and widens every forwarded envelope;
    # debugging mode, generous sanity bound only.
    assert by_rate[1.0]["overhead"] < 3.0


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    test_cluster_trace_sampling_overhead()
    print(f"wrote {_JSON_PATH}")
