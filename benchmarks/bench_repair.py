"""Anti-entropy repair cost: O(divergence), not O(dataset).

The paper's §6.5 remedy for lost write-messages is a full re-bootstrap,
whose cost grows with the dataset. Targeted repair re-publishes only the
divergent objects, so for a fixed divergence D its cost should stay
roughly flat while the dataset grows — and the subscriber-side engine
writes it causes should track D, not N.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, format_table
from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.repair import ReplicationAuditor, repair_subscriber

SIZES = [500, 2000, 8000]
DIVERGENCE = 20  # lost messages per run, fixed across dataset sizes


def build(n_objects: int):
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"])
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    users = [User.create(name=f"u{i}", score=i) for i in range(n_objects)]

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    bootstrap_subscriber(sub)
    return eco, pub, sub, users


def lose_messages(eco, users, count: int):
    """Reproduce §6.5: drop `count` write-messages on the wire."""
    eco.broker.drop_next(count)
    for user in users[:count]:
        user.update(score=user.score + 1000)
    eco.services["sub"].subscriber.drain()


def test_repair_cost_flat_across_dataset_sizes(benchmark):
    """Audit time is O(N) (digest build scans each replica once, with no
    writes); the *repair* phase — locks, version bumps, publishes,
    subscriber applies — must stay O(divergence) as the dataset grows."""
    rows = []
    repair_elapsed_by_size = []
    writes_by_size = []
    for size in SIZES:
        eco, pub, sub, users = build(size)
        lose_messages(eco, users, DIVERGENCE)
        start = time.perf_counter()
        report = ReplicationAuditor(sub).audit()
        audit_elapsed = time.perf_counter() - start
        writes_before = sub.database.stats.writes
        start = time.perf_counter()
        result = repair_subscriber(sub, report=report, reaudit=False)
        repair_elapsed = time.perf_counter() - start
        sub_writes = sub.database.stats.writes - writes_before
        assert result.objects_repaired == DIVERGENCE
        assert ReplicationAuditor(sub).audit().in_sync
        repair_elapsed_by_size.append(repair_elapsed)
        writes_by_size.append(sub_writes)
        rows.append([
            size, DIVERGENCE, result.messages_published, sub_writes,
            f"{audit_elapsed * 1000:.1f}", f"{repair_elapsed * 1000:.1f}",
        ])
    emit(format_table(
        f"Targeted repair cost vs dataset size (divergence fixed at "
        f"{DIVERGENCE})",
        ["objects", "divergent", "repair msgs", "sub engine writes",
         "audit ms", "repair ms"],
        rows,
    ))
    # The repair phase does the same work at every dataset size: same
    # engine-write count, and wall-clock within noise of flat across a
    # 16x dataset growth.
    assert max(writes_by_size) == min(writes_by_size)
    assert max(repair_elapsed_by_size) < 5 * min(repair_elapsed_by_size)

    eco, pub, sub, users = build(500)
    lose_messages(eco, users, DIVERGENCE)
    benchmark(lambda: repair_subscriber(sub, reaudit=False))


def test_repair_beats_full_bootstrap(benchmark):
    """The §6.5 comparison: heal the same loss both ways."""
    size, lost = 4000, 10
    rows = []

    eco, pub, sub, users = build(size)
    lose_messages(eco, users, lost)
    writes_before = sub.database.stats.writes
    start = time.perf_counter()
    report = ReplicationAuditor(sub).audit()
    audit_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    result = repair_subscriber(sub, report=report, reaudit=False)
    repair_elapsed = time.perf_counter() - start
    repair_writes = sub.database.stats.writes - writes_before
    assert ReplicationAuditor(sub).audit().in_sync
    rows.append(["targeted repair", result.objects_repaired, repair_writes,
                 f"{audit_elapsed * 1000:.1f}", f"{repair_elapsed * 1000:.1f}"])

    eco, pub, sub, users = build(size)
    lose_messages(eco, users, lost)
    writes_before = sub.database.stats.writes
    start = time.perf_counter()
    applied = bootstrap_subscriber(sub)
    bootstrap_elapsed = time.perf_counter() - start
    bootstrap_writes = sub.database.stats.writes - writes_before
    assert ReplicationAuditor(sub).audit().in_sync
    rows.append(["full re-bootstrap", applied, bootstrap_writes,
                 "-", f"{bootstrap_elapsed * 1000:.1f}"])

    emit(format_table(
        f"Healing {lost} lost messages in a {size}-object dataset (§6.5)",
        ["remedy", "objects applied", "sub engine writes", "detect ms",
         "heal ms"],
        rows,
    ))
    # The §6.5 cost that matters is subscriber write load while serving:
    # a bootstrap rewrites every object, repair rewrites the lost few.
    # (Detection reads each replica once but performs zero writes.)
    assert repair_writes < bootstrap_writes / 10
    assert repair_elapsed < bootstrap_elapsed

    eco, pub, sub, users = build(1000)
    lose_messages(eco, users, lost)
    benchmark(lambda: repair_subscriber(sub, reaudit=False))


def test_merkle_detection_scales_with_divergence(benchmark):
    """Detection work (Merkle nodes compared) tracks divergence size."""
    size = 4000
    rows = []
    nodes_by_div = []
    for divergence in [1, 5, 20]:
        eco, pub, sub, users = build(size)
        lose_messages(eco, users, divergence)
        auditor = ReplicationAuditor(sub, leaves=256)
        report = auditor.audit()
        nodes = sum(m.nodes_compared for m in report.models)
        assert report.divergent_total == divergence
        nodes_by_div.append(nodes)
        rows.append([divergence, nodes, report.divergent_total])
    emit(format_table(
        f"Merkle descent cost vs divergence ({size} objects, 256 leaves)",
        ["divergent objects", "nodes compared", "detected"],
        rows,
    ))
    # Descent work grows with divergence but stays far below a full
    # 256-leaf comparison per extra divergent object.
    assert nodes_by_div[0] <= nodes_by_div[-1]
    assert nodes_by_div[-1] < 400

    eco, pub, sub, users = build(1000)
    lose_messages(eco, users, 5)
    auditor = ReplicationAuditor(sub, leaves=256)
    benchmark(auditor.audit)
