"""Process-shard throughput: does a second interpreter actually help?

The whole point of the message-passing-only control plane is that a
shard never reaches into a peer's heap — so services can be placed into
separate OS processes, each with its own GIL. This benchmark runs the
same six-service social ecosystem (two publishers, four subscribers)
two ways and times end-to-end completion, workload start to mesh
quiescence:

- **1 shard** — one worker process owns every service: both social
  workloads run back-to-back on one interpreter (the pre-shard shape,
  plus the same runner overhead so the comparison is fair);
- **2 shards** — the demo placement: each process owns one publisher,
  its local feed, and the *other* publisher's mirror, so the workloads
  run on two interpreters in parallel and every mirror delivery crosses
  the broker's forward seam.

Each operation carries a small emulated I/O wait (``THINK_S``) — the
paper's publishers are web-application request handlers blocking on
databases and HTTP, not pure CPU loops. That makes the benchmark honest
on any host: on a single-CPU box the second process wins by overlapping
waits, on multicore it additionally wins by parallel compute.

Throughput is publisher operations completed per second of wall time.
The acceptance bar is deliberately modest — 2 shards must not be
*slower* than 1 (near-linear scaling is the stretch goal, not the
gate): the cross-shard forwarding and quiescence polling must cost less
than the second interpreter buys. Results land in ``BENCH_shard.json``
at the repo root; set ``REPRO_BENCH_QUICK=1`` for the small workload.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from benchmarks.common import emit, format_table
from repro.runtime.transport.demo import (
    DEMO_PLACEMENT,
    OPS_ENV,
    build_demo_ecosystem,
)
from repro.runtime.transport.shard import ShardRunner

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
#: Operations per publisher (each variant runs 2x this in total).
OPERATIONS = 200 if QUICK else 1000
#: Emulated per-operation I/O wait (database/HTTP time of the request
#: handler driving the publisher).
THINK_S = 0.001

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_shard.json")

PLACEMENTS = {
    1: {"shard0": [svc for owned in DEMO_PLACEMENT.values()
                   for svc in owned]},
    2: DEMO_PLACEMENT,
}


def bench_scenario(ecosystem: Any, shard_name: str) -> Dict[str, Any]:
    """Run the social workload for every publisher this shard owns (one
    each in the 2-shard placement, both in the 1-shard placement)."""
    from repro.workloads import SocialWorkload

    operations = int(os.environ[OPS_ENV])
    done = 0
    for index, name in enumerate(("social0", "social1")):
        service = ecosystem.local_service(name)
        if service is None:
            continue
        workload = SocialWorkload(
            service,
            service.registry["User"],
            service.registry["Post"],
            service.registry["Comment"],
            users=5,
            seed=11 + index,
        )
        for _ in range(operations):
            workload.step()
            time.sleep(THINK_S)  # the request handler's I/O wait
        done += operations
    return {"operations": done}


def _run_variant(shards: int) -> Dict[str, Any]:
    os.environ[OPS_ENV] = str(OPERATIONS)
    runner = ShardRunner(
        build_demo_ecosystem,
        PLACEMENTS[shards],
        scenario=bench_scenario,
        timeout=300.0,
    )
    outcome = runner.run()
    total_ops = sum(
        shard["scenario"]["operations"]
        for shard in outcome["shards"].values()
    )
    stats = [shard["stats"] for shard in outcome["shards"].values()]
    assert total_ops == 2 * OPERATIONS
    assert all(s["dropped"] == 0 for s in stats)
    forwarded = sum(s["forwarded"] for s in stats)
    assert forwarded == sum(s["delivered"] for s in stats)
    return {
        "shards": shards,
        "operations": total_ops,
        "elapsed_s": outcome["elapsed"],
        "ops_per_s": total_ops / outcome["elapsed"],
        "routed": sum(s["routed"] for s in stats),
        "forwarded": forwarded,
        "quiesce_polls": outcome["quiesce_polls"],
    }


def test_two_shards_not_slower_than_one():
    """Two worker processes must complete the same total workload at
    least as fast as one, despite paying the cross-shard forward seam."""
    results = [_run_variant(1), _run_variant(2)]
    by_shards = {r["shards"]: r for r in results}
    speedup = by_shards[2]["ops_per_s"] / by_shards[1]["ops_per_s"]

    emit(format_table(
        f"Process-shard throughput (2x{OPERATIONS} social operations"
        f"{', quick' if QUICK else ''})",
        ["shards", "ops", "routed", "forwarded", "elapsed s", "ops/s"],
        [[r["shards"], r["operations"], r["routed"], r["forwarded"],
          f"{r['elapsed_s']:.2f}", f"{r['ops_per_s']:,.0f}"]
         for r in results],
    ) + [f"2 shards vs 1: {speedup:.2f}x"])

    with open(_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump({
            "benchmark": "shard_throughput",
            "quick": QUICK,
            "operations_per_publisher": OPERATIONS,
            "variants": results,
            "speedup_2_shards_vs_1": speedup,
        }, fh, indent=2)
        fh.write("\n")

    assert speedup >= 1.0, (
        f"2-shard run was slower than single-process: {speedup:.2f}x"
    )


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    test_two_shards_not_slower_than_one()
    print(f"wrote {_JSON_PATH}")
