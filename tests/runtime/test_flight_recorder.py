"""FlightRecorder rings, eviction order, and the JSONL anomaly dump."""

import json

from repro.runtime.monitor import FlightRecorder, load_dump
from repro.runtime.tracing import Trace


class TestRings:
    def test_event_ring_evicts_oldest_first(self):
        recorder = FlightRecorder(event_capacity=3)
        for i in range(5):
            recorder.record_event("tick", n=i)
        events = recorder.events()
        assert [e.data["n"] for e in events] == [2, 3, 4]
        # seq numbers keep counting across evictions.
        assert [e.seq for e in events] == [3, 4, 5]

    def test_trace_ring_evicts_oldest_first(self):
        recorder = FlightRecorder(trace_capacity=2)
        traces = [Trace(trace_id=f"t{i}") for i in range(4)]
        for trace in traces:
            recorder.record_trace(trace)
        assert [t.trace_id for t in recorder.traces()] == ["t2", "t3"]

    def test_event_kind_filter_and_anomalies(self):
        recorder = FlightRecorder()
        recorder.record_event("broker.drop", uid="pub:1")
        recorder.anomaly("worker.deadlock", uid="pub:2")
        assert [e.kind for e in recorder.events("broker.drop")] == ["broker.drop"]
        anomalies = recorder.anomalies()
        assert [e.kind for e in anomalies] == ["worker.deadlock"]
        assert anomalies[0].severity == "anomaly"

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.record_event("x")
        recorder.record_trace(Trace())
        recorder.clear()
        assert recorder.events() == [] and recorder.traces() == []


class TestDump:
    def test_anomaly_triggers_jsonl_dump(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.record_event("broker.drop", uid="pub:9", queue="sub")
        trace = Trace(app="pub", trace_id="pub:9")
        trace.add("subscriber.apply", 1.0, 0.25)
        recorder.record_trace(trace)
        recorder.anomaly("slo.breach", publisher="pub", subscriber="sub")

        assert len(recorder.dumps) == 1
        lines = load_dump(recorder.dumps[0])
        meta = lines[0]
        assert meta["type"] == "meta"
        assert meta["reason"] == "slo.breach"
        assert meta["events"] == 2 and meta["traces"] == 1
        kinds = [entry["kind"] for entry in lines if entry["type"] == "event"]
        assert kinds == ["broker.drop", "slo.breach"]
        dumped_traces = [e for e in lines if e["type"] == "trace"]
        assert dumped_traces[0]["trace_id"] == "pub:9"
        assert dumped_traces[0]["spans"][0]["stage"] == "subscriber.apply"

    def test_info_events_do_not_dump(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.record_event("repair.run", objects_repaired=3)
        assert recorder.dumps == []

    def test_no_dump_dir_is_memory_only(self):
        recorder = FlightRecorder()
        recorder.anomaly("slo.breach")
        assert recorder.dumps == []
        assert recorder.dump() is None

    def test_dump_rate_limit(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path), dump_min_interval=3600)
        recorder.anomaly("first")
        recorder.anomaly("second")  # within the interval: suppressed
        assert len(recorder.dumps) == 1
        recorder.dump(reason="manual")  # explicit dumps always run
        assert len(recorder.dumps) == 2

    def test_dump_carries_registry_exemplars(self, tmp_path):
        from repro.runtime.metrics import MetricsRegistry
        from repro.runtime.tracing import activate_trace

        registry = MetricsRegistry()
        histogram = registry.histogram("monitor.pub_to_sub.lag")
        histogram.exemplar_threshold = 0.0
        with activate_trace(Trace(trace_id="pub:13")):
            histogram.record(4.2)
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.registry = registry
        recorder.anomaly("slo.breach")
        exemplars = [
            e for e in load_dump(recorder.dumps[0]) if e["type"] == "exemplar"
        ]
        assert exemplars[0]["metric"] == "monitor.pub_to_sub.lag"
        assert exemplars[0]["trace_id"] == "pub:13"

    def test_dump_lines_are_valid_json(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        recorder.anomaly("kind with spaces/and:punct")
        path = recorder.dumps[0]
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                json.loads(line)
