"""WorkerFleet: threaded workers across a whole ecosystem."""

from repro.apps import build_social_ecosystem
from repro.runtime.workers import WorkerFleet


class TestWorkerFleet:
    def test_fleet_covers_only_subscribing_services(self):
        world = build_social_ecosystem()
        fleet = WorkerFleet(world.eco, workers=2)
        names = {pool.service.name for pool in fleet.pools}
        assert names == {"mailer", "analyzer", "spree"}

    def test_fleet_drives_decorator_cascade(self):
        world = build_social_ecosystem()
        with WorkerFleet(world.eco, workers=2, wait_timeout=0.5) as fleet:
            ada = world.diaspora.users_create("ada", "a@x")
            world.diaspora.posts_create(
                ada, "coffee coffee coffee, nothing but coffee"
            )
            assert fleet.wait_until_idle(timeout=30)
        assert "coffee" in world.spree.User.find(ada.id).interests
