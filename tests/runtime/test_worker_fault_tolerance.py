"""Worker resilience against engine faults during message application."""


from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.workers import SubscriberWorkerPool


def build():
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    return eco, pub, pub.registry["User"], sub, sub.registry["User"]


class TestApplyFaults:
    def test_transient_db_fault_is_retried(self):
        """The subscriber's engine rejects a few writes; redelivery
        eventually lands every update."""
        eco, pub, User, sub, SubUser = build()
        sub.database.faults.fail_next_writes = 3
        for i in range(10):
            User.create(name=f"u{i}")
        with SubscriberWorkerPool(sub, workers=2, wait_timeout=0.05) as pool:
            assert pool.wait_until_idle(timeout=20)
            assert pool.apply_errors >= 1
        assert SubUser.count() == 10

    def test_worker_threads_survive_faults(self):
        eco, pub, User, sub, SubUser = build()
        pool = SubscriberWorkerPool(sub, workers=2, wait_timeout=0.05)
        with pool:
            sub.database.faults.fail_next_writes = 2
            for i in range(5):
                User.create(name=f"u{i}")
            assert pool.wait_until_idle(timeout=20)
            # Threads are still alive and keep processing fresh traffic.
            User.create(name="after")
            assert pool.wait_until_idle(timeout=20)
        assert SubUser.count() == 6

    def test_poison_message_eventually_dropped(self):
        """An apply that always fails exhausts the delivery budget and is
        dropped (counted), instead of wedging the queue."""
        eco, pub, User, sub, SubUser = build()
        sub.database.faults.down = True
        User.create(name="poison")
        pool = SubscriberWorkerPool(sub, workers=1, wait_timeout=0.01,
                                    max_deliveries=3)
        with pool:
            assert pool.wait_until_idle(timeout=20)
        assert pool.deadlocked_messages == 1
        sub.database.faults.down = False
        # Queue is clear; later traffic flows.
        User.create(name="fresh")
        sub.subscriber.drain()
        assert SubUser.count(name="fresh") == 1
