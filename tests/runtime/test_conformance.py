"""The conformance harness end to end: determinism, per-mode sweeps,
and one committed schedule per fixed race (each re-broken by reverting
its fix in-place and asserting the checker names the right invariant)."""

import threading
import time
from unittest import mock

from repro.broker.queue import SubscriberQueue
from repro.core.subscriber import SynapseSubscriber
from repro.errors import BrokerError, QueueDecommissioned
from repro.runtime import workers as workers_mod
from repro.runtime.conformance import (
    INV_GATE,
    INV_IDLE,
    INV_LEAK,
    INV_POP,
    INV_WORKER,
    ScheduleConfig,
    replay_twice,
    run_schedule,
)
from repro.runtime.conformance.scenarios import (
    DECOMMISSION_ACK_MARKER,
    DECOMMISSION_ACK_SCHEDULE,
    GATE_RACE_MARKER,
    GATE_RACE_SCHEDULE,
    drain_leak_scenario,
    fleet_idle_deadline_scenario,
    pop_deadline_scenario,
    trace_has,
)
from repro.runtime.interleave import hook_installed, yield_point


def invariants(violations):
    return {violation.invariant for violation in violations}


class TestDeterminism:
    def test_same_seed_identical_trace_twice(self):
        config = ScheduleConfig(mode="causal", seed=11, workers=3, messages=9)
        first, second = replay_twice(config)
        assert first.trace == second.trace
        assert first.trace  # non-trivial schedule
        # And once more, per the acceptance bar: determinism asserted twice.
        third = run_schedule(config)
        assert third.trace == first.trace

    def test_crash_recovery_schedule_deterministic(self):
        config = ScheduleConfig(
            mode="causal", seed=5, workers=3, messages=9, crash_recovery=True
        )
        first, second = replay_twice(config)
        assert first.trace == second.trace

    def test_different_seeds_differ(self):
        a = run_schedule(ScheduleConfig(mode="causal", seed=1))
        b = run_schedule(ScheduleConfig(mode="causal", seed=2))
        assert a.trace != b.trace

    def test_hook_uninstalled_after_run(self):
        run_schedule(ScheduleConfig(mode="weak", seed=3))
        assert not hook_installed()
        yield_point("noop")  # must be a no-op outside a schedule


class TestModeSweeps:
    def test_causal_schedules_hold_invariants(self):
        for seed in range(4):
            result = run_schedule(ScheduleConfig(mode="causal", seed=seed))
            assert result.ok, [str(v) for v in result.violations]

    def test_global_schedules_hold_invariants(self):
        for seed in range(4):
            result = run_schedule(ScheduleConfig(mode="global", seed=seed))
            assert result.ok, [str(v) for v in result.violations]

    def test_weak_schedules_hold_invariants(self):
        for seed in range(4):
            result = run_schedule(ScheduleConfig(mode="weak", seed=seed))
            assert result.ok, [str(v) for v in result.violations]

    def test_crash_recovery_at_least_once_with_dedup(self):
        applied_any_duplicate = False
        for seed in range(6):
            result = run_schedule(
                ScheduleConfig(
                    mode="causal", seed=seed, crash_recovery=True, messages=9
                )
            )
            assert result.ok, [str(v) for v in result.violations]
            applied_any_duplicate = (
                applied_any_duplicate or result.stats["duplicates"] > 0
            )
        # At least one schedule must actually exercise redelivery dedup.
        assert applied_any_duplicate

    def test_broker_faults_give_up_not_wedge(self):
        for seed in range(4):
            result = run_schedule(
                ScheduleConfig(mode="causal", seed=seed, faults=1, messages=9)
            )
            assert result.ok, [str(v) for v in result.violations]

    def test_generation_bump_schedules_hold_invariants(self):
        for mode in ("causal", "global"):
            for seed in range(4):
                result = run_schedule(
                    ScheduleConfig(mode=mode, seed=seed, generation_bump=True)
                )
                assert result.ok, [str(v) for v in result.violations]


class TestFlowSchedules:
    """Flow control (coalescing + batched apply) under the scheduler:
    every invariant must hold in all three modes, and only weak-mode
    publishes may ever be shed."""

    def test_flow_schedules_hold_invariants_in_all_modes(self):
        coalesced_any = False
        for mode in ("causal", "global", "weak"):
            for seed in range(4):
                result = run_schedule(
                    ScheduleConfig(mode=mode, seed=seed, flow=True, messages=12)
                )
                assert result.ok, [str(v) for v in result.violations]
                coalesced_any = coalesced_any or result.stats["coalesced"] > 0
        # The sweep must actually exercise the coalescing path.
        assert coalesced_any

    def test_flow_schedule_deterministic(self):
        config = ScheduleConfig(mode="causal", seed=7, flow=True, messages=12)
        first, second = replay_twice(config)
        assert first.trace == second.trace
        assert first.trace

    def test_flow_with_queue_limit_sheds_only_weak(self):
        result = run_schedule(
            ScheduleConfig(
                mode="weak", seed=2, flow=True, messages=14, queue_limit=4
            )
        )
        assert result.ok, [str(v) for v in result.violations]

    def test_shedding_a_causal_message_is_flagged(self):
        from repro.runtime.conformance import INV_FLOW
        from repro.runtime.flow.admission import QueueFlow

        def always_shed(self, message, depth):
            self.shed.increment()
            return "shed"

        with mock.patch.object(QueueFlow, "admit", always_shed):
            result = run_schedule(
                ScheduleConfig(
                    mode="causal", seed=1, flow=True, messages=8,
                    queue_limit=16,
                )
            )
        assert INV_FLOW in invariants(result.violations)

    def test_directed_unsafe_coalesce_scenario_is_clean(self):
        from repro.runtime.conformance.scenarios import (
            flow_coalesce_safety_scenario,
            run_directed_scenarios,
        )

        assert flow_coalesce_safety_scenario() == []
        assert "flow.unsafe-coalesce-rejected" in run_directed_scenarios()


class TestGateRaceSchedule:
    """Generation gate vs in-flight deliveries (fix: ``peek_unacked``)."""

    def test_fixed_gate_defers_and_schedule_is_clean(self):
        result = run_schedule(GATE_RACE_SCHEDULE)
        assert result.ok, [str(v) for v in result.violations]
        # The schedule provably enters the race window: the gate had to
        # defer behind an older-generation delivery.
        assert trace_has(result.trace, GATE_RACE_MARKER)

    def test_reverting_peek_unacked_breaks_flush_safety(self):
        with mock.patch.object(SubscriberQueue, "peek_unacked", lambda self: []):
            result = run_schedule(GATE_RACE_SCHEDULE)
        assert INV_GATE in invariants(result.violations)


class TestDecommissionAckSchedule:
    """Ack of a cleared delivery on a dead queue (fix: tolerated no-op)."""

    def test_fixed_ack_is_tolerated_and_schedule_is_clean(self):
        result = run_schedule(DECOMMISSION_ACK_SCHEDULE)
        assert result.ok, [str(v) for v in result.violations]
        assert trace_has(result.trace, DECOMMISSION_ACK_MARKER)
        assert result.stats["tolerated_acks"] > 0

    def test_reverting_to_strict_ack_kills_workers(self):
        def legacy_ack(self, message):
            yield_point("queue.ack", queue=self.name, message=message)
            with self._lock:
                if message.seq not in self._unacked:
                    raise BrokerError(f"ack of unknown delivery {message.seq}")
                del self._unacked[message.seq]
                self.total_acked += 1
            yield_point("queue.acked", queue=self.name, message=message)

        with mock.patch.object(SubscriberQueue, "ack", legacy_ack):
            result = run_schedule(DECOMMISSION_ACK_SCHEDULE)
        assert INV_WORKER in invariants(result.violations)


class TestPopDeadlineScenario:
    """Spurious wakeup ends the wait early (fix: deadline re-check loop)."""

    def test_fixed_pop_survives_spurious_wakeups(self):
        assert pop_deadline_scenario() == []

    def test_reverting_to_single_wait_drops_the_delivery(self):
        def legacy_pop(self, timeout=0.0):
            with self._lock:
                if self.decommissioned:
                    raise QueueDecommissioned(self.name)
                if not self._items and timeout != 0.0:
                    self._available.wait(timeout=timeout)
                if self.decommissioned:
                    raise QueueDecommissioned(self.name)
                if not self._items:
                    return None
                message = self._items.popleft()
                message.delivery_count += 1
                self._unacked[message.seq] = message
            return message

        with mock.patch.object(SubscriberQueue, "pop", legacy_pop):
            violations = pop_deadline_scenario()
        assert INV_POP in invariants(violations)


class TestFleetIdleDeadlineScenario:
    """Timeout granted per pool per round (fix: one shared deadline)."""

    def test_fixed_fleet_respects_the_shared_deadline(self):
        assert fleet_idle_deadline_scenario() == []

    def test_reverting_to_per_pool_budget_inflates_the_wait(self):
        def legacy_wait_until_idle(self, timeout=30.0, settle_rounds=3):
            for _ in range(settle_rounds):
                for pool in self.pools:
                    if not pool.wait_until_idle(timeout=timeout):
                        return False
            return True

        with mock.patch.object(
            workers_mod.WorkerFleet, "wait_until_idle", legacy_wait_until_idle
        ):
            violations = fleet_idle_deadline_scenario()
        assert INV_IDLE in invariants(violations)


class TestDrainLeakScenario:
    """Decommission mid-drain leaks popped deliveries (fix: nack pending)."""

    def test_fixed_drain_returns_pending_messages(self):
        assert drain_leak_scenario() == []

    def test_reverting_the_nack_loop_leaks_deliveries(self):
        def legacy_drain(self, max_rounds=1000):
            if self.queue is None:
                return 0
            processed = 0
            pending = []
            for _ in range(max_rounds):
                while True:
                    message = self.queue.pop()
                    if message is None:
                        break
                    pending.append(message)
                progress = False
                remaining = []
                for message in sorted(pending, key=lambda m: m.seq):
                    if self.process_message(message):
                        self.queue.ack(message)
                        processed += 1
                        progress = True
                    else:
                        remaining.append(message)
                pending = remaining
                if not progress and not len(self.queue):
                    break
            for message in pending:
                self.queue.nack(message)
            return processed

        with mock.patch.object(SynapseSubscriber, "drain", legacy_drain):
            violations = drain_leak_scenario()
        assert INV_LEAK in invariants(violations)


class TestWorkerPoolDecommissionRouting:
    """A real pool worker must survive a decommission mid-message and
    route the condition to ``on_deadlock`` instead of dying silently."""

    def test_pool_worker_routes_decommission_to_on_deadlock(self):
        from repro.core import Ecosystem
        from repro.databases.document import MongoLike
        from repro.databases.relational import PostgresLike
        from repro.orm import Field, Model

        eco = Ecosystem(queue_limit=3)
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name"], name="Doc")
        class PubDoc(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Doc")
        class SubDoc(Model):
            name = Field(str)

        deadlocked = threading.Event()
        pool = workers_mod.SubscriberWorkerPool(
            sub, workers=2, on_deadlock=lambda service: deadlocked.set()
        )
        with pool:
            with pub.controller():
                for i in range(10):  # overflow: queue_limit=3
                    PubDoc.create(name=f"doc-{i}")
            assert deadlocked.wait(5.0)
        # No thread died on an unhandled exception: stop() joined all.
        assert not any(thread.is_alive() for thread in pool._threads)


class TestSchedulerHasNoWallClockSleeps:
    def test_schedule_wall_time_is_bounded(self):
        # A few hundred scheduling steps must complete in well under a
        # second of wall time: workers switch on events, never timers.
        start = time.monotonic()
        result = run_schedule(ScheduleConfig(mode="causal", seed=4))
        elapsed = time.monotonic() - start
        assert result.steps > 50
        assert elapsed < 5.0
