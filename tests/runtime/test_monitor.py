"""LagMonitor: per-link SLO evaluation edges, breach transitions, and
the end-to-end acceptance scenario (drop -> wedge -> breach -> dump)."""

from types import SimpleNamespace

import pytest

from repro.clock import VirtualClock
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.monitor import FlightRecorder, LinkSLO, SlidingWindow, load_dump


def build(eco):
    pub = eco.service("pub", database=MongoLike("p"))

    @pub.model(publish=["name", "score"], name="User")
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("s"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]}, name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    return pub, sub, User


def virtual_eco(**kwargs):
    clock = VirtualClock(start=1000.0)
    eco = Ecosystem(clock=clock, **kwargs)
    pub, sub, User = build(eco)
    return eco, clock, pub, sub, User


def stub(clock, lag, dwell=None):
    """A message-shaped object for driving observe_applied directly."""
    return SimpleNamespace(app="pub", published_at=clock.now() - lag, dwell=dwell)


class TestSlidingWindow:
    def test_empty_window(self):
        window = SlidingWindow(8)
        assert len(window) == 0
        assert window.percentile(99) == 0.0
        assert window.over_fraction(0.0) == 0.0

    def test_eviction_keeps_most_recent(self):
        window = SlidingWindow(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.record(value)
        assert window.values() == [2.0, 3.0, 4.0]

    def test_nearest_rank_percentiles(self):
        window = SlidingWindow(200)
        for value in range(100, 0, -1):
            window.record(float(value))
        assert window.percentile(50) == 50.0
        assert window.percentile(99) == 99.0
        assert window.percentile(100) == 100.0

    def test_size_validated(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestSLOEdges:
    def test_empty_window_is_no_data_not_breached(self):
        eco, clock, pub, sub, User = virtual_eco()
        report = eco.monitor.health()
        link = report.link("pub", "sub")
        assert link is not None
        assert link.status == "no_data"
        assert not link.breached
        assert not report.breached
        assert link.samples == 0

    def test_single_sample_under_threshold_is_ok(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.set_slo("pub", "sub", LinkSLO(p99_lag=0.5))
        eco.monitor.observe_applied("sub", stub(clock, lag=0.1))
        link = eco.monitor.health().link("pub", "sub")
        assert link.status == "ok"
        assert link.samples == 1
        assert link.p50 == pytest.approx(0.1)
        assert link.p99 == pytest.approx(0.1)

    def test_p99_exactly_at_threshold_is_compliant(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.set_slo("pub", "sub", LinkSLO(p99_lag=0.5))
        eco.monitor.observe_applied("sub", stub(clock, lag=0.5))
        link = eco.monitor.health().link("pub", "sub")
        assert link.p99 == pytest.approx(0.5)
        assert link.status == "ok"
        assert link.over_fraction == 0.0

    def test_strictly_over_threshold_breaches(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.set_slo("pub", "sub", LinkSLO(p99_lag=0.5))
        eco.monitor.observe_applied("sub", stub(clock, lag=0.6))
        link = eco.monitor.health().link("pub", "sub")
        assert link.breached
        assert "p99_lag" in link.reasons

    def test_burn_rate_breach_without_p99_breach(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.set_slo(
            "pub", "sub", LinkSLO(p99_lag=1.0, over_budget=0.001, window=2048)
        )
        for _ in range(995):
            eco.monitor.observe_applied("sub", stub(clock, lag=0.1))
        for _ in range(5):
            eco.monitor.observe_applied("sub", stub(clock, lag=2.0))
        link = eco.monitor.health().link("pub", "sub")
        # 0.5% of the window is over a 0.1% budget: burn rate 5, yet the
        # p99 sample itself is still clean.
        assert link.p99 == pytest.approx(0.1)
        assert link.burn_rate == pytest.approx(5.0)
        assert link.reasons == ["burn_rate"]

    def test_wedged_link_breaches_via_stall_with_empty_window(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.set_slo("pub", "sub", LinkSLO(stall_after=5.0))
        with pub.controller():
            User.create(name="ada")
        clock.advance(10.0)  # nobody drains: the message ages in queue
        link = eco.monitor.health().link("pub", "sub")
        assert link.samples == 0
        assert link.queued == 1
        assert link.oldest_in_transit == pytest.approx(10.0)
        assert link.status == "breached"
        assert link.reasons == ["stalled"]

    def test_breach_transition_emits_anomaly_once_then_recovery(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.set_slo("pub", "sub", LinkSLO(p99_lag=0.5, window=4))
        eco.monitor.observe_applied("sub", stub(clock, lag=2.0))
        eco.monitor.health()
        eco.monitor.health()  # still breached: no second anomaly
        breaches = eco.recorder.events("slo.breach")
        assert len(breaches) == 1
        assert breaches[0].severity == "anomaly"
        assert breaches[0].data["publisher"] == "pub"
        # Four clean samples evict the bad one from the 4-slot window.
        for _ in range(4):
            eco.monitor.observe_applied("sub", stub(clock, lag=0.1))
        assert not eco.monitor.health().breached
        recoveries = eco.recorder.events("slo.recovered")
        assert len(recoveries) == 1
        assert recoveries[0].severity == "info"
        assert len(eco.recorder.events("slo.breach")) == 1

    def test_dwell_feeds_the_link_dwell_histogram(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.observe_applied("sub", stub(clock, lag=0.1, dwell=0.25))
        histogram = eco.metrics.histogram("monitor.pub_to_sub.dwell")
        assert histogram.count == 1
        assert histogram.total() == pytest.approx(0.25)

    def test_negative_clock_skew_clamps_to_zero(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.observe_applied("sub", stub(clock, lag=-3.0))
        link = eco.monitor.health().link("pub", "sub")
        assert link.p99 == 0.0
        assert link.status == "ok"

    def test_report_shapes(self):
        eco, clock, pub, sub, User = virtual_eco()
        eco.monitor.observe_applied("sub", stub(clock, lag=0.1))
        report = eco.monitor.health()
        assert report.link("pub", "nope") is None
        payload = report.to_dict()
        assert payload["breached"] is False
        assert payload["links"][0]["publisher"] == "pub"
        lines = report.summary_lines()
        assert any("pub -> sub" in line for line in lines)


class TestAcceptance:
    """ISSUE acceptance: a two-service workload reports per-link health;
    an injected broker drop wedges the causal link, flips it to breached,
    and the breach dump carries an exemplar-linked trace."""

    def test_drop_wedges_link_and_dump_links_exemplar_trace(self, tmp_path):
        clock = VirtualClock(start=1000.0)
        recorder = FlightRecorder(dump_dir=str(tmp_path), clock=clock)
        eco = Ecosystem(clock=clock, recorder=recorder)
        pub, sub, User = build(eco)
        eco.enable_tracing()
        eco.monitor.set_slo(
            "pub", "sub", LinkSLO(p99_lag=0.5, stall_after=5.0, window=64)
        )

        with pub.controller():
            users = [User.create(name=f"u{i}", score=i) for i in range(3)]
        sub.subscriber.drain()
        link = eco.monitor.health().link("pub", "sub")
        assert link.status == "ok"
        assert link.samples == 3

        # One slow apply: published now, applied two virtual seconds
        # later — over the SLO, so the lag histogram captures an exemplar
        # naming this very message.
        with pub.controller():
            users[0].score = 100
            users[0].save()
        slow_uid = sub.subscriber.queue.peek_all()[0].uid
        clock.advance(2.0)
        assert sub.subscriber.drain() == 1

        # The §6.5 injection: drop one write-message, then a follow-up
        # write to the same object wedges the causal queue forever.
        eco.broker.drop_next(1)
        with pub.controller():
            users[1].score = 101
            users[1].save()
        with pub.controller():
            users[1].score = 102
            users[1].save()
        assert sub.subscriber.drain() == 0  # wedged behind the lost message
        clock.advance(10.0)

        report = eco.monitor.health()
        link = report.link("pub", "sub")
        assert link.breached
        assert "stalled" in link.reasons
        assert "p99_lag" in link.reasons
        assert link.queued == 1

        # The breach transition froze the evidence to one JSONL artifact.
        assert len(recorder.dumps) == 1
        entries = load_dump(recorder.dumps[0])
        kinds = {e["kind"] for e in entries if e["type"] == "event"}
        assert "broker.drop" in kinds
        assert "slo.breach" in kinds
        exemplars = [
            e
            for e in entries
            if e["type"] == "exemplar" and e["metric"] == "monitor.pub_to_sub.lag"
        ]
        assert exemplars and exemplars[0]["trace_id"] == slow_uid
        # ... and the ring still holds the full trace the exemplar names.
        trace_ids = {e["trace_id"] for e in entries if e["type"] == "trace"}
        assert slow_uid in trace_ids
