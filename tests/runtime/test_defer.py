"""``SubscriberQueue.defer`` and the worker pools' stall rotation.

``nack`` returns a message to the *front* of the queue — right for
apply errors (retry where you stood), fatal for pure dependency stalls:
when the predecessor of a causal chain sits *behind* the nacked message,
front-requeue re-pops the same message forever while the predecessor
starves (the worker-pool livelock this rotation fixed). ``defer``
returns the message to the *back*, so every queued message surfaces
within one queue revolution.
"""

from __future__ import annotations

from repro.broker.message import Message
from repro.broker.queue import SubscriberQueue
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.flow import FlowConfig
from repro.runtime.workers import SubscriberWorkerPool


def make_message(seq):
    return Message(
        app="pub", operations=[], dependencies={}, published_at=0.0,
        uid=f"pub:{seq}",
    )


class TestQueueDefer:
    def test_defer_returns_message_to_the_back(self):
        queue = SubscriberQueue("sub")
        queue.publish(make_message(1))
        queue.publish(make_message(2))
        first = queue.pop(timeout=0)
        assert first.uid == "pub:1"
        queue.defer(first)
        assert queue.pop(timeout=0).uid == "pub:2"
        assert queue.pop(timeout=0).uid == "pub:1"

    def test_nack_still_returns_message_to_the_front(self):
        queue = SubscriberQueue("sub")
        queue.publish(make_message(1))
        queue.publish(make_message(2))
        first = queue.pop(timeout=0)
        queue.nack(first)
        assert queue.pop(timeout=0).uid == "pub:1"

    def test_defer_clears_the_unacked_slot(self):
        queue = SubscriberQueue("sub")
        queue.publish(make_message(1))
        message = queue.pop(timeout=0)
        assert queue.unacked_count == 1
        queue.defer(message)
        assert queue.unacked_count == 0
        assert len(queue) == 1

    def test_defer_of_unknown_delivery_is_tolerated(self):
        queue = SubscriberQueue("sub")
        queue.publish(make_message(1))
        message = queue.pop(timeout=0)
        queue.ack(message)
        queue.defer(message)  # stale defer after an ack: no-op
        assert len(queue) == 0
        assert queue.unacked_count == 0

    def test_defer_on_decommissioned_queue_is_tolerated(self):
        queue = SubscriberQueue("sub", max_size=2)
        queue.publish(make_message(1))
        message = queue.pop(timeout=0)
        for seq in range(2, 6):
            queue.publish(make_message(seq))  # past the kill cliff
        assert queue.decommissioned
        queue.defer(message)  # must not raise, must not resurrect


class TestWorkerStallRotation:
    def _chain_ecosystem(self, **flow_kwargs):
        eco = Ecosystem()
        if flow_kwargs:
            eco.enable_flow(FlowConfig(**flow_kwargs))
        pub = eco.service(
            "pub", database=MongoLike("pub-db"), delivery_mode="causal"
        )

        @pub.model(publish=["name", "score"], name="Doc")
        class Doc(Model):
            name = Field(str)
            score = Field(int, default=0)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(
            subscribe={
                "from": "pub", "fields": ["name", "score"], "mode": "causal"
            },
            name="Doc",
        )
        class SubDoc(Model):
            name = Field(str)
            score = Field(int, default=0)

        return eco, pub, sub, Doc, SubDoc

    def test_deep_chain_drains_with_single_message_workers(self):
        eco, pub, sub, Doc, SubDoc = self._chain_ecosystem()
        with pub.controller():
            docs = [Doc.create(name=f"d{i}", score=i) for i in range(40)]
        pool = SubscriberWorkerPool(
            sub, workers=3, wait_timeout=0.1, max_deliveries=10_000
        )
        assert pool._flow is None
        with pool:
            assert pool.wait_until_idle(timeout=20)
        assert pool.deadlocked_messages == 0
        for doc in docs:
            assert SubDoc.__mapper__.find(doc.id) is not None

    def test_deep_chain_drains_with_batched_workers(self):
        """The livelock regression: a 40-deep causal chain, multiple
        batched workers, and AIMD-shrunk batches used to cycle
        pop -> dependency wait -> nack-to-front forever once the chain
        head sank behind nacked later messages. Stall rotation (defer)
        guarantees the head surfaces within one revolution."""
        eco, pub, sub, Doc, SubDoc = self._chain_ecosystem(
            batch_apply=True, batch_max=8
        )
        with pub.controller():
            docs = [Doc.create(name=f"d{i}", score=i) for i in range(40)]
        pool = SubscriberWorkerPool(
            sub, workers=3, wait_timeout=0.1, max_deliveries=10_000
        )
        assert pool._flow is not None
        with pool:
            assert pool.wait_until_idle(timeout=20)
        assert pool.deadlocked_messages == 0
        for doc in docs:
            assert SubDoc.__mapper__.find(doc.id) is not None
