"""MetricsRegistry, Counter and the cached-percentile Histogram."""

import threading

import pytest

from repro.runtime.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_basic_increment(self):
        counter = Counter()
        assert counter.value == 0
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")
        registry.histogram("y")
        with pytest.raises(ValueError):
            registry.counter("y")

    def test_snapshot_merges_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment(3)
        registry.histogram("publisher.app.overhead").extend([0.1, 0.2])
        snap = registry.snapshot()
        assert snap["broker.routed"] == 3
        assert snap["publisher.app.overhead"]["count"] == 2
        assert list(snap) == sorted(snap)

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment()
        registry.counter("subscriber.sub.processed").increment()
        assert list(registry.snapshot(prefix="broker.")) == ["broker.routed"]

    def test_value_of_untouched_counter(self):
        assert MetricsRegistry().value("nope") == 0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").increment(7)
        registry.histogram("h").record(1.0)
        registry.reset()
        assert registry.value("c") == 0
        assert registry.histogram("h").count == 0


class TestHistogramPercentileCache:
    def test_percentiles_correct_after_interleaved_mutation(self):
        histogram = Histogram()
        histogram.extend([5.0, 1.0, 3.0])
        assert histogram.percentile(50) == 3.0
        assert histogram.percentile(100) == 5.0
        # Mutations must invalidate the cached sorted view.
        histogram.record(0.5)
        assert histogram.percentile(25) == 0.5
        histogram.extend([10.0])
        assert histogram.percentile(100) == 10.0
        histogram.reset()
        assert histogram.percentile(99) == 0.0

    def test_sort_happens_once_per_generation(self):
        histogram = Histogram()
        histogram.extend(list(range(100, 0, -1)))
        histogram.percentile(50)
        cached = histogram._sorted
        assert cached is not None
        histogram.percentile(99)
        assert histogram._sorted is cached  # no re-sort between reads
        histogram.record(0)
        assert histogram._sorted is None  # invalidated on write
