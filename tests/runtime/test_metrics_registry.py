"""MetricsRegistry, Counter, Gauge and the cached-percentile Histogram."""

import threading

import pytest

from repro.runtime.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.runtime.tracing import Trace, activate_trace


class TestCounter:
    def test_basic_increment(self):
        counter = Counter()
        assert counter.value == 0
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_add_and_reset(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(48)
        assert gauge.value == 48
        gauge.add(-3)
        gauge.add()
        assert gauge.value == 46
        gauge.reset()
        assert gauge.value == 0.0

    def test_concurrent_adds_are_not_lost(self):
        gauge = Gauge()

        def hammer():
            for _ in range(1000):
                gauge.add(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 8000.0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.histogram("a.h") is registry.histogram("a.h")
        assert registry.gauge("a.g") is registry.gauge("a.g")

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")
        registry.histogram("y")
        with pytest.raises(ValueError):
            registry.counter("y")
        registry.gauge("z")
        with pytest.raises(ValueError):
            registry.counter("z")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_includes_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("flow.sub.credits").set(37)
        snap = registry.snapshot(prefix="flow.")
        assert snap["flow.sub.credits"] == 37

    def test_reset_clears_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        registry.reset()
        assert registry.gauge("g").value == 0.0

    def test_snapshot_merges_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment(3)
        registry.histogram("publisher.app.overhead").extend([0.1, 0.2])
        snap = registry.snapshot()
        assert snap["broker.routed"] == 3
        assert snap["publisher.app.overhead"]["count"] == 2
        assert list(snap) == sorted(snap)

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment()
        registry.counter("subscriber.sub.processed").increment()
        assert list(registry.snapshot(prefix="broker.")) == ["broker.routed"]

    def test_value_of_untouched_counter(self):
        assert MetricsRegistry().value("nope") == 0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").increment(7)
        registry.histogram("h").record(1.0)
        registry.reset()
        assert registry.value("c") == 0
        assert registry.histogram("h").count == 0


class TestHistogramPercentileCache:
    def test_percentiles_correct_after_interleaved_mutation(self):
        histogram = Histogram()
        histogram.extend([5.0, 1.0, 3.0])
        assert histogram.percentile(50) == 3.0
        assert histogram.percentile(100) == 5.0
        # Mutations must invalidate the cached sorted view.
        histogram.record(0.5)
        assert histogram.percentile(25) == 0.5
        histogram.extend([10.0])
        assert histogram.percentile(100) == 10.0
        histogram.reset()
        assert histogram.percentile(99) == 0.0

    def test_sort_happens_once_per_generation(self):
        histogram = Histogram()
        histogram.extend(list(range(100, 0, -1)))
        histogram.percentile(50)
        cached = histogram._sorted
        assert cached is not None
        histogram.percentile(99)
        assert histogram._sorted is cached  # no re-sort between reads
        histogram.record(0)
        assert histogram._sorted is None  # invalidated on write


class TestBoundedReservoir:
    def test_samples_bounded_while_count_and_sum_stay_exact(self):
        histogram = Histogram(reservoir_size=64, seed=1)
        n = 10_000
        for i in range(n):
            histogram.record(float(i))
        assert len(histogram._samples) == 64
        assert histogram.count == n
        assert histogram.total() == float(sum(range(n)))
        assert histogram.mean() == pytest.approx(sum(range(n)) / n)

    def test_percentiles_exact_until_reservoir_fills(self):
        histogram = Histogram(reservoir_size=100, seed=3)
        histogram.extend([float(i) for i in range(100, 0, -1)])
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(100) == 100.0

    def test_downsampling_is_deterministic_per_seed(self):
        def load(seed):
            histogram = Histogram(reservoir_size=32, seed=seed)
            for i in range(5000):
                histogram.record(float(i))
            return list(histogram._samples)

        assert load(7) == load(7)
        assert load(7) != load(8)

    def test_reset_reseeds_the_reservoir_rng(self):
        histogram = Histogram(reservoir_size=16, seed=5)
        for i in range(1000):
            histogram.record(float(i))
        first = list(histogram._samples)
        histogram.reset()
        assert histogram.count == 0 and histogram.total() == 0.0
        for i in range(1000):
            histogram.record(float(i))
        assert list(histogram._samples) == first

    def test_registry_seeds_are_stable_per_name(self):
        def load(registry):
            histogram = registry.histogram("subscriber.sub.apply")
            for i in range(3000):
                histogram.record(float(i))
            return list(histogram._samples)

        # Same name in two registries (two processes, in spirit) keeps
        # the identical deterministic sample set.
        assert load(MetricsRegistry()) == load(MetricsRegistry())

    def test_reservoir_percentile_within_error(self):
        histogram = Histogram(reservoir_size=512, seed=2)
        for i in range(20_000):
            histogram.record(float(i))
        # Uniform ramp: reservoir p50 should land near the true median.
        assert abs(histogram.percentile(50) - 10_000) < 2_500


class TestExemplars:
    def test_exemplar_captured_above_threshold_under_active_trace(self):
        histogram = Histogram()
        histogram.exemplar_threshold = 1.0
        trace = Trace(app="pub", trace_id="pub:42")
        with activate_trace(trace):
            histogram.record(0.5)   # under threshold: no exemplar
            histogram.record(2.5)   # over: captured
            histogram.record(1.0)   # exactly at threshold: compliant
        exemplars = histogram.exemplars()
        assert [e["value"] for e in exemplars] == [2.5]
        assert exemplars[0]["trace_id"] == "pub:42"

    def test_no_exemplar_without_active_trace_or_threshold(self):
        histogram = Histogram()
        histogram.record(99.0)  # threshold unarmed
        assert histogram.exemplars() == []
        histogram.exemplar_threshold = 1.0
        histogram.record(99.0)  # armed, but no active trace
        assert histogram.exemplars() == []

    def test_exemplar_ring_keeps_newest(self):
        from repro.runtime.metrics import EXEMPLAR_CAPACITY

        histogram = Histogram()
        histogram.exemplar_threshold = 0.0
        for i in range(EXEMPLAR_CAPACITY + 4):
            with activate_trace(Trace(trace_id=f"t-{i}")):
                histogram.record(float(i + 1))
        ids = [e["trace_id"] for e in histogram.exemplars()]
        assert len(ids) == EXEMPLAR_CAPACITY
        assert ids[-1] == f"t-{EXEMPLAR_CAPACITY + 3}"
        assert ids[0] == "t-4"  # oldest four evicted

    def test_registry_exemplars_view(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("monitor.pub_to_sub.lag")
        registry.histogram("other.h")  # empty: excluded from the view
        histogram.exemplar_threshold = 0.1
        with activate_trace(Trace(trace_id="pub:7")):
            histogram.record(5.0)
        view = registry.exemplars()
        assert list(view) == ["monitor.pub_to_sub.lag"]
        assert view["monitor.pub_to_sub.lag"][0]["trace_id"] == "pub:7"
