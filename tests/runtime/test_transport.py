"""Control-plane transport: loopback seam semantics and the structured
fault paths of the process transport (timeouts and dead peers must be
errors plus flight-recorder evidence, never hangs)."""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import (
    ControlPlaneError,
    TransportError,
    TransportSerializationError,
    TransportTimeout,
)
from repro.orm import Field, Model
from repro.repair.digest import ModelDigest, publisher_model_digest
from repro.runtime.monitor.recorder import FlightRecorder
from repro.runtime.transport import (
    ControlRequest,
    PeerLink,
    ProcessTransport,
    make_dispatcher,
)


@pytest.fixture
def eco():
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"], name="User")
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    with pub.controller():
        for i in range(4):
            User.create(name=f"user-{i}", score=i)
    sub.subscriber.drain()
    return eco


class TestLoopbackSeam:
    def test_typed_helpers_answer_over_json(self, eco):
        control = eco.control
        assert control.ping("pub")
        assert control.generation("pub") == 1
        watermarks = control.watermarks("pub")
        assert watermarks is not None and len(watermarks) == 4
        assert all(v >= 1 for v in watermarks.values())
        dump = control.model_dump("pub", "User")
        assert dump["found"] and len(dump["ids"]) == 4
        schema = control.model_schema("pub", "User")
        assert schema == {"id": "int", "name": "str", "score": "int"}

    def test_unknown_service_is_soft_none_or_error(self, eco):
        assert eco.control.watermarks("ghost") is None
        assert eco.control.model_digest("ghost", "User") is None
        with pytest.raises(ControlPlaneError) as excinfo:
            eco.control.request("ghost", "ping")
        assert excinfo.value.error_type == "UnknownService"

    def test_unknown_op_is_structured_error(self, eco):
        with pytest.raises(ControlPlaneError) as excinfo:
            eco.control.request("pub", "steal_the_heap")
        assert excinfo.value.error_type == "UnknownOperation"

    def test_non_serializable_params_rejected_before_the_wire(self, eco):
        with pytest.raises(TransportSerializationError):
            eco.control.request("pub", "ping", payload=object())

    def test_digest_round_trips_through_wire_form(self, eco):
        local = publisher_model_digest(
            eco.local_service("pub"), "User", ["name", "score"]
        )
        remote = eco.control.model_digest(
            "pub", "User", remote_fields=["name", "score"]
        )
        assert isinstance(remote, ModelDigest)
        assert remote.root == local.root
        rebuilt = ModelDigest.from_dict(remote.to_dict())
        assert rebuilt.root == local.root
        assert rebuilt.divergent_ids(local).divergent_ids == []


def _echo_dispatch(request_json: str) -> str:
    from repro.runtime.transport import ControlResponse

    request = ControlRequest.from_json(request_json)
    return ControlResponse.success(request, {"echo": request.op}).to_json()


def _link_pair(dispatch_b=_echo_dispatch, recorder=None):
    conn_a, conn_b = multiprocessing.Pipe()
    link_a = PeerLink(conn_a, dispatch=_echo_dispatch,
                      recorder=recorder, name="a->b").start()
    link_b = PeerLink(conn_b, dispatch=dispatch_b, name="b->a").start()
    return link_a, link_b


class TestProcessTransportFaults:
    def test_request_response_over_a_real_pipe(self):
        link_a, link_b = _link_pair()
        try:
            transport = ProcessTransport(link_a)
            response = transport.request(ControlRequest("svc", "ping"))
            assert response.ok and response.result == {"echo": "ping"}
        finally:
            link_a.close()
            link_b.close()

    def test_timeout_is_structured_and_recorded(self):
        recorder = FlightRecorder()
        never = threading.Event()

        def stuck_dispatch(request_json: str) -> str:
            never.wait(5.0)  # peer wedged: no reply within the deadline
            return _echo_dispatch(request_json)

        link_a, link_b = _link_pair(dispatch_b=stuck_dispatch,
                                    recorder=recorder)
        try:
            with pytest.raises(TransportTimeout, match="timed out"):
                link_a.request(ControlRequest("svc", "ping"), timeout=0.1)
            kinds = [e.kind for e in recorder.anomalies()]
            assert "transport.timeout" in kinds
        finally:
            never.set()
            link_a.close()
            link_b.close()

    def test_dead_peer_is_structured_and_recorded(self):
        recorder = FlightRecorder()
        link_a, link_b = _link_pair(recorder=recorder)
        link_b.close()
        link_a.dead.wait(5.0)
        try:
            with pytest.raises(TransportError, match="dead"):
                link_a.request(ControlRequest("svc", "ping"), timeout=1.0)
            kinds = [e.kind for e in recorder.anomalies()]
            assert "transport.peer_dead" in kinds
        finally:
            link_a.close()

    def test_peer_death_mid_request_wakes_the_requester(self):
        recorder = FlightRecorder()
        hold = threading.Event()

        def stuck_dispatch(request_json: str) -> str:
            hold.wait(5.0)
            return _echo_dispatch(request_json)

        link_a, link_b = _link_pair(dispatch_b=stuck_dispatch,
                                    recorder=recorder)
        errors = []

        def requester():
            try:
                link_a.request(ControlRequest("svc", "ping"), timeout=5.0)
            except TransportError as exc:  # includes TransportTimeout
                errors.append(exc)

        thread = threading.Thread(target=requester)
        thread.start()
        time.sleep(0.05)  # let the request get onto the wire
        link_a._mark_dead()
        thread.join(timeout=5.0)
        hold.set()
        link_b.close()
        link_a.close()
        assert not thread.is_alive(), "requester hung on a dead link"
        assert errors and not isinstance(errors[0], TransportTimeout)

    def test_dispatcher_survives_garbage_frames(self, eco):
        dispatch = make_dispatcher(eco.control)
        from repro.runtime.transport import ControlResponse

        response = ControlResponse.from_json(dispatch("this is not json"))
        assert not response.ok
        response = ControlResponse.from_json(
            dispatch(ControlRequest("ghost", "ping").to_json())
        )
        assert not response.ok and response.error_type == "UnknownService"
