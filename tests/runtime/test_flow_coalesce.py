"""Semantics-aware coalescing: merge arithmetic (summed increments,
discounted dependency versions), per-mode safety, and the end-to-end
convergence of coalesced streams."""

from repro.broker import Message, SubscriberQueue
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.flow import FlowConfig, FlowController
from repro.runtime.flow.coalesce import (
    coalesce_key,
    merge_into,
    raised_waits,
    union_conflicts,
)
from repro.runtime.metrics import MetricsRegistry


def write(op="update", op_id=1, attrs=None, deps=None, app="pub",
          externals=None, generation=1, **kwargs):
    return Message(
        app=app,
        operations=[{"operation": op, "types": ["User"], "id": op_id,
                     "attributes": attrs or {"name": "x"}}],
        dependencies=dict(deps or {}),
        external_dependencies=dict(externals or {}),
        published_at=0.0,
        generation=generation,
        **kwargs,
    )


class TestCoalesceKey:
    def test_single_write_is_a_candidate(self):
        assert coalesce_key(write(op_id=7)) == ("pub", "User", 7)

    def test_exclusions(self):
        assert coalesce_key(write(bootstrap=True)) is None
        assert coalesce_key(write(repair=True)) is None
        assert coalesce_key(write(op="delete")) is None
        multi = write()
        multi.operations = multi.operations * 2
        assert coalesce_key(multi) is None
        untyped = write()
        untyped.operations[0]["types"] = []
        assert coalesce_key(untyped) is None


class TestMergeArithmetic:
    def test_attributes_newest_wins_and_create_kind_sticks(self):
        survivor = write(op="create", attrs={"name": "a", "score": 1})
        absorbed = write(op="update", attrs={"score": 5})
        merge_into(survivor, absorbed)
        op = survivor.operations[0]
        assert op["operation"] == "create"
        assert op["attributes"] == {"name": "a", "score": 5}
        assert survivor.coalesced_uids == [absorbed.uid]

    def test_increments_sum_and_deps_discount(self):
        """The publisher emitted the absorbed message's dep versions
        assuming the survivor had already applied; the merged message
        must not wait on bumps it itself carries."""
        survivor = write(deps={"k": 2})
        absorbed = write(deps={"k": 3, "u": 4}, externals={"x": 9})
        merge_into(survivor, absorbed)
        # k: absorbed's 3 discounts the survivor's own +1 -> max(2, 2).
        assert survivor.dependencies == {"k": 2, "u": 4}
        assert survivor.counter_increments() == {"k": 2, "u": 1}
        assert survivor.external_dependencies == {"x": 9}

    def test_chained_merges_accumulate(self):
        survivor = write(deps={"k": 2})
        merge_into(survivor, write(deps={"k": 3}))
        # Second absorb: survivor now bumps k by 2, so a dep of 4 is
        # fully covered by the survivor's own apply.
        third = write(deps={"k": 4})
        merge_into(survivor, third)
        assert survivor.dependencies == {"k": 2}
        assert survivor.counter_increments() == {"k": 3}
        assert len(survivor.coalesced_uids) == 2

    def test_merged_message_survives_the_wire(self):
        survivor = write(deps={"k": 2})
        merge_into(survivor, write(deps={"k": 3}))
        copied = survivor.copy()
        assert copied.counter_increments() == {"k": 2}
        assert copied.coalesced_uids == survivor.coalesced_uids

    def test_union_conflicts_is_key_overlap(self):
        assert union_conflicts(write(deps={"a": 1}), write(deps={"a": 5}))
        assert union_conflicts(
            write(deps={"a": 1}), write(deps={}, externals={"a": 2})
        )
        assert not union_conflicts(write(deps={"a": 1}), write(deps={"b": 1}))

    def test_union_conflicts_reverse_direction(self):
        """An intervener that *increments* a key the absorbed write
        newly waits on also rejects the merge — the bump would sit
        behind the merged survivor's earlier queue position."""
        survivor = write(deps={"o": 1})
        intervener = write(deps={"p": 0})  # bumps p when it applies
        assert not union_conflicts(survivor, intervener)
        assert union_conflicts(survivor, intervener, frozenset({"p"}))

    def test_raised_waits_discounts_the_survivors_own_bumps(self):
        # The absorbed chain dep is fully covered by the survivor's own
        # increment: nothing is newly waited on.
        assert raised_waits(write(deps={"k": 2}), write(deps={"k": 3})) == set()
        # A higher or brand-new requirement (write, read, or external)
        # is a wait the merge would move to the survivor's position.
        assert raised_waits(
            write(deps={"k": 2}),
            write(deps={"k": 4, "p": 1}, externals={"x": 9}),
        ) == {"k", "p", "x"}
        # Externals already required by the survivor are not raised.
        assert raised_waits(
            write(deps={"k": 2}, externals={"x": 9}),
            write(deps={"k": 3}, externals={"x": 9}),
        ) == set()


class FlowedQueue:
    def __init__(self, mode="weak", **config_kwargs):
        self.registry = MetricsRegistry()
        controller = FlowController(
            FlowConfig(**config_kwargs), self.registry,
            mode_of={"pub": mode}.get,
        )
        self.queue = SubscriberQueue("q", max_size=100)
        self.queue.flow = controller.for_queue(self.queue)


class TestQueueCoalescing:
    def test_weak_same_object_writes_always_merge(self):
        q = FlowedQueue(mode="weak")
        q.queue.publish(write(op="create", op_id=1, attrs={"score": 0}))
        q.queue.publish(write(op_id=1, attrs={"score": 1}))
        q.queue.publish(write(op_id=1, attrs={"score": 2}))
        assert len(q.queue) == 1
        assert q.registry.value("flow.q.coalesced") == 2
        survivor = q.queue.pop()
        assert survivor.operations[0]["attributes"]["score"] == 2
        assert len(survivor.coalesced_uids) == 2

    def test_different_objects_do_not_merge(self):
        q = FlowedQueue(mode="weak")
        q.queue.publish(write(op_id=1))
        q.queue.publish(write(op_id=2))
        assert len(q.queue) == 2
        assert q.registry.value("flow.q.coalesced") == 0

    def test_popped_survivor_stops_absorbing(self):
        q = FlowedQueue(mode="weak")
        q.queue.publish(write(op_id=1))
        q.queue.pop()
        q.queue.publish(write(op_id=1))  # in-flight copy must not absorb
        assert len(q.queue) == 1
        assert q.registry.value("flow.q.coalesced") == 0

    def test_generation_bump_blocks_the_merge(self):
        q = FlowedQueue(mode="weak")
        q.queue.publish(write(op_id=1, generation=1))
        q.queue.publish(write(op_id=1, generation=2))
        assert len(q.queue) == 2
        assert q.registry.value("flow.q.coalesced") == 0

    def test_coalesce_disabled_by_config(self):
        q = FlowedQueue(mode="weak", coalesce=False)
        q.queue.publish(write(op_id=1))
        q.queue.publish(write(op_id=1))
        assert len(q.queue) == 2

    def test_causal_adjacent_merge_is_safe(self):
        q = FlowedQueue(mode="causal")
        q.queue.publish(write(op_id=1, deps={"h1": 0}))
        q.queue.publish(write(op_id=1, deps={"h1": 1}))
        assert len(q.queue) == 1
        assert q.registry.value("flow.q.coalesced") == 1

    def test_causal_conflicting_intervener_rejects(self):
        """A queued message that depends on a key the candidate bumps
        would wait on its own tail after a merge — rejected, and the
        newer write becomes the next coalesce target."""
        q = FlowedQueue(mode="causal")
        q.queue.publish(write(op_id=1, deps={"h1": 0}))
        q.queue.publish(write(op_id=2, deps={"h1": 1, "h2": 0}))  # reader
        q.queue.publish(write(op_id=1, deps={"h1": 1}))
        assert len(q.queue) == 3
        assert q.registry.value("flow.q.coalesce_rejected") == 1
        # The rejected write replaced the old candidate in the index:
        # the *next* same-object write merges into it, not the original.
        q.queue.publish(write(op_id=1, deps={"h1": 2}))
        assert len(q.queue) == 3
        assert q.registry.value("flow.q.coalesced") == 1

    def test_causal_absorbed_dep_on_intervener_rejects(self):
        """Reverse hazard direction: the absorbed write waits on a key
        the intervener bumps. Merged to the survivor's earlier queue
        position, it would wait on a bump queued behind itself (and
        the batched worker would spin it into a §6.5 give-up)."""
        q = FlowedQueue(mode="causal")
        q.queue.publish(write(op_id=1, deps={"o": 0}))           # survivor
        q.queue.publish(write(op_id=2, deps={"p": 0}))           # bumps p
        q.queue.publish(write(op_id=1, deps={"o": 1, "p": 1}))   # needs p@1
        assert len(q.queue) == 3
        assert q.registry.value("flow.q.coalesce_rejected") == 1
        assert q.registry.value("flow.q.coalesced") == 0

    def test_causal_covered_dep_still_merges_past_disjoint_intervener(self):
        """The reverse check discounts the survivor's own bumps: a
        chained dep the survivor itself satisfies does not reject, so
        disjoint interveners stay transparent to coalescing."""
        q = FlowedQueue(mode="causal")
        q.queue.publish(write(op_id=1, deps={"o": 0}))
        q.queue.publish(write(op_id=2, deps={"p": 0}))  # disjoint
        q.queue.publish(write(op_id=1, deps={"o": 1}))  # covered by survivor
        assert len(q.queue) == 2
        assert q.registry.value("flow.q.coalesced") == 1

    def test_causal_in_flight_conflict_rejects(self):
        q = FlowedQueue(mode="causal")
        q.queue.publish(write(op_id=2, deps={"h1": 1}))  # reader of h1
        q.queue.pop()  # now in flight, invisible to the queued scan
        q.queue.publish(write(op_id=1, deps={"h1": 0}))
        q.queue.publish(write(op_id=1, deps={"h1": 1}))
        assert q.registry.value("flow.q.coalesce_rejected") == 1
        assert len(q.queue) == 2

    def test_weak_ignores_interveners(self):
        q = FlowedQueue(mode="weak")
        q.queue.publish(write(op_id=1, deps={"h1": 0}))
        q.queue.publish(write(op_id=2, deps={"h1": 1}))
        q.queue.publish(write(op_id=1, deps={"h1": 1}))
        assert len(q.queue) == 2
        assert q.registry.value("flow.q.coalesced") == 1


class TestEndToEnd:
    def _ecosystem(self, mode):
        eco = Ecosystem()
        eco.enable_flow(FlowConfig(batch_max=4))
        pub = eco.service(
            "pub", database=MongoLike("pub-db"), delivery_mode=mode
        )

        @pub.model(publish=["name", "score"], name="Item")
        class Item(Model):
            name = Field(str)
            score = Field(int, default=0)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(
            subscribe={"from": "pub", "fields": ["name", "score"],
                       "mode": mode},
            name="Item",
        )
        class SubItem(Model):
            name = Field(str)
            score = Field(int, default=0)

        return eco, pub, sub, Item, SubItem

    def test_weak_hot_object_storm_converges(self):
        eco, pub, sub, Item, SubItem = self._ecosystem("weak")
        with pub.controller():
            items = [Item.create(name=f"i{i}", score=0) for i in range(2)]
            for r in range(1, 11):
                for item in items:
                    item.score = r
                    item.save()
        assert eco.metrics.value("flow.sub.coalesced") > 0
        sub.subscriber.drain()
        for item in items:
            assert SubItem.__mapper__.find(item.id)["score"] == 10
        assert not len(sub.subscriber.queue)

    def test_causal_object_major_burst_converges(self):
        eco, pub, sub, Item, SubItem = self._ecosystem("causal")
        with pub.controller():
            items = [Item.create(name=f"i{i}", score=0) for i in range(3)]
        sub.subscriber.drain()
        with pub.controller():
            for item in items:
                for r in range(1, 8):
                    item.score = r
                    item.save()
        assert eco.metrics.value("flow.sub.coalesced") > 0
        sub.subscriber.drain()
        for item in items:
            assert SubItem.__mapper__.find(item.id)["score"] == 7
        assert not len(sub.subscriber.queue)
        # Counter accounting survived the merges: the anti-entropy audit
        # sees no divergence and no version lag.
        report = sub.audit_replication()
        assert report.in_sync
