"""ShardRunner: the 2-shard social demo end to end, in-process.

This is the tentpole's proof obligation: services placed into real OS
worker processes, write messages for remote queues crossing only the
broker's forward seam, audits and targeted repair crossing only the
control plane — and the mesh quiescing cleanly."""

from __future__ import annotations

import pytest

from repro.runtime.transport.demo import demo_healthy, run_demo
from repro.runtime.transport.shard import ShardRunner


@pytest.fixture(scope="module")
def outcome():
    return run_demo(operations=25, timeout=90.0)


class TestShardDemo:
    def test_demo_is_healthy(self, outcome):
        assert demo_healthy(outcome), outcome

    def test_every_audit_in_sync_including_cross_shard(self, outcome):
        audits = {
            name: audit
            for shard in outcome["shards"].values()
            for name, audit in shard["verify"]["audits"].items()
        }
        assert sorted(audits) == ["feed0", "feed1", "mirror0", "mirror1"]
        for name, audit in audits.items():
            assert audit["in_sync"], (name, audit)
            assert audit["rows"]["User"] == 5

    def test_cross_shard_traffic_actually_flowed(self, outcome):
        stats = [shard["stats"] for shard in outcome["shards"].values()]
        forwarded = sum(s["forwarded"] for s in stats)
        delivered = sum(s["delivered"] for s in stats)
        assert forwarded > 0, "mirrors never crossed the process boundary"
        assert forwarded == delivered, "forwarded frames went missing"
        assert all(s["dropped"] == 0 for s in stats)

    def test_mirror_replicas_match_their_remote_publisher(self, outcome):
        shards = outcome["shards"]
        # mirror1 (on shard0) replicates social1 (on shard1) and vice
        # versa: row counts must match the *other* shard's workload.
        for shard_name, other in (("shard0", "shard1"), ("shard1", "shard0")):
            mirror = "mirror1" if shard_name == "shard0" else "mirror0"
            rows = shards[shard_name]["verify"]["audits"][mirror]["rows"]
            scenario = shards[other]["scenario"]
            assert rows["Post"] == scenario["posts"]
            assert rows["Comment"] == scenario["comments"]

    def test_cross_shard_repair_heals_over_the_pipe(self, outcome):
        for shard in outcome["shards"].values():
            repair = shard["verify"]["repair"]
            assert repair["ran"]
            assert repair["divergent"] == 1
            assert repair["objects_repaired"] == 1
            assert repair["verified_in_sync"]


class TestShardRunnerContract:
    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError):
            ShardRunner(lambda: None, {})

    def test_single_shard_placement_runs(self):
        from repro.runtime.transport.demo import (
            DEMO_PLACEMENT,
            build_demo_ecosystem,
            demo_scenario,
        )

        everything = [svc for owned in DEMO_PLACEMENT.values()
                      for svc in owned]
        runner = ShardRunner(
            build_demo_ecosystem,
            {"shard0": everything},
            scenario=demo_scenario,
            timeout=90.0,
        )
        result = runner.run()
        stats = result["shards"]["shard0"]["stats"]
        assert stats["forwarded"] == 0 and stats["delivered"] == 0
        assert stats["routed"] > 0 and stats["dropped"] == 0
