"""The cluster observability plane, single-process.

Everything here runs in one interpreter: federation ops go through the
loopback transport (same JSON round trip as a pipe), peers that do not
exist exercise the missing-shard degradation, and trace assembly is fed
synthetic span sets so the clock-normalization and causal-clamp edge
cases are deterministic.
"""

from __future__ import annotations

import pytest

from repro.errors import ControlPlaneError
from repro.runtime import tracing
from repro.runtime.monitor.cluster import (
    ClusterPlane,
    assemble_trace,
    format_assembled_trace,
    shard_service,
)
from repro.runtime.monitor.export import parse_prometheus
from repro.runtime.tracing import (
    STAGE_APPLY,
    STAGE_DWELL,
    STAGE_FORWARD,
    STAGE_INTERCEPT,
    STAGE_ROUTE,
    Trace,
    trace_now,
)


def _build_pair_ecosystem():
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.orm import Field, Model

    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"], name="Doc")
    class Doc(Model):
        name = Field(str)

    sub = eco.service("sub", database=MongoLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Doc")
    class SubDoc(Model):
        name = Field(str)

    return eco, pub, sub, Doc


class TestLoopbackFederation:
    """peers=(): every federation op degenerates to the local shard,
    still crossing the JSON envelope layer."""

    @pytest.fixture()
    def eco(self):
        eco, pub, sub, Doc = _build_pair_ecosystem()
        eco.enable_tracing(sample_rate=1.0)
        ClusterPlane(eco, "solo").install()
        with pub.controller():
            for i in range(4):
                Doc.create(name=f"doc-{i}")
        sub.subscriber.drain()
        return eco

    def test_install_wires_ecosystem_and_incident_sink(self, eco):
        assert eco.cluster is not None
        assert eco.cluster.shard_name == "solo"
        assert eco.recorder.incident_sink == eco.cluster.broadcast_incident
        assert eco.control.known(shard_service("solo"))

    def test_metrics_dump_carries_shard_label(self, eco):
        dump = eco.cluster.metrics_dump()
        assert dump["missing"] == []
        entry = dump["shards"]["solo"]
        assert entry["metrics"]["broker.routed"] == 4
        parsed = parse_prometheus(entry["prometheus"])
        assert parsed['repro_broker_routed{shard="solo"}'] == 4
        # Every non-comment sample line carries the shard label.
        for line in entry["prometheus"].splitlines():
            if line and not line.startswith("#"):
                assert 'shard="solo"' in line, line

    def test_health_report_federates_and_reports_idle(self, eco):
        report = eco.cluster.health_report(drain=True)
        assert report["missing"] == []
        state = report["shards"]["solo"]
        assert state["idle"] == 1
        assert state["health"]["links"], "SLO evaluation missing"

    def test_health_report_evaluate_false_skips_slo_scan(self, eco):
        report = eco.cluster.health_report(drain=True, evaluate=False)
        assert "health" not in report["shards"]["solo"]

    def test_trace_ids_and_fetch_round_trip(self, eco):
        ids = eco.cluster.trace_ids()["shards"]["solo"]["ids"]
        assert ids, "sampled traces should have been recorded"
        assembled = eco.cluster.fetch_trace(ids[0])
        assert assembled["found"]
        assert assembled["shards"] == ["solo"]
        stages = [span["stage"] for span in assembled["spans"]]
        assert STAGE_INTERCEPT in stages and STAGE_APPLY in stages

    def test_serve_rejects_unknown_op(self, eco):
        with pytest.raises(ControlPlaneError, match="unknown cluster op"):
            eco.cluster.serve("flush_everything")

    def test_cluster_handler_answers_clock_probe(self, eco):
        before = trace_now()
        result = eco.control.request(shard_service("solo"), "clock_probe")
        assert result["shard"] == "solo"
        assert before <= float(result["now"]) <= trace_now()


class TestMissingShards:
    """A dead/unknown peer degrades to a ``missing`` entry — no hang,
    no exception out of the federation."""

    @pytest.fixture()
    def eco(self):
        eco, pub, sub, Doc = _build_pair_ecosystem()
        eco.enable_tracing(sample_rate=1.0)
        # "ghost" has no route and no handler: every request to it fails
        # fast with UnknownService — the same structured degradation a
        # TransportError from a dead pipe produces.
        ClusterPlane(eco, "solo", peers=("ghost",)).install()
        with pub.controller():
            Doc.create(name="doc")
        sub.subscriber.drain()
        return eco

    def test_dead_origin_shard_yields_partial_trace_with_marker(self, eco):
        ids = eco.cluster.trace_ids()
        assert ids["missing"] == ["ghost"]
        uid = ids["shards"]["solo"]["ids"][0]
        assembled = eco.cluster.fetch_trace(uid)
        assert assembled["found"], "live shard's spans must still assemble"
        assert assembled["missing"] == ["ghost"]
        rendered = "\n".join(format_assembled_trace(assembled))
        assert "missing-hop: ghost" in rendered

    def test_health_report_lists_dead_peer_as_missing(self, eco):
        report = eco.cluster.health_report()
        assert report["missing"] == ["ghost"]
        assert "solo" in report["shards"]

    def test_offset_estimation_skips_unreachable_peer(self, eco):
        offsets = eco.cluster.estimate_offsets()
        assert "ghost" not in offsets
        assert eco.cluster.offset_of("ghost") is None


class TestClockOffsets:
    def test_probe_offset_uses_rtt_midpoint(self):
        eco, pub, sub, Doc = _build_pair_ecosystem()
        cluster = ClusterPlane(eco, "here", peers=("there",)).install()

        skew = 2.5

        class FakePeerHandler:
            def handle(self, request):
                from repro.runtime.transport.envelopes import ControlResponse

                return ControlResponse.success(
                    request, {"shard": "there", "now": trace_now() + skew}
                )

        eco.control.register_handler(shard_service("there"), FakePeerHandler())
        offset = cluster.probe_offset("there")
        # Loopback RTT is microseconds: the midpoint estimate must land
        # within a loose tolerance of the injected skew.
        assert abs(offset - skew) < 0.05
        assert abs(cluster.offset_of("there") - skew) < 0.05
        assert cluster.offset_of("here") == 0.0
        assert cluster.offset_of("") == 0.0


class TestTraceAssembly:
    """Synthetic span sets: normalization, causal clamp, dedup, hops."""

    @staticmethod
    def _shard_result(shard, spans):
        return {
            "shard": shard,
            "found": bool(spans),
            "spans": [
                {"stage": stage, "start": start, "duration": duration,
                 "shard": shard}
                for stage, start, duration in spans
            ],
        }

    def test_offset_normalization_maps_remote_spans_onto_local_clock(self):
        # shard1's clock runs 100s ahead; its spans must land *after*
        # shard0's route on the normalized timeline, in true order.
        results = [
            self._shard_result("shard0", [
                (STAGE_INTERCEPT, 10.000, 0.001),
                (STAGE_ROUTE, 10.002, 0.001),
                (STAGE_FORWARD, 10.004, 0.001),
            ]),
            self._shard_result("shard1", [
                (STAGE_DWELL, 110.010, 0.004),
                (STAGE_APPLY, 110.015, 0.002),
            ]),
        ]
        offsets = {"shard0": 0.0, "shard1": 100.0}
        assembled = assemble_trace(
            "m:1", results, [], offsets.get, "shard0"
        )
        by_stage = {s["stage"]: s for s in assembled["spans"]}
        assert by_stage[STAGE_DWELL]["start"] == pytest.approx(10.010)
        assert by_stage[STAGE_APPLY]["start"] == pytest.approx(10.015)
        assert not any(s.get("adjusted") for s in assembled["spans"])
        assert assembled["unnormalized"] == []
        # One hop, shard0 -> shard1, with the real transit gap.
        assert [(h["from"], h["to"]) for h in assembled["hops"]] == [
            ("shard0", "shard1")
        ]
        assert assembled["end_to_end"] == pytest.approx(10.017 - 10.000)

    def test_causal_clamp_keeps_apply_after_route(self):
        # A *wrong* offset estimate normalizes the subscriber's spans to
        # before the publisher even routed. The clamp must restore
        # pipeline-causal order (apply never renders before route) and
        # flag what it moved.
        results = [
            self._shard_result("shard0", [
                (STAGE_INTERCEPT, 10.000, 0.001),
                (STAGE_ROUTE, 10.002, 0.001),
            ]),
            self._shard_result("shard1", [
                (STAGE_DWELL, 9.000, 0.001),
                (STAGE_APPLY, 9.002, 0.001),
            ]),
        ]
        assembled = assemble_trace(
            "m:2", results, [], {"shard0": 0.0, "shard1": 0.0}.get, "shard0"
        )
        by_stage = {s["stage"]: s for s in assembled["spans"]}
        assert by_stage[STAGE_DWELL]["start"] >= by_stage[STAGE_ROUTE]["start"]
        assert by_stage[STAGE_APPLY]["start"] >= by_stage[STAGE_ROUTE]["start"]
        assert by_stage[STAGE_DWELL].get("adjusted") is True
        rendered = "\n".join(format_assembled_trace(assembled))
        assert "~clamped" in rendered

    def test_unknown_offset_renders_note_instead_of_guessing(self):
        results = [
            self._shard_result("shard0", [(STAGE_ROUTE, 1.0, 0.001)]),
            self._shard_result("shard9", [(STAGE_APPLY, 55.0, 0.001)]),
        ]
        assembled = assemble_trace(
            "m:3", results, [], {"shard0": 0.0}.get, "shard0"
        )
        assert assembled["unnormalized"] == ["shard9"]
        rendered = "\n".join(format_assembled_trace(assembled))
        assert "no clock offset for shard9" in rendered

    def test_duplicate_spans_from_partial_and_finished_dedup(self):
        # The origin's partial trace and the finished trace that crossed
        # the wire overlap on the publisher-side spans: one copy remains.
        span = (STAGE_INTERCEPT, 5.0, 0.002)
        results = [
            self._shard_result("shard0", [span]),
            self._shard_result("shard1", [span[:3]]),
        ]
        # Same (stage, start, duration) but stamped shard0 on both sides.
        results[1]["spans"][0]["shard"] = "shard0"
        assembled = assemble_trace(
            "m:4", results, [], lambda s: 0.0, "shard0"
        )
        assert len(assembled["spans"]) == 1

    def test_critical_path_prefers_latest_finishing_span_per_stage(self):
        # Fan-out: a local apply and a (slower) remote apply. The
        # critical path must follow the remote one.
        results = [
            self._shard_result("shard0", [
                (STAGE_INTERCEPT, 1.000, 0.001),
                (STAGE_ROUTE, 1.002, 0.001),
                (STAGE_APPLY, 1.010, 0.001),
            ]),
            self._shard_result("shard1", [
                (STAGE_APPLY, 1.050, 0.002),
            ]),
        ]
        assembled = assemble_trace(
            "m:5", results, [], lambda s: 0.0, "shard0"
        )
        apply_entry = [
            e for e in assembled["critical_path"] if e["stage"] == STAGE_APPLY
        ]
        assert apply_entry == [
            {"stage": STAGE_APPLY, "shard": "shard1", "duration": 0.002}
        ]


class TestUnsampledMessagesStayAllocationFree:
    def test_unsampled_cross_shard_message_materializes_no_spans(
        self, monkeypatch
    ):
        # Two in-process ecosystems wired through the broker seam: the
        # origin forwards wire payloads into the receiver's broker, the
        # way two shard processes would.
        origin, origin_pub, _, OriginDoc = _build_pair_ecosystem()
        receiver, _, receiver_sub, _ = _build_pair_ecosystem()
        origin.owned_services = {"pub"}
        receiver.owned_services = {"sub"}
        origin.broker.attach_placement(
            lambda sub: sub != "sub",
            lambda sub, payload: receiver.broker.deliver_remote(sub, payload),
        )
        # Tracing ON but nothing wins the draw: rate 0 makes every
        # message unsampled while keeping the tracer (and its SpanLog
        # path) fully enabled.
        origin.enable_tracing(sample_rate=0.0)
        receiver.enable_tracing(sample_rate=0.0)

        materialized = []
        original_init = tracing.Span.__init__

        def counting_init(span_self, *args, **kwargs):
            materialized.append(args[0] if args else kwargs.get("stage"))
            original_init(span_self, *args, **kwargs)

        monkeypatch.setattr(tracing.Span, "__init__", counting_init)
        with origin_pub.controller():
            for i in range(5):
                OriginDoc.create(name=f"doc-{i}")
        receiver_sub.subscriber.drain()

        assert materialized == [], (
            "unsampled messages must never materialize Span objects "
            f"(got {materialized})"
        )
        assert receiver.local_service("sub").registry["Doc"].count() == 5
        assert origin.tracer.partials() == []
        assert origin.tracer.finished() == []
        assert receiver.tracer.finished() == []

    def test_sampled_cross_shard_message_does_materialize(self):
        origin, origin_pub, _, OriginDoc = _build_pair_ecosystem()
        receiver, _, receiver_sub, _ = _build_pair_ecosystem()
        origin.owned_services = {"pub"}
        receiver.owned_services = {"sub"}
        origin.broker.attach_placement(
            lambda sub: sub != "sub",
            lambda sub, payload: receiver.broker.deliver_remote(sub, payload),
        )
        origin.enable_tracing(sample_rate=1.0)
        receiver.enable_tracing(sample_rate=1.0)
        with origin_pub.controller():
            OriginDoc.create(name="doc")
        receiver_sub.subscriber.drain()

        partials = origin.tracer.partials()
        assert len(partials) == 1
        assert STAGE_FORWARD in [s.stage for s in partials[0].spans]
        finished = receiver.tracer.finished()
        assert len(finished) == 1
        assert finished[0].trace_id == partials[0].trace_id
        stages = [s.stage for s in finished[0].spans]
        assert STAGE_ROUTE in stages and STAGE_APPLY in stages


class TestIncidentBroadcast:
    def test_broadcast_writes_local_dump_and_returns_incident_id(
        self, tmp_path
    ):
        eco, pub, sub, Doc = _build_pair_ecosystem()
        cluster = ClusterPlane(
            eco, "solo", incident_root=str(tmp_path / "incidents")
        ).install()
        incident = cluster.broadcast_incident("slo.breach")
        assert incident is not None and "slo.breach" in incident
        dump = tmp_path / "incidents" / incident / "solo.jsonl"
        assert dump.exists()
        from repro.runtime.monitor import load_dump

        records = load_dump(str(dump))
        assert records[0]["type"] == "meta"
        assert records[0]["reason"] == "slo.breach"

    def test_no_incident_root_means_no_broadcast(self):
        eco, *_ = _build_pair_ecosystem()
        cluster = ClusterPlane(eco, "solo").install()
        assert cluster.broadcast_incident("slo.breach") is None
        with pytest.raises(ControlPlaneError, match="incident_root"):
            cluster.dump_incident("incident-x", "slo.breach")

    def test_anomaly_triggers_broadcast_through_recorder_sink(
        self, tmp_path
    ):
        eco, *_ = _build_pair_ecosystem()
        ClusterPlane(
            eco, "solo", incident_root=str(tmp_path / "incidents")
        ).install()
        eco.recorder.anomaly("slo.breach", publisher="pub", subscriber="sub")
        incidents = list((tmp_path / "incidents").iterdir())
        assert len(incidents) == 1
        assert (incidents[0] / "solo.jsonl").exists()
