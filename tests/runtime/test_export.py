"""Prometheus/JSON exposition round-trips for the metrics registry."""

import json

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.monitor import mangle, parse_prometheus, to_json, to_prometheus


def run_workload(flow=False):
    eco = Ecosystem()
    eco.enable_tracing()
    if flow:
        from repro.runtime.flow import FlowConfig

        eco.enable_flow(FlowConfig(capacity=64))
    pub = eco.service("pub", database=MongoLike("p"))

    @pub.model(publish=["name"], name="User")
    class User(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("s"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    with pub.controller():
        for i in range(5):
            User.create(name=f"u{i}")
    sub.subscriber.drain()
    return eco


class TestMangle:
    def test_prefix_and_dot_mangling(self):
        assert mangle("subscriber.sub.dep_wait") == "repro_subscriber_sub_dep_wait"
        assert mangle("a-b.c") == "repro_a_b_c"

    def test_pure_function_of_name(self):
        assert mangle("broker.routed") == mangle("broker.routed")


class TestRoundTrip:
    def test_counters_and_histograms_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment(7)
        histogram = registry.histogram("subscriber.sub.apply")
        histogram.extend([0.1, 0.2, 0.3, 0.4])
        parsed = parse_prometheus(to_prometheus(registry))
        assert parsed["repro_broker_routed"] == 7
        summary = parsed["repro_subscriber_sub_apply"]
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(1.0)
        assert summary["quantiles"]["0.5"] == pytest.approx(histogram.percentile(50))
        assert summary["quantiles"]["0.99"] == pytest.approx(histogram.percentile(99))

    def test_every_pipeline_instrument_survives_exposition(self):
        eco = run_workload()
        parsed = parse_prometheus(to_prometheus(eco.metrics))
        snapshot = eco.metrics.snapshot()
        assert snapshot  # the workload populated the registry
        for name, value in snapshot.items():
            exported = parsed[mangle(name)]
            if isinstance(value, dict):
                assert exported["count"] == value["count"]
            else:
                assert exported == value

    def test_names_stable_across_snapshots(self):
        eco = run_workload()
        first = set(parse_prometheus(to_prometheus(eco.metrics)))
        # More traffic through the same pipeline: values move, the
        # exported name set does not.
        with eco.services["pub"].controller():
            eco.services["pub"].registry["User"].create(name="later")
        eco.services["sub"].subscriber.drain()
        second = set(parse_prometheus(to_prometheus(eco.metrics)))
        assert first == second

    def test_type_headers_present(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.histogram("h").record(1.0)
        text = to_prometheus(registry)
        assert "# TYPE repro_c counter" in text
        assert "# TYPE repro_h summary" in text
        assert 'repro_h{quantile="0.99"}' in text

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not exposition\n")

    def test_gauges_round_trip_with_type_header(self):
        registry = MetricsRegistry()
        registry.gauge("flow.sub.credits").set(37)
        text = to_prometheus(registry)
        assert "# TYPE repro_flow_sub_credits gauge" in text
        assert parse_prometheus(text)["repro_flow_sub_credits"] == 37

    def test_flow_instruments_survive_exposition(self):
        """The ``flow.*`` family — counters, the batch-size histogram
        and the credits gauge — must round-trip like every other
        pipeline instrument."""
        eco = run_workload(flow=True)
        snapshot = eco.metrics.snapshot(prefix="flow.")
        assert "flow.sub.credits" in snapshot
        assert snapshot["flow.sub.admitted"] >= 5
        parsed = parse_prometheus(to_prometheus(eco.metrics))
        for name, value in snapshot.items():
            exported = parsed[mangle(name)]
            if isinstance(value, dict):
                assert exported["count"] == value["count"]
            else:
                assert exported == value


class TestJsonExposition:
    def test_document_carries_metrics_exemplars_and_health(self):
        eco = run_workload()
        payload = json.loads(to_json(eco.metrics, monitor=eco.monitor))
        assert payload["metrics"]["broker.routed"] >= 5
        assert "exemplars" in payload
        health = payload["health"]
        assert health["links"][0]["publisher"] == "pub"
        assert health["links"][0]["status"] == "ok"

    def test_monitor_is_optional(self):
        registry = MetricsRegistry()
        registry.counter("x").increment()
        payload = json.loads(to_json(registry))
        assert payload["metrics"]["x"] == 1
        assert "health" not in payload

    def test_flow_metrics_and_backpressure_in_json(self):
        eco = run_workload(flow=True)
        payload = json.loads(to_json(eco.metrics, monitor=eco.monitor))
        assert payload["metrics"]["flow.sub.admitted"] >= 5
        assert "flow.sub.credits" in payload["metrics"]
        link = payload["health"]["links"][0]
        assert link["backpressure"] == "open"
        assert link["credits"] == eco.broker.queue_for("sub").flow.credits


class TestLabelEscaping:
    """S1: hostile label values must not corrupt the exposition."""

    HOSTILE = [
        'back\\slash',
        'quo"te',
        'new\nline',
        '\\"} evil_metric 42\n# TYPE evil',
        'trailing\\',
        '',
    ]

    def test_escape_round_trips_hostile_values(self):
        from repro.runtime.monitor import (
            escape_label_value,
            unescape_label_value,
        )

        for value in self.HOSTILE:
            escaped = escape_label_value(value)
            assert "\n" not in escaped
            assert unescape_label_value(escaped) == value

    def test_format_labels_escapes_and_sorts(self):
        from repro.runtime.monitor import format_labels

        rendered = format_labels({"shard": 'sh"ard\n1', "app": "a\\b"})
        assert rendered == '{app="a\\\\b",shard="sh\\"ard\\n1"}'

    def test_hostile_shard_name_survives_exposition_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment(7)
        registry.histogram("subscriber.sub.dwell").record(0.25)
        hostile = 'shard"0\\prod\nnode'
        text = to_prometheus(registry, labels={"shard": hostile})
        # The exposition itself stays line-parseable: no raw newline or
        # unescaped quote leaked out of the label value.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert parse_prometheus(line + "\n") is not None
        parsed = parse_prometheus(text)
        from repro.runtime.monitor import format_labels

        key = "repro_broker_routed" + format_labels({"shard": hostile})
        assert parsed[key] == 7
        summary_key = "repro_subscriber_sub_dwell" + format_labels(
            {"shard": hostile}
        )
        summary = parsed[summary_key]
        assert summary["labels"] == {"shard": hostile}
        assert summary["count"] == 1
        assert summary["sum"] == pytest.approx(0.25)
        assert set(summary["quantiles"]) == {"0.5", "0.99"}

    def test_injection_attempt_stays_a_label_value(self):
        registry = MetricsRegistry()
        registry.counter("broker.routed").increment(1)
        injection = '"} repro_fake_metric 999\nrepro_other 1'
        text = to_prometheus(registry, labels={"shard": injection})
        parsed = parse_prometheus(text)
        # The payload stayed inside the label value: no sample *named*
        # after the injected metric exists, and only one sample parsed.
        assert not any(
            key.startswith("repro_fake_metric") for key in parsed
        )
        assert not any(key.startswith("repro_other") for key in parsed)
        from repro.runtime.monitor import format_labels

        key = "repro_broker_routed" + format_labels({"shard": injection})
        assert list(parsed) == [key]
        assert parsed[key] == 1
