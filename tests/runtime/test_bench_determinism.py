"""Determinism guard for the benchmark harness: same seed, same results."""

from repro.core import Ecosystem
from repro.runtime.simulation import SimMessage, capture_messages, simulate_subscriber
from repro.workloads import SocialWorkload, build_social_publisher


def capture(seed):
    eco = Ecosystem()
    service, User, Post, Comment = build_social_publisher(eco, ephemeral=True)
    drain = capture_messages(eco, "social")
    workload = SocialWorkload(service, User, Post, Comment, users=20, seed=seed)
    workload.run(100)
    return [SimMessage.from_message(m, "causal") for m in drain()]


class TestDeterminism:
    def test_same_seed_same_dependency_structure(self):
        a = capture(seed=5)
        b = capture(seed=5)
        assert [m.deps for m in a] == [m.deps for m in b]

    def test_different_seed_different_structure(self):
        a = capture(seed=5)
        b = capture(seed=6)
        assert [m.deps for m in a] != [m.deps for m in b]

    def test_simulation_is_deterministic(self):
        messages = capture(seed=5)
        r1 = simulate_subscriber(messages, workers=8, service_time=0.01)
        r2 = simulate_subscriber(messages, workers=8, service_time=0.01)
        assert r1.throughput == r2.throughput
        assert r1.completion_times == r2.completion_times
