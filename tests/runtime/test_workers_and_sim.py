"""Threaded worker pools, the DES, metrics, and the workload drivers."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.metrics import Histogram, ThroughputMeter
from repro.runtime.simulation import (
    DBCeiling,
    SimMessage,
    capture_messages,
    simulate_pipeline,
    simulate_subscriber,
)
from repro.runtime.workers import SubscriberWorkerPool
from repro.workloads import CrowdtapApp, SocialWorkload, build_social_publisher


class TestHistogram:
    def test_mean_and_percentiles(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0, 4.0])
        assert h.mean() == 2.5
        assert h.percentile(50) == 2.0
        assert h.percentile(99) == 4.0
        assert h.count == 4
        assert h.total() == 10.0

    def test_empty(self):
        h = Histogram()
        assert h.mean() == 0.0
        assert h.percentile(99) == 0.0

    def test_throughput_meter(self):
        from repro.clock import VirtualClock

        clock = VirtualClock()
        meter = ThroughputMeter(clock)
        meter.start()
        meter.mark(100)
        clock.advance(2.0)
        meter.stop()
        assert meter.per_second() == 50.0


class TestWorkerPool:
    def build(self, eco):
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name"])
        class User(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]})
        class User(Model):  # noqa: F811
            name = Field(str)

        return pub, pub.registry["User"], sub, sub.registry["User"]

    def test_parallel_workers_apply_everything(self):
        eco = Ecosystem()
        pub, User, sub, SubUser = self.build(eco)
        with SubscriberWorkerPool(sub, workers=4) as pool:
            for i in range(100):
                User.create(name=f"u{i}")
            assert pool.wait_until_idle(timeout=20)
        assert SubUser.count() == 100

    def test_causal_order_held_under_concurrency(self):
        eco = Ecosystem()
        pub, User, sub, SubUser = self.build(eco)
        user = User.create(name="v0")
        with SubscriberWorkerPool(sub, workers=8) as pool:
            for i in range(1, 30):
                user.update(name=f"v{i}")
            assert pool.wait_until_idle(timeout=20)
        assert SubUser.find(user.id).name == "v29"

    def test_deadlock_callback_fires_on_poison_message(self):
        eco = Ecosystem()
        pub, User, sub, SubUser = self.build(eco)
        user = User.create(name="v1")
        eco.broker.drop_next(1)
        user.update(name="v2")  # lost
        user.update(name="v3")  # now blocked forever
        hits = []
        pool = SubscriberWorkerPool(
            sub, workers=2, wait_timeout=0.01, max_deliveries=3,
            on_deadlock=lambda svc: hits.append(svc.name),
        )
        with pool:
            pool.wait_until_idle(timeout=10)
        assert hits  # recovery hook invoked (§6.5)


class TestSimulator:
    def test_independent_messages_scale_linearly(self):
        messages = [SimMessage(seq=i) for i in range(100)]
        t1 = simulate_subscriber(messages, workers=1, service_time=0.1)
        t10 = simulate_subscriber(messages, workers=10, service_time=0.1)
        assert t1.throughput == pytest.approx(10.0, rel=0.05)
        assert t10.throughput == pytest.approx(100.0, rel=0.05)

    def test_chain_does_not_scale(self):
        """A fully serialised chain is insensitive to worker count."""
        messages = [
            SimMessage(seq=i, deps={"chain": i}) for i in range(50)
        ]
        t1 = simulate_subscriber(messages, workers=1, service_time=0.1)
        t10 = simulate_subscriber(messages, workers=10, service_time=0.1)
        assert t10.throughput == pytest.approx(t1.throughput, rel=0.05)

    def test_db_ceiling_caps_throughput(self):
        messages = [SimMessage(seq=i) for i in range(200)]
        result = simulate_subscriber(
            messages, workers=50, service_time=0.0,
            db=DBCeiling(capacity=5, op_time=0.1),
        )
        assert result.throughput == pytest.approx(50.0, rel=0.05)

    def test_unsatisfiable_deps_deadlock_cleanly(self):
        messages = [SimMessage(seq=1, deps={"ghost": 99})]
        result = simulate_subscriber(messages, workers=2, service_time=0.1)
        assert result.completed == 0

    def test_pipeline_bottlenecked_by_slowest_db(self):
        messages = [SimMessage(seq=i) for i in range(300)]
        result = simulate_pipeline(
            messages,
            workers=64,
            publish_time=0.0,
            subscribe_time=0.0,
            publisher_db=DBCeiling(capacity=12, op_time=0.001),   # 12k/s
            subscriber_db=DBCeiling(capacity=40, op_time=0.001),  # 40k/s
        )
        assert result.throughput <= 12000 * 1.05
        assert result.throughput >= 8000

    def test_sim_message_projection_weak_drops_deps(self):
        eco = Ecosystem()
        service, User, Post, Comment = build_social_publisher(eco)
        drain = capture_messages(eco, "social")
        workload = SocialWorkload(service, User, Post, Comment, users=5)
        workload.run(20)
        real = drain()
        assert len(real) == 25  # 5 users + 20 operations
        causal = [SimMessage.from_message(m, "causal") for m in real]
        weak = [SimMessage.from_message(m, "weak") for m in real]
        assert any(m.deps for m in causal)
        assert all(not m.deps for m in weak)


class TestWorkloads:
    def test_social_mix_ratio(self):
        eco = Ecosystem()
        service, User, Post, Comment = build_social_publisher(eco)
        workload = SocialWorkload(service, User, Post, Comment, users=10)
        workload.run(400)
        total = workload.posts_created + workload.comments_created
        assert total == 400
        assert 0.15 < workload.posts_created / total < 0.40

    def test_social_causal_replication_end_to_end(self):
        eco = Ecosystem()
        service, User, Post, PubComment = build_social_publisher(eco)
        sub = eco.service("sub", database=MongoLike("sub-db"))

        @sub.model(subscribe={"from": "social",
                              "fields": ["post_id", "author_id", "body"]},
                   name="Comment")
        class SubComment(Model):
            body = Field(str)
            post_id = Field(int)
            author_id = Field(int)

        workload = SocialWorkload(service, User, Post, PubComment, users=5)
        workload.run(100)
        sub.subscriber.drain()
        assert sub.registry["Comment"].count() == workload.comments_created

    def test_crowdtap_mix_profile(self):
        """The generated traffic reproduces the Fig 12(a) msgs/call
        profile per controller."""
        eco = Ecosystem()
        app = CrowdtapApp(eco, seed=3)
        before = app.service.publisher.messages_published
        for _ in range(300):
            app.run_request("awards/index")
        assert app.service.publisher.messages_published == before

        before = app.service.publisher.messages_published
        for _ in range(300):
            app.run_request("actions/update")
        per_call = (app.service.publisher.messages_published - before) / 300
        assert 3.0 < per_call < 4.0

    def test_crowdtap_sampler_follows_mix(self):
        eco = Ecosystem()
        app = CrowdtapApp(eco, seed=5)
        names = [app.sample_controller() for _ in range(4000)]
        share = names.count("awards/index") / len(names)
        assert 0.12 < share < 0.22
