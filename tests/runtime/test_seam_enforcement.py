"""Lint-style guard for the control-plane seam.

After the message-passing-only refactor, no subsystem may reach into a
peer service's heap: cross-service reads ride ``ecosystem.control``
envelopes and cross-service writes ride the broker. The one sanctioned
way to hold a ``Service`` *object* is the ecosystem's own registry, so
this test greps the source tree for ``.services[...]``-style
dereferences and fails — naming the offending lines — when one appears
outside the allowlist:

- ``core/api.py`` — the registry itself (and the local_* accessors);
- ``core/tools.py`` — operator-facing topology/introspection CLI,
  which deliberately inspects one in-process ecosystem;
- ``__main__.py`` — CLI glue;
- ``runtime/transport/`` — the seam's own implementation.

Adding a new shortcut means either refactoring it onto the control
plane or consciously widening this allowlist in review.
"""

from __future__ import annotations

import os
import re

import repro

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

#: Module paths (relative to the ``repro`` package, '/'-separated) that
#: may hold peer Service objects.
ALLOWLIST = (
    "core/api.py",
    "core/tools.py",
    "__main__.py",
)
ALLOWLIST_DIRS = (
    "runtime/transport/",
)

#: Dereferences of the ecosystem's service registry.
SHORTCUT = re.compile(
    r"\.services\s*(\[|\.get\(|\.values\(|\.items\(|\.keys\()"
)


def _allowlisted(rel_path: str) -> bool:
    return rel_path in ALLOWLIST or any(
        rel_path.startswith(prefix) for prefix in ALLOWLIST_DIRS
    )


def iter_violations():
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel_path = os.path.relpath(path, SRC_ROOT).replace(os.sep, "/")
            if _allowlisted(rel_path):
                continue
            with open(path, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    if SHORTCUT.search(line):
                        yield f"{rel_path}:{lineno}: {line.strip()}"


def test_no_cross_service_object_shortcuts():
    violations = list(iter_violations())
    assert violations == [], (
        "cross-service shared-object shortcut(s) outside the seam "
        "allowlist — route them through ecosystem.control or the broker:\n"
        + "\n".join(violations)
    )


def test_allowlist_entries_exist():
    """A deleted/renamed module must not linger as a stale allowlist
    entry silently widening the seam."""
    for rel_path in ALLOWLIST:
        assert os.path.exists(os.path.join(SRC_ROOT, rel_path)), rel_path
    for prefix in ALLOWLIST_DIRS:
        assert os.path.isdir(os.path.join(SRC_ROOT, prefix)), prefix
