"""Credit-based admission: watermarks, hysteresis, shed-weak-only, and
the graduated ladder ahead of the §4.4 kill cliff."""

from repro.broker import Message, SubscriberQueue
from repro.runtime.flow import FlowConfig, FlowController
from repro.runtime.flow.admission import (
    ADMIT,
    SHED,
    STATE_OPEN,
    STATE_SHEDDING,
    STATE_THROTTLED,
    QueueFlow,
)
from repro.runtime.metrics import MetricsRegistry


class StubRecorder:
    def __init__(self):
        self.anomalies = []
        self.events = []

    def anomaly(self, kind, **data):
        self.anomalies.append((kind, data))

    def record_event(self, kind, **data):
        self.events.append((kind, data))


def make_message(op_id=1, app="pub", deps=None, **kwargs):
    return Message(
        app=app,
        operations=[{"operation": "create", "types": ["User"], "id": op_id,
                     "attributes": {"name": "x"}}],
        dependencies=dict(deps or {}),
        published_at=0.0,
        **kwargs,
    )


def make_flow(capacity=10, modes=None, recorder=None, **config_kwargs):
    registry = MetricsRegistry()
    modes = modes or {"pub": "weak"}
    flow = QueueFlow(
        "q", capacity, FlowConfig(**config_kwargs), registry,
        mode_of=modes.get, recorder=recorder,
    )
    return flow, registry


class TestCredits:
    def test_watermarks_and_initial_credits(self):
        flow, _ = make_flow(capacity=10)  # defaults: hw 0.75, lw 0.5
        assert flow.high == 7 and flow.low == 5
        assert flow.credits == 7 and flow.state == STATE_OPEN

    def test_admission_consumes_one_credit_per_message(self):
        # Depth above the low watermark: no refill, credits just drain.
        flow, registry = make_flow(capacity=10)
        for _ in range(3):
            assert flow.admit(make_message(), flow.low + 1) == ADMIT
        assert flow.credits == 4
        assert registry.value("flow.q.admitted") == 3
        assert registry.gauge("flow.q.credits").value == 4

    def test_low_depth_admission_keeps_credits_topped_up(self):
        # At or below the low watermark every admit refills first, so a
        # healthy queue never drifts toward the shedding zone.
        flow, _ = make_flow(capacity=10)
        for _ in range(50):
            assert flow.admit(make_message(), flow.low) == ADMIT
        assert flow.credits == flow.high - 1

    def test_depth_at_high_watermark_sheds_even_with_credits(self):
        """The guard that keeps shedding ahead of the kill: credits in
        hand do not admit past the high watermark."""
        flow, registry = make_flow(capacity=10)
        assert flow.credits > 0
        assert flow.admit(make_message(), flow.high) == SHED
        assert flow.state == STATE_SHEDDING
        assert registry.value("flow.q.shed") == 1

    def _exhaust(self, flow):
        for _ in range(flow.credits):
            flow.admit(make_message(), flow.low + 1)

    def test_exhausted_credits_shed_weak(self):
        flow, registry = make_flow(capacity=10)
        self._exhaust(flow)
        assert flow.credits == 0
        assert flow.admit(make_message(), flow.low + 1) == SHED
        assert registry.value("flow.q.shed") == 1

    def test_refill_hysteresis_below_low_watermark(self):
        flow, _ = make_flow(capacity=10)
        self._exhaust(flow)
        flow.admit(make_message(), flow.low + 1)  # shed: state leaves open
        assert flow.state == STATE_SHEDDING
        # Draining to just above low does NOT refill (hysteresis)...
        assert flow.admit(make_message(), flow.low + 1) == SHED
        # ...but at/below low the credits refill and admission reopens.
        assert flow.admit(make_message(), flow.low) == ADMIT
        assert flow.state == STATE_OPEN
        assert flow.credits == flow.high - 1

    def test_reset_restores_open_state(self):
        flow, _ = make_flow(capacity=10)
        for depth in range(flow.high + 2):
            flow.admit(make_message(), depth)
        assert flow.state == STATE_SHEDDING
        flow.reset()
        assert flow.credits == flow.high and flow.state == STATE_OPEN

    def test_capacity_none_disables_admission(self):
        flow, registry = make_flow(capacity=None)
        for depth in range(1000):
            assert flow.admit(make_message(), depth) == ADMIT
        assert registry.value("flow.q.shed") == 0
        assert flow.publish_delay() == 0.0


class TestModes:
    def test_causal_and_global_are_throttled_never_shed(self):
        for mode in ("causal", "global"):
            flow, registry = make_flow(capacity=10, modes={"pub": mode})
            for depth in range(flow.high):
                flow.admit(make_message(), depth)
            assert flow.admit(make_message(), flow.high) == ADMIT
            assert flow.state == STATE_THROTTLED
            assert registry.value("flow.q.throttled") == 1
            assert registry.value("flow.q.shed") == 0

    def test_unknown_publisher_defaults_to_weak(self):
        flow, _ = make_flow(capacity=10, modes={})
        assert flow.admit(make_message(app="ghost"), flow.high) == SHED

    def test_shed_weak_false_throttles_instead(self):
        flow, registry = make_flow(capacity=10, shed_weak=False)
        assert flow.admit(make_message(), flow.high) == ADMIT
        assert flow.state == STATE_THROTTLED
        assert registry.value("flow.q.shed") == 0

    def test_repair_and_bootstrap_are_never_shed(self):
        """Shedding the recovery traffic would defeat it: repair heals
        shed-induced deficits, and a shed bootstrap message would leave
        an object unreplicated rather than merely stale."""
        flow, registry = make_flow(capacity=10)
        assert flow.admit(make_message(repair=True), flow.high) == ADMIT
        assert flow.admit(make_message(bootstrap=True), flow.high) == ADMIT
        assert registry.value("flow.q.shed") == 0
        assert registry.value("flow.q.throttled") == 2
        assert flow.state == STATE_THROTTLED
        # Plain weak traffic at the same depth still sheds.
        assert flow.admit(make_message(), flow.high) == SHED


class TestShedDeficitLedger:
    """Shedding leaves a deliberate subscriber-side counter deficit
    (the publisher bumped its store at publish time); the ledger lets
    lag audits forgive exactly that, and no more."""

    def test_shed_records_the_messages_counter_bumps(self):
        flow, _ = make_flow(capacity=10)
        assert flow.admit(make_message(deps={"h1": 3}), flow.high) == SHED
        assert flow.reconcile_shed("pub", {"h1": 5}) == {"h1": 1}

    def test_reconcile_trims_to_the_observed_deficit(self):
        flow, _ = make_flow(capacity=10)
        for version in (3, 4, 5):
            flow.admit(make_message(deps={"h1": version}), flow.high)
        # Only 2 of the 3 shed bumps are still unhealed: forgive 2.
        assert flow.reconcile_shed("pub", {"h1": 2}) == {"h1": 2}
        # Repair healed the key entirely: the entry drops out and can
        # never mask a genuinely lost later message.
        assert flow.reconcile_shed("pub", {}) == {}
        assert flow.reconcile_shed("pub", {"h1": 9}) == {}

    def test_admitted_messages_leave_no_deficit(self):
        flow, _ = make_flow(capacity=10)
        assert flow.admit(make_message(deps={"h1": 1}), 0) == ADMIT
        assert flow.reconcile_shed("pub", {"h1": 5}) == {}

    def test_unknown_app_reconciles_empty(self):
        flow, _ = make_flow(capacity=10)
        assert flow.reconcile_shed("ghost", {"h1": 1}) == {}

    def test_reset_clears_the_ledger(self):
        flow, _ = make_flow(capacity=10)
        flow.admit(make_message(deps={"h1": 1}), flow.high)
        flow.reset()
        assert flow.reconcile_shed("pub", {"h1": 5}) == {}


class TestRecorderAndDelay:
    def _exhaust(self, flow):
        for _ in range(flow.credits):
            flow.admit(make_message(), flow.low + 1)

    def test_shedding_anomaly_and_recovery_event(self):
        recorder = StubRecorder()
        flow, _ = make_flow(capacity=10, recorder=recorder)
        self._exhaust(flow)
        flow.admit(make_message(), flow.low + 1)  # shed
        assert [kind for kind, _ in recorder.anomalies] == ["flow.shedding"]
        flow.admit(make_message(), flow.low)  # refill: recovered
        assert [kind for kind, _ in recorder.events] == ["flow.recovered"]

    def test_publish_delay_ramps_with_credit_exhaustion(self):
        flow, _ = make_flow(capacity=10, throttle_delay=0.1)
        assert flow.publish_delay() == 0.0  # full credits
        self._exhaust(flow)
        assert flow.credits == 0
        assert flow.publish_delay() == 0.1  # fully exhausted: full stall
        assert flow.publish_delay() <= flow.config.throttle_delay

    def test_zero_throttle_delay_never_stalls(self):
        flow, _ = make_flow(capacity=10)
        self._exhaust(flow)
        assert flow.publish_delay() == 0.0


class TestQueueIntegration:
    def _flowed_queue(self, modes, max_size=10):
        controller = FlowController(
            FlowConfig(), MetricsRegistry(), mode_of=modes.get
        )
        queue = SubscriberQueue("q", max_size=max_size)
        queue.flow = controller.for_queue(queue)
        return queue, controller

    def test_for_queue_caches_and_uses_max_size(self):
        queue, controller = self._flowed_queue({"pub": "weak"})
        assert controller.for_queue(queue) is queue.flow
        assert queue.flow.capacity == 10
        assert "q" in controller.queues()

    def test_weak_flood_sheds_instead_of_killing(self):
        """The tentpole behavior: a weak flood stabilises at the high
        watermark and the §4.4 kill never fires."""
        queue, controller = self._flowed_queue({"pub": "weak"})
        for i in range(100):
            queue.publish(make_message(op_id=i))
        assert not queue.decommissioned
        assert len(queue) == queue.flow.high
        assert controller.metrics.value("flow.q.shed") == 100 - queue.flow.high

    def test_causal_flood_still_hits_the_kill_cliff(self):
        """Stronger modes are never shed, so the kill remains the last
        resort exactly as before."""
        queue, _ = self._flowed_queue({"pub": "causal"})
        for i in range(100):
            queue.publish(make_message(op_id=i))
        assert queue.decommissioned

    def test_config_capacity_overrides_queue_max_size(self):
        controller = FlowController(
            FlowConfig(capacity=20), MetricsRegistry(),
            mode_of={"pub": "weak"}.get,
        )
        queue = SubscriberQueue("q", max_size=50)
        queue.flow = controller.for_queue(queue)
        assert queue.flow.capacity == 20


class TestShedDeficitAudits:
    """End to end: deliberate shedding must not read as the §6.5 loss
    signature in the lag audits, while the divergence it causes stays
    visible and repairable."""

    def _ecosystem(self):
        from repro.core import Ecosystem
        from repro.databases.document import MongoLike
        from repro.databases.relational import PostgresLike
        from repro.orm import Field, Model

        eco = Ecosystem()
        eco.enable_flow(FlowConfig(capacity=6))
        pub = eco.service(
            "pub", database=MongoLike("pub-db"), delivery_mode="weak"
        )

        @pub.model(publish=["name"], name="Item")
        class Item(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(
            subscribe={"from": "pub", "fields": ["name"], "mode": "weak"},
            name="Item",
        )
        class SubItem(Model):
            name = Field(str)

        return eco, pub, sub, Item, SubItem

    def test_shed_deficit_is_forgiven_and_repair_heals_it(self):
        eco, pub, sub, Item, SubItem = self._ecosystem()
        with pub.controller():
            for i in range(12):
                Item.create(name=f"i{i}")
        assert eco.metrics.value("flow.sub.shed") > 0
        sub.subscriber.drain()

        report = sub.audit_replication()
        lag = report.lag["pub"]
        assert lag.version_lag == 0       # deliberate sheds are not loss
        assert lag.shed_deficit > 0       # ...but stay visible
        assert report.divergent_total > 0  # the data really is missing

        entry = next(
            link for link in eco.monitor.health().links
            if (link.publisher, link.subscriber) == ("pub", "sub")
        )
        assert entry.version_lag == 0
        assert entry.shed_deficit > 0
        assert entry.to_dict()["shed_deficit"] == entry.shed_deficit

        result = sub.repair_replication(report=report)
        assert result.verified_in_sync
        final = sub.audit_replication()
        assert final.lag["pub"].version_lag == 0
        # Repair healed every shed key: the ledger trimmed to nothing.
        assert final.lag["pub"].shed_deficit == 0
