"""Dependency-aware batched apply: ``process_batch`` group commit,
in-batch causal chains, mid-batch fault recovery, and the AIMD sizer."""

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.flow import BatchSizer, FlowConfig
from repro.runtime.workers import SubscriberWorkerPool


class TestBatchSizer:
    def _sizer(self, **kwargs):
        defaults = dict(batch_min=1, batch_max=16, aimd_increase=2,
                        aimd_decrease=0.5)
        defaults.update(kwargs)
        return BatchSizer(FlowConfig(**defaults))

    def test_starts_at_batch_min(self):
        assert self._sizer(batch_min=3).current == 3

    def test_full_clean_batches_grow_additively(self):
        sizer = self._sizer()
        assert sizer.on_batch(popped=1, applied=1, failed=0) == 3
        assert sizer.on_batch(popped=3, applied=3, failed=0) == 5
        # Partial batch (queue drained): no growth signal.
        assert sizer.on_batch(popped=2, applied=2, failed=0) == 5

    def test_growth_caps_at_batch_max(self):
        sizer = self._sizer(batch_max=4)
        for _ in range(10):
            sizer.on_batch(popped=sizer.current, applied=sizer.current,
                           failed=0)
        assert sizer.current == 4

    def test_failure_dominated_batch_halves(self):
        sizer = self._sizer()
        for _ in range(4):
            sizer.on_batch(popped=sizer.current, applied=sizer.current,
                           failed=0)
        grown = sizer.current
        assert grown > 1
        assert sizer.on_batch(popped=4, applied=1, failed=3) == max(
            1, int(grown * 0.5)
        )

    def test_minor_failures_do_not_shrink(self):
        sizer = self._sizer()
        sizer.on_batch(popped=1, applied=1, failed=0)
        before = sizer.current
        assert sizer.on_batch(popped=8, applied=7, failed=1) == before

    def test_lag_pressure_grows_and_headroom_decays(self):
        sizer = self._sizer()
        assert sizer.observe_pressure(2.0) == 3  # over SLO: drain harder
        assert sizer.observe_pressure(1.5) == 5
        assert sizer.observe_pressure(0.5) == 5  # in-band: hold
        assert sizer.observe_pressure(0.1) == 4  # healthy: decay by one
        for _ in range(10):
            sizer.observe_pressure(0.0)
        assert sizer.current == 1  # floors at batch_min


def build_ecosystem(mode="causal", flow=True, coalesce=False, batch_max=8):
    eco = Ecosystem()
    if flow:
        eco.enable_flow(FlowConfig(batch_max=batch_max, coalesce=coalesce))
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode=mode)

    @pub.model(publish=["name", "score"], name="Doc")
    class Doc(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"],
                          "mode": mode}, name="Doc")
    class SubDoc(Model):
        name = Field(str)
        score = Field(int, default=0)

    return eco, pub, sub, Doc, SubDoc


class TestProcessBatch:
    def test_group_commit_is_one_engine_transaction(self):
        eco, pub, sub, Doc, SubDoc = build_ecosystem()
        with pub.controller():
            docs = [Doc.create(name=f"d{i}") for i in range(6)]
        batch = sub.subscriber.queue.pop_many(8)
        assert len(batch) == 6
        tx_before = sub.database.stats.transactions
        done, retry, errors = sub.subscriber.process_batch(batch)
        assert (len(done), len(retry), errors) == (6, 0, 0)
        assert sub.database.stats.transactions == tx_before + 1
        for message in done:
            sub.subscriber.queue.ack(message)
        for doc in docs:
            assert SubDoc.__mapper__.find(doc.id) is not None

    def test_in_batch_causal_chain_lands_in_one_call(self):
        """Session writes chain each message to the previous one; the
        single-message path needs one pass per link, the batched path
        verifies against the bumps earlier batch members will make."""
        eco, pub, sub, Doc, SubDoc = build_ecosystem()
        with pub.controller():
            doc = Doc.create(name="d", score=0)
            for r in range(1, 5):
                doc.score = r
                doc.save()
        batch = sub.subscriber.queue.pop_many(8)
        assert len(batch) == 5
        done, retry, errors = sub.subscriber.process_batch(batch)
        assert (len(done), len(retry), errors) == (5, 0, 0)
        assert SubDoc.__mapper__.find(doc.id)["score"] == 4

    def test_unsatisfiable_dependencies_go_to_retry(self):
        eco, pub, sub, Doc, SubDoc = build_ecosystem()
        eco.broker.drop_next(1)  # lose the create: updates can't apply
        with pub.controller():
            doc = Doc.create(name="d", score=0)
            doc.score = 1
            doc.save()
        batch = sub.subscriber.queue.pop_many(8)
        assert len(batch) == 1
        done, retry, errors = sub.subscriber.process_batch(batch)
        assert (len(done), len(retry), errors) == (0, 1, 0)

    def test_mid_batch_fault_redoes_completed_prefix(self):
        """A fault on the Nth apply rolls back the whole group commit;
        the already-counted prefix must be redone (its counters and
        dedup entries are final), the rest retried."""
        eco, pub, sub, Doc, SubDoc = build_ecosystem()
        with pub.controller():
            docs = [Doc.create(name=f"d{i}") for i in range(4)]
        batch = sub.subscriber.queue.pop_many(8)
        sub.database.faults.skip_next_writes = 2
        sub.database.faults.fail_next_writes = 1
        done, retry, errors = sub.subscriber.process_batch(batch)
        assert errors == 1
        assert len(done) + len(retry) == 4 and retry
        for message in done:
            sub.subscriber.queue.ack(message)
        # Retry the survivors now that the fault is consumed.
        done2, retry2, errors2 = sub.subscriber.process_batch(retry)
        assert (len(retry2), errors2) == (0, 0)
        for message in done2:
            sub.subscriber.queue.ack(message)
        for doc in docs:
            assert SubDoc.__mapper__.find(doc.id) is not None
        assert sub.audit_replication().in_sync

    def test_redo_failure_does_not_poison_the_batch(self):
        """If a rollback-recovery redo fails a second time, the other
        redos must still run and the exception must not escape
        ``process_batch`` — the completed prefix is already counted and
        deduped, so a batch-wide nack would silently lose its writes on
        the dedup-skipping redelivery."""
        eco, pub, sub, Doc, SubDoc = build_ecosystem()
        with pub.controller():
            docs = [Doc.create(name=f"d{i}") for i in range(4)]
        batch = sub.subscriber.queue.pop_many(8)
        # Writes 1-2 land in the transaction, write 3 faults (rollback);
        # the redo pass then redoes writes 1-2, and the first of those
        # faults again.
        sub.database.faults.skip_next_writes = 2
        sub.database.faults.fail_next_writes = 2
        done, retry, errors = sub.subscriber.process_batch(batch)
        assert errors == 1
        # The completed prefix is done (ackable), never retried.
        assert len(done) == 2 and len(retry) == 2
        assert eco.metrics.value("subscriber.sub.redo_failed") == 1
        # The second redo still ran: its row exists.
        redone = [d for m in done for d in docs if d.id == m.operations[0]["id"]]
        assert any(SubDoc.__mapper__.find(d.id) is not None for d in redone)
        for message in done:
            sub.subscriber.queue.ack(message)
        done2, retry2, errors2 = sub.subscriber.process_batch(retry)
        assert (len(retry2), errors2) == (0, 0)
        for message in done2:
            sub.subscriber.queue.ack(message)
        # The lost redo shows up as divergence for anti-entropy to heal.
        report = sub.audit_replication()
        assert not report.in_sync
        assert sub.repair_replication(report=report).verified_in_sync

    def test_weak_batch_converges_and_audits_clean(self):
        eco, pub, sub, Doc, SubDoc = build_ecosystem(
            mode="weak", coalesce=True
        )
        with pub.controller():
            doc = Doc.create(name="d", score=0)
            for r in range(1, 9):
                doc.score = r
                doc.save()
        sub.subscriber.drain()
        assert SubDoc.__mapper__.find(doc.id)["score"] == 8
        assert sub.audit_replication().in_sync

    def test_duplicate_redelivery_is_acked_not_reapplied(self):
        eco, pub, sub, Doc, SubDoc = build_ecosystem()
        with pub.controller():
            Doc.create(name="d")
        queue = sub.subscriber.queue
        batch = queue.pop_many(8)
        done, _, _ = sub.subscriber.process_batch(batch)
        queue.nack(done[0])  # simulate a missed ack: redelivery
        redelivered = queue.pop_many(8)
        done2, retry2, errors2 = sub.subscriber.process_batch(redelivered)
        assert (len(done2), len(retry2), errors2) == (1, 0, 0)
        assert sub.subscriber.duplicate_messages == 1


class TestBatchedWorkerPool:
    def test_pool_uses_batched_loop_and_drains(self):
        eco, pub, sub, Doc, SubDoc = build_ecosystem(batch_max=8)
        with pub.controller():
            docs = [Doc.create(name=f"d{i}", score=i) for i in range(40)]
        # The 40 creates share one controller session, so their messages
        # form a 40-deep causal chain. Under heavy machine load a
        # mid-chain dependency wait can exceed wait_timeout repeatedly,
        # and the default max_deliveries=20 give-up budget (§6.5 drop)
        # would discard the message; a generous budget keeps the test
        # about batched draining, not give-up policy.
        pool = SubscriberWorkerPool(
            sub, workers=3, wait_timeout=0.1, max_deliveries=10_000
        )
        assert pool._flow is not None  # batched loop engaged
        with pool:
            assert pool.wait_until_idle(timeout=10)
        for doc in docs:
            assert SubDoc.__mapper__.find(doc.id) is not None
        assert eco.metrics.snapshot("flow.")["flow.sub.batch_size"]["count"] > 0
        assert pool.deadlocked_messages == 0

    def test_flow_disabled_pool_keeps_single_message_loop(self):
        eco, pub, sub, Doc, SubDoc = build_ecosystem(flow=False)
        pool = SubscriberWorkerPool(sub, workers=2)
        assert pool._flow is None
        with pub.controller():
            doc = Doc.create(name="d")
        with pool:
            assert pool.wait_until_idle(timeout=10)
        assert SubDoc.__mapper__.find(doc.id) is not None
