"""Detailed simulator semantics: arrivals, completion times, ceilings."""

import pytest

from repro.runtime.simulation import (
    DBCeiling,
    SimMessage,
    simulate_pipeline,
    simulate_subscriber,
)


class TestArrivalsAndCompletions:
    def test_completion_times_reported_ascending(self):
        messages = [SimMessage(seq=i) for i in range(10)]
        result = simulate_subscriber(messages, workers=3, service_time=0.1)
        assert len(result.completion_times) == 10
        assert result.completion_times == sorted(result.completion_times)
        assert result.total_time == pytest.approx(result.completion_times[-1])

    def test_arrival_gating_delays_processing(self):
        messages = [SimMessage(seq=i) for i in range(4)]
        spread = simulate_subscriber(
            messages, workers=4, service_time=0.1,
            arrival_times=[0.0, 1.0, 2.0, 3.0],
        )
        assert spread.total_time == pytest.approx(3.1)
        backlog = simulate_subscriber(messages, workers=4, service_time=0.1)
        assert backlog.total_time == pytest.approx(0.1)

    def test_mismatched_arrivals_rejected(self):
        with pytest.raises(ValueError):
            simulate_subscriber([SimMessage(seq=1)], workers=1,
                                service_time=0.1, arrival_times=[0.0, 1.0])

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            simulate_subscriber([], workers=0, service_time=0.1)

    def test_dep_wait_measured(self):
        messages = [
            SimMessage(seq=1, deps={}),
            SimMessage(seq=2, deps={"x": 1}),  # waits for seq 1's bump
        ]
        messages[0].deps = {"x": 0}
        result = simulate_subscriber(messages, workers=2, service_time=0.5)
        assert result.mean_dep_wait > 0


class TestCeilingSemantics:
    def test_db_slot_held_only_for_op_time(self):
        """The callback runs outside the engine: 1 DB slot at 10 ms ops
        caps throughput at 100/s even with a 100 ms callback and many
        workers."""
        messages = [SimMessage(seq=i) for i in range(500)]
        result = simulate_subscriber(
            messages, workers=50, service_time=0.1,
            db=DBCeiling(capacity=1, op_time=0.01),
        )
        assert result.throughput == pytest.approx(100.0, rel=0.1)

    def test_workers_bind_before_db_when_scarce(self):
        messages = [SimMessage(seq=i) for i in range(50)]
        result = simulate_subscriber(
            messages, workers=2, service_time=0.1,
            db=DBCeiling(capacity=100, op_time=0.001),
        )
        assert result.throughput == pytest.approx(2 / 0.101, rel=0.1)

    def test_pipeline_total_includes_both_stages(self):
        messages = [SimMessage(seq=i) for i in range(20)]
        result = simulate_pipeline(
            messages, workers=1, publish_time=0.05, subscribe_time=0.05
        )
        # Single worker each side, pipelined: ~20 * 0.05 + one hop.
        assert result.total_time == pytest.approx(20 * 0.05 + 0.05, rel=0.05)

    def test_from_message_projection_modes(self):
        from repro.broker.message import Message

        message = Message(
            app="pub",
            operations=[{"operation": "update", "types": ["User"], "id": 1,
                         "attributes": {}}],
            dependencies={"__global__": 5, "pub/users/id/1": 2,
                          "pub/posts/id/9": 1},
            published_at=0.0,
        )
        causal = SimMessage.from_message(message, "causal")
        assert "__global__" not in causal.deps
        assert causal.deps["pub/users/id/1"] == 2
        glob = SimMessage.from_message(message, "global")
        assert glob.deps["__global__"] == 5
        weak = SimMessage.from_message(message, "weak")
        assert weak.deps == {}
