"""Workload driver internals and ShardedKV helpers."""

import pytest

from repro.core import Ecosystem
from repro.databases.kv import RedisLike
from repro.versionstore import ShardedKV
from repro.workloads import CONTROLLER_MIX, CrowdtapApp
from repro.workloads.social import SocialWorkload, build_social_publisher


class TestControllerMix:
    def test_shares_sum_to_one(self):
        assert sum(share for share, _m, _d in CONTROLLER_MIX.values()) == \
            pytest.approx(1.0)

    def test_every_controller_callable(self):
        eco = Ecosystem()
        app = CrowdtapApp(eco, seed=2)
        for name in CONTROLLER_MIX:
            app.run_request(name)  # none may raise

    def test_read_only_controllers_publish_nothing(self):
        eco = Ecosystem()
        app = CrowdtapApp(eco, seed=2)
        before = app.service.publisher.messages_published
        for _ in range(50):
            app.run_request("me/show")
            app.run_request("awards/index")
        assert app.service.publisher.messages_published == before

    def test_brands_show_rarely_writes(self):
        eco = Ecosystem()
        app = CrowdtapApp(eco, seed=2)
        before = app.service.publisher.messages_published
        for _ in range(400):
            app.run_request("brands/show")
        per_call = (app.service.publisher.messages_published - before) / 400
        assert 0.0 < per_call < 0.1  # the paper's 0.03 regime


class TestSocialWorkloadInternals:
    def test_recent_post_window_bounded(self):
        eco = Ecosystem()
        service, User, Post, Comment = build_social_publisher(eco)
        workload = SocialWorkload(service, User, Post, Comment, users=5,
                                  track_recent=8)
        workload.run(200, post_fraction=0.9)
        assert len(workload.recent_posts) <= 8

    def test_all_posts_when_fraction_one(self):
        eco = Ecosystem()
        service, User, Post, Comment = build_social_publisher(eco)
        workload = SocialWorkload(service, User, Post, Comment, users=3)
        workload.run(30, post_fraction=1.0)
        assert workload.posts_created == 30
        assert workload.comments_created == 0


class TestShardedKV:
    def test_requires_shards(self):
        with pytest.raises(ValueError):
            ShardedKV([])

    def test_entries_span_all_shards(self):
        kv = ShardedKV([RedisLike(f"s{i}") for i in range(3)])
        for i in range(30):
            kv.hset(f"v:key{i}", "ops", i)
        entries = kv.entries("v:")
        assert len(entries) == 30
        assert entries["v:key7"] == {"ops": 7}
        used = [s for s in kv.shards if s.dbsize() > 0]
        assert len(used) > 1

    def test_flushall_clears_every_shard(self):
        kv = ShardedKV([RedisLike(f"s{i}") for i in range(3)])
        for i in range(10):
            kv.hset(f"k{i}", "f", 1)
        kv.flushall()
        assert kv.total_keys() == 0

    def test_any_down_detection(self):
        kv = ShardedKV([RedisLike("a"), RedisLike("b")])
        assert not kv.any_down
        kv.shards[1].crash()
        assert kv.any_down
        kv.shards[1].restart()
        assert not kv.any_down
