"""End-to-end cluster observability over real OS processes.

Both tests fork the full 2-shard demo topology: one distributed trace is
assembled from spans recorded in two different interpreters, and one
injected SLO breach produces a correlated incident directory containing
a flight-recorder dump from *every* shard.
"""

import glob
import os

import pytest

from repro.runtime.monitor import load_dump
from repro.runtime.tracing import PIPELINE_STAGES, STAGE_APPLY, STAGE_ROUTE
from repro.runtime.transport.demo import run_demo, run_trace_demo


class TestCrossShardTrace:
    @pytest.fixture(scope="class")
    def assembled(self):
        return run_trace_demo(operations=20)

    def test_trace_spans_both_processes(self, assembled):
        assert assembled is not None and assembled["found"]
        assert assembled["missing"] == []
        assert set(assembled["shards"]) == {"shard0", "shard1"}
        shards_with_spans = {span["shard"] for span in assembled["spans"]}
        assert shards_with_spans == {"shard0", "shard1"}

    def test_spans_cover_the_pipeline_across_the_boundary(self, assembled):
        stages = {span["stage"] for span in assembled["spans"]}
        assert STAGE_ROUTE in stages
        assert STAGE_APPLY in stages
        # Every stage is one the pipeline defines (plus control.* ops).
        for stage in stages:
            assert stage in PIPELINE_STAGES or stage.startswith("control.")

    def test_normalized_timeline_is_causal(self, assembled):
        by_stage = {}
        for span in assembled["spans"]:
            by_stage.setdefault(span["stage"], []).append(span)
        route_start = min(s["start"] for s in by_stage[STAGE_ROUTE])
        for apply_span in by_stage[STAGE_APPLY]:
            assert apply_span["start"] >= route_start
        assert assembled["unnormalized"] == []
        assert assembled["end_to_end"] > 0.0

    def test_critical_path_crosses_shards(self, assembled):
        path = assembled["critical_path"]
        assert path, "critical path should not be empty"
        assert len({entry["shard"] for entry in path}) == 2
        assert path[-1]["stage"] == STAGE_APPLY

    def test_hops_connect_the_two_shards(self, assembled):
        pairs = {(hop["from"], hop["to"]) for hop in assembled["hops"]}
        assert any(a != b for a, b in pairs)


class TestCorrelatedPostmortem:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        incident_dir = str(tmp_path_factory.mktemp("incident"))
        results = run_demo(
            operations=20, breach_shard="shard1", incident_dir=incident_dir
        )
        return incident_dir, results

    def test_breach_was_injected_and_detected(self, outcome):
        _, results = outcome
        breach = results["shards"]["shard1"]["verify"]["breach"]
        assert breach["injected"]
        assert breach["breached"]
        assert breach["dumps"], "auto-dump should have fired"

    def test_every_shard_dumped_into_the_same_incident_dir(self, outcome):
        incident_dir, _ = outcome
        incidents = glob.glob(
            os.path.join(incident_dir, "incidents", "incident-shard1-*")
        )
        assert len(incidents) == 1, incidents
        assert "slo.breach" in os.path.basename(incidents[0])
        members = sorted(os.listdir(incidents[0]))
        assert members == ["shard0.jsonl", "shard1.jsonl"]

    def test_dumps_parse_and_carry_the_shared_reason(self, outcome):
        incident_dir, _ = outcome
        incident = glob.glob(
            os.path.join(incident_dir, "incidents", "incident-shard1-*")
        )[0]
        for shard in ("shard0", "shard1"):
            records = load_dump(os.path.join(incident, f"{shard}.jsonl"))
            assert records, f"{shard} dump is empty"
            meta = records[0]
            assert meta["type"] == "meta"
            assert "slo.breach" in meta["reason"]

    def test_workload_still_healthy_after_breach(self, outcome):
        _, results = outcome
        for shard, entry in results["shards"].items():
            for audit in entry["verify"]["audits"].values():
                assert audit["in_sync"], f"{shard} diverged"
            assert entry["verify"]["repair"]["verified_in_sync"]
