"""Guard: the README quickstart code runs exactly as printed."""

import os
import re


def extract_python_blocks(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_executes(self):
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        blocks = extract_python_blocks(os.path.join(root, "README.md"))
        assert blocks, "README lost its quickstart code block"
        # The first python block is the quickstart; it must run clean.
        exec(compile(blocks[0], "README.md", "exec"), {})
