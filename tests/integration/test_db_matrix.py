"""Table 1 as a test: the full publisher x subscriber engine matrix.

Every publisher-capable engine replicates creates, updates and deletes
into every engine (including itself), with ids preserved.
"""

import pytest

from repro.core import Ecosystem
from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike, RethinkDBLike, TokuMXLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import MySQLLike, OracleLike, PostgresLike
from repro.databases.search import ElasticsearchLike
from repro.orm import Field, Model

PUBLISHERS = {
    "postgresql": PostgresLike,
    "mysql": MySQLLike,
    "oracle": OracleLike,
    "mongodb": MongoLike,
    "tokumx": TokuMXLike,
    "cassandra": CassandraLike,
}

SUBSCRIBERS = {
    **PUBLISHERS,
    "rethinkdb": RethinkDBLike,
    "elasticsearch": ElasticsearchLike,
    "neo4j": Neo4jLike,
}


@pytest.mark.parametrize("pub_name", sorted(PUBLISHERS))
@pytest.mark.parametrize("sub_name", sorted(SUBSCRIBERS))
def test_engine_pair_roundtrip(pub_name, sub_name):
    eco = Ecosystem()
    pub = eco.service("pub", database=PUBLISHERS[pub_name]("pub-db"))

    @pub.model(publish=["title", "score"], name="Doc")
    class Doc(Model):
        title = Field(str)
        score = Field(int)

    sub = eco.service("sub", database=SUBSCRIBERS[sub_name]("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["title", "score"]},
               name="Doc")
    class SubDoc(Model):
        title = Field(str)
        score = Field(int)

    docs = [Doc.create(title=f"doc {i}", score=i) for i in range(5)]
    docs[0].update(score=100)
    docs[1].destroy()
    sub.subscriber.drain()

    assert SubDoc.count() == 4
    assert SubDoc.find(docs[0].id).score == 100
    assert SubDoc.find_by(id=docs[1].id) is None
    assert {d.title for d in SubDoc.all()} == \
        {f"doc {i}" for i in (0, 2, 3, 4)}
