"""The full §5.2 ecosystem under real threaded worker pools."""


from repro.apps import build_social_ecosystem
from repro.runtime.workers import SubscriberWorkerPool


class TestThreadedSocialEcosystem:
    def test_fig9a_flow_with_worker_pools(self):
        world = build_social_ecosystem()
        services = [
            world.mailer.service,
            world.analyzer.service,
            world.spree.service,
            world.discourse.service,
        ]
        pools = [SubscriberWorkerPool(s, workers=2, wait_timeout=0.5).start()
                 for s in services]
        try:
            ada = world.diaspora.users_create("ada", "ada@x")
            bob = world.diaspora.users_create("bob", "bob@x")
            world.diaspora.friends_create(ada, bob)
            for i in range(10):
                world.diaspora.posts_create(
                    ada, f"coffee update number {i}: still love coffee"
                )
            for pool in pools:
                assert pool.wait_until_idle(timeout=30)
            # The analyzer's decoration messages may land after the first
            # idle check; settle the cascade.
            for pool in pools:
                assert pool.wait_until_idle(timeout=30)
        finally:
            for pool in pools:
                pool.stop()
        # Mailer: one email per post to ada's one friend, in post order
        # (causal: ada's session serialises her posts).
        assert len(world.mailer.outbox) == 10
        numbers = [
            int(m["body"].split("number ")[1].split(":")[0])
            for m in world.mailer.outbox
        ]
        assert numbers == list(range(10))
        # Analyzer decorated ada; Spree received the decoration.
        assert "coffee" in world.analyzer.User.find(ada.id).interests
        assert "coffee" in world.spree.User.find(ada.id).interests
