"""Integration tests over the full §5.2 ecosystem (Fig 11)."""

import pytest

from repro.apps import build_social_ecosystem
from repro.apps.analyzer import extract_topics


@pytest.fixture
def world():
    return build_social_ecosystem()


class TestTopicExtraction:
    def test_extracts_frequent_long_tokens(self):
        topics = extract_topics(
            "coffee coffee coffee guitar mornings with coffee and guitar"
        )
        assert topics[0] == "coffee"
        assert "guitar" in topics

    def test_ignores_stopwords_and_short_tokens(self):
        assert extract_topics("the and a of to in is it") == []

    def test_empty(self):
        assert extract_topics("") == []


class TestFig9aFlow:
    """A user posts on Diaspora; the mailer and the analyzer both react;
    Spree eventually sees the decorated interests."""

    def test_post_reaches_mailer_and_analyzer_then_spree(self, world):
        ada = world.diaspora.users_create("ada", "ada@example.org")
        bob = world.diaspora.users_create("bob", "bob@example.org")
        world.diaspora.friends_create(ada, bob)
        world.sync()
        world.diaspora.posts_create(
            ada, "I love coffee, coffee every morning with my guitar"
        )
        world.sync()
        # Mailer notified ada's friend bob.
        assert len(world.mailer.outbox) == 1
        assert world.mailer.outbox[0]["to"] == "bob@example.org"
        # Analyzer decorated ada with interests.
        analyzer_user = world.analyzer.User.find(ada.id)
        assert "coffee" in analyzer_user.interests
        # Spree received the decoration through the chain.
        spree_user = world.spree.User.find(ada.id)
        assert "coffee" in spree_user.interests

    def test_recommendations_from_social_activity(self, world):
        ada = world.diaspora.users_create("ada", "ada@example.org")
        world.sync()
        world.diaspora.posts_create(
            ada, "my cats are wonderful cats, cats cats everywhere"
        )
        world.sync()
        recs = world.spree.recommend(ada.id)
        assert recs, "expected at least one recommendation"
        assert recs[0].name == "Cat tree"

    def test_discourse_posts_also_feed_the_analyzer(self, world):
        ada = world.diaspora.users_create("ada", "a@x")
        world.sync()
        topic = world.discourse.topics_create(ada.id, "gear talk")
        world.discourse.posts_create(
            ada.id, topic, "guitar strings and guitar picks for guitar nerds"
        )
        world.sync()
        assert "guitar" in world.analyzer.User.find(ada.id).interests

    def test_no_email_without_friends(self, world):
        ada = world.diaspora.users_create("ada", "a@x")
        world.sync()
        world.diaspora.posts_create(ada, "hello world")
        world.sync()
        assert world.mailer.outbox == []


class TestFig9bCausality:
    """Mailer offline; two users post twice; on reconnect each user's
    messages are handled in order (the Fig 9(b) execution)."""

    def test_disconnected_mailer_catches_up_in_causal_order(self, world):
        ada = world.diaspora.users_create("ada", "ada@x")
        bob = world.diaspora.users_create("bob", "bob@x")
        carl = world.diaspora.users_create("carl", "carl@x")
        world.diaspora.friends_create(ada, carl)
        world.diaspora.friends_create(bob, carl)
        world.sync()
        # Mailer goes offline (stops draining); posts accumulate.
        world.diaspora.posts_create(ada, "ada first")
        world.diaspora.posts_create(bob, "bob first")
        world.diaspora.posts_create(ada, "ada second")
        world.diaspora.posts_create(bob, "bob second")
        assert world.mailer.outbox == []
        # Mailer reconnects and processes the backlog.
        world.sync()
        bodies = [m["body"] for m in world.mailer.outbox]
        assert len(bodies) == 4
        # Per-user order held.
        ada_msgs = [b for b in bodies if b.startswith("ada")]
        bob_msgs = [b for b in bodies if b.startswith("bob")]
        assert ada_msgs == ["ada posted: ada first", "ada posted: ada second"]
        assert bob_msgs == ["bob posted: bob first", "bob posted: bob second"]


class TestSpreeCommerce:
    def test_checkout_flow(self, world):
        ada = world.diaspora.users_create("ada", "a@x")
        world.sync()
        products = world.spree.products_index()
        user = world.spree.User.find(ada.id)
        order = world.spree.orders_create(user, [(products[0], 2)])
        assert order.total == pytest.approx(products[0].price * 2)

    def test_recommender_without_interests_is_empty(self, world):
        ada = world.diaspora.users_create("ada", "a@x")
        world.sync()
        assert world.spree.recommend(ada.id) == []
