"""The paper's motivating causality example (§3.2): "sending a
notification for a new post to an out-of-date friends set"."""


from repro.apps import build_social_ecosystem


class TestOutOfDateFriendsSet:
    def test_unfriended_user_gets_no_notification(self):
        """bob unfriends ada *before* ada posts; causal delivery means
        the mailer's friends set cannot lag behind the post."""
        world = build_social_ecosystem()
        ada = world.diaspora.users_create("ada", "ada@x")
        bob = world.diaspora.users_create("bob", "bob@x")
        friendship = world.diaspora.friends_create(ada, bob)
        world.sync()
        # Unfriend, then post — all before the mailer sees anything new.
        with world.diaspora.service.controller(user=ada):
            world.diaspora.Friendship.find(friendship.id).destroy()
        world.diaspora.posts_create(ada, "secret party at my place")
        world.sync()
        assert world.mailer.outbox == []

    def test_friended_just_before_post_does_get_notified(self):
        world = build_social_ecosystem()
        ada = world.diaspora.users_create("ada", "ada@x")
        bob = world.diaspora.users_create("bob", "bob@x")
        # Friend + post back-to-back; the mailer was offline throughout.
        world.diaspora.friends_create(ada, bob)
        world.diaspora.posts_create(ada, "welcome aboard bob")
        world.sync()
        assert [m["to"] for m in world.mailer.outbox] == ["bob@x"]

    def test_unfriend_ordered_even_when_queue_reordered(self):
        """Even if the fabric delivers out of order, the causal engine
        refuses to apply the post before the unfriend."""
        world = build_social_ecosystem()
        ada = world.diaspora.users_create("ada", "ada@x")
        bob = world.diaspora.users_create("bob", "bob@x")
        friendship = world.diaspora.friends_create(ada, bob)
        world.sync()
        with world.diaspora.service.controller(user=ada):
            world.diaspora.Friendship.find(friendship.id).destroy()
        world.diaspora.posts_create(ada, "secret")
        # Reverse the mailer's queue before draining.
        queue = world.mailer.service.subscriber.queue
        messages = []
        while True:
            message = queue.pop()
            if message is None:
                break
            messages.append(message)
        for message in messages:  # nack-ing in pop order reverses them
            queue.nack(message)
        world.sync()
        assert world.mailer.outbox == []
