"""Chaos test: the Crowdtap ecosystem under seeded random faults
(message loss + subscriber store crashes) must converge after recovery."""

import random

import pytest

from repro.apps.crowdtap import build_crowdtap_ecosystem
from repro.core.bootstrap import bootstrap_subscriber


class TestChaosConvergence:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_ecosystem_converges_after_faults_and_recovery(self, seed):
        rng = random.Random(seed)
        ct = build_crowdtap_ecosystem()
        members = [ct.signup(f"m{i}", f"m{i}@x") for i in range(5)]
        brands = [ct.add_brand(f"b{i}", f"brand number {i}") for i in range(3)]
        ct.sync()

        # Chaotic traffic: random losses sprinkled through real requests.
        for step in range(60):
            if rng.random() < 0.1:
                ct.eco.broker.drop_next(rng.randint(1, 3))
            member = rng.choice(members)
            action = rng.random()
            if action < 0.6:
                ct.submit_action(member, rng.choice(brands), "review",
                                 text=f"step {step}")
            elif action < 0.8:
                ct.crawl_profile(member, likes=[f"topic{step % 4}"])
            else:
                ct.sync()
        # A subscriber version store dies mid-flight.
        for shard in ct.eco.services["targeting"].subscriber_version_store.kv.shards:
            shard.crash()
            shard.restart()

        ct.sync()
        # Recovery: every subscriber re-bootstraps (the §6.5 playbook).
        for name, service in ct.eco.services.items():
            if service.subscriber.specs:
                bootstrap_subscriber(service)
        ct.sync()
        # One more pass for cascade messages produced during recovery.
        for name, service in ct.eco.services.items():
            if service.subscriber.specs:
                bootstrap_subscriber(service)
        ct.sync()

        # Convergence: every subscriber holds exactly the publisher state.
        main_members = {m.id: m.points for m in ct.Member.all()}
        targeting = {m.id: m.points
                     for m in ct.TargetedMember.all()}
        assert targeting == main_members
        main_actions = {a.id for a in ct.Action.all()}
        moderated = {a.id for a in ct.ModeratedAction.all()}
        assert moderated == main_actions
        reported = {a.id for a in ct.ReportedAction.all()}
        assert reported == main_actions
        # Every moderated action reached a verdict (callbacks re-ran or
        # survived recovery).
        assert all(a.status in ("approved", "rejected", "pending")
                   for a in ct.ModeratedAction.all())
