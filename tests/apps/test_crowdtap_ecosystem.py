"""Tests over the nine-service Crowdtap ecosystem of §5.1 (Fig 10)."""

import pytest

from repro.apps.crowdtap import build_crowdtap_ecosystem


@pytest.fixture
def ct():
    return build_crowdtap_ecosystem()


class TestTopology:
    def test_nine_services(self, ct):
        assert len(ct.eco.services) == 9

    def test_delivery_modes_match_fig10(self, ct):
        modes = {
            ("moderation", "main"): "causal",
            ("targeting", "main"): "causal",
            ("ct-mailer", "main"): "causal",
            ("analytics", "main"): "weak",
            ("search", "main"): "weak",
            ("reporting", "main"): "weak",
            ("ct-spree", "main"): "causal",
        }
        for (sub, pub), mode in modes.items():
            assert ct.eco.services[sub].subscriber.app_modes[pub] == mode

    def test_static_checks_pass(self, ct):
        from repro.core.testing import check_ecosystem

        assert check_ecosystem(ct.eco) == []


class TestFlows:
    def test_welcome_mail_on_signup(self, ct):
        ct.signup("ada", "ada@x")
        ct.sync()
        assert {"to": "ada@x", "subject": "welcome"} in ct.outbox

    def test_moderation_decorates_and_mailer_reacts(self, ct):
        ada = ct.signup("ada", "ada@x")
        brand = ct.add_brand("Sony", "electronics and cameras")
        ct.submit_action(ada, brand, "review", text="this is spam honestly")
        ct.sync()
        action = ct.ModeratedAction.all()[0]
        assert action.status == "rejected"
        assert any(m["subject"].endswith("rejected") for m in ct.outbox)

    def test_clean_action_approved(self, ct):
        ada = ct.signup("ada", "ada@x")
        brand = ct.add_brand("Sony", "electronics")
        ct.submit_action(ada, brand, "review", text="love the camera")
        ct.sync()
        assert ct.ModeratedAction.all()[0].status == "approved"

    def test_targeting_builds_segments_from_crawler(self, ct):
        ada = ct.signup("ada", "ada@x")
        ct.sync()
        ct.crawl_profile(ada, likes=["coffee", "cameras"])
        ct.sync()
        member = ct.TargetedMember.find(ada.id)
        assert member.segments == ["likes:cameras", "likes:coffee"]

    def test_segments_reach_spree_through_decorator_chain(self, ct):
        ada = ct.signup("ada", "ada@x")
        ct.sync()
        ct.crawl_profile(ada, likes=["coffee"])
        ct.sync()
        assert ct.members_in_segment("likes:coffee") == ["ada"]

    def test_analytics_aggregates_actions(self, ct):
        ada = ct.signup("ada", "ada@x")
        brand = ct.add_brand("Sony", "x")
        for kind in ["review", "review", "share"]:
            ct.submit_action(ada, brand, kind)
        ct.sync()
        counts = ct.actions_per_kind()
        assert counts == {"review": 2, "share": 1}

    def test_search_engine_full_text(self, ct):
        ct.add_brand("Sony", "cameras and televisions")
        ct.add_brand("AT&T", "phone plans and internet")
        ct.sync()
        assert ct.search_brands("cameras") == ["Sony"]
        assert ct.search_brands("internet") == ["AT&T"]

    def test_reporting_counts(self, ct):
        ada = ct.signup("ada", "ada@x")
        brand = ct.add_brand("Sony", "x")
        ct.submit_action(ada, brand, "review")
        ct.submit_action(ada, brand, "share")
        ct.sync()
        assert ct.engagement_report() == {"review": 1, "share": 1}

    def test_top_members_pipeline(self, ct):
        ada = ct.signup("ada", "ada@x")
        bob = ct.signup("bob", "bob@x")
        brand = ct.add_brand("Sony", "x")
        for _ in range(3):
            ct.submit_action(ada, brand, "review")
        ct.submit_action(bob, brand, "review")
        ct.sync()
        top = ct.top_members_by_actions(limit=1)
        assert top == [{"_id": ada.id, "actions": 3}]

    def test_points_update_propagates_causally(self, ct):
        ada = ct.signup("ada", "ada@x")
        brand = ct.add_brand("Sony", "x")
        ct.submit_action(ada, brand, "review")
        ct.submit_action(ada, brand, "review")
        ct.sync()
        assert ct.TargetedMember.find(ada.id).points == 10


class TestResilience:
    def test_weak_subscribers_survive_message_loss(self, ct):
        """Fig 10's point: analytics (weak) keeps working when messages
        are lost, while causal subscribers would stall."""
        ada = ct.signup("ada", "ada@x")
        brand = ct.add_brand("Sony", "x")
        ct.sync()
        ct.eco.broker.drop_next(9)  # one publish fans out to 9... drop all copies
        ct.submit_action(ada, brand, "review")  # lost everywhere
        ct.submit_action(ada, brand, "share")
        ct.sync()
        # Analytics (weak) processed what arrived.
        assert "share" in ct.actions_per_kind()
