"""The CDC poller: delivery parity with the ORM front-end, stable
``<app>:cdc:<seq>`` uids and dedup, quiescence integration, the flow
shed exemption, and the auditor's transit attribution (docs/cdc.md)."""

from __future__ import annotations

import pytest

from repro.broker import Message
from repro.cdc import PollCrash
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.durability.wal import SimulatedCrash
from repro.errors import CdcError
from repro.orm import Field, Model
from repro.runtime.flow import FlowConfig
from repro.runtime.flow.admission import ADMIT, SHED, QueueFlow
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.workers import WorkerFleet


def build_pipeline(mode="causal"):
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode=mode)

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": mode},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    pub.enable_outbox()
    return eco, pub, sub, PubDoc, SubDoc


def rows_of(model_cls):
    return sorted(
        (
            (row["id"], row.get("name"), row.get("value"))
            for row in model_cls.__mapper__._do_where({}, None, None)
        ),
    )


class TestDeliveryParity:
    @pytest.mark.parametrize("mode", ["weak", "causal", "global"])
    def test_raw_and_orm_writes_land_identically(self, mode):
        """Both front-ends feed one pipeline: after a drain the replica
        holds the union, whatever mix of paths produced it."""
        eco, pub, sub, PubDoc, SubDoc = build_pipeline(mode)
        with pub.controller():
            PubDoc.create(name="orm", value=1)
        raw = pub.raw_session()
        row = raw.insert(PubDoc, {"name": "raw", "value": 2})
        raw.update(PubDoc, row["id"], {"name": "raw", "value": 20})
        with pub.controller():
            PubDoc.create(name="orm-2", value=3)
        eco.drain_all()
        assert rows_of(SubDoc) == rows_of(PubDoc)
        assert eco.cdc.idle()

    def test_raw_delete_replicates(self):
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        raw = pub.raw_session()
        keep = raw.insert(PubDoc, {"name": "keep", "value": 1})
        drop = raw.insert(PubDoc, {"name": "drop", "value": 2})
        eco.drain_all()
        assert len(rows_of(SubDoc)) == 2
        raw.delete(PubDoc, drop["id"])
        eco.drain_all()
        assert rows_of(SubDoc) == [(keep["id"], "keep", 1)]


class TestStableUids:
    def test_uid_derives_from_outbox_seq(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        assert pub.cdc_poller.poll() == 1
        (message,) = sub.subscriber.queue.peek_all()
        assert message.uid == "pub:cdc:1"
        assert message.cdc == 1

    def test_crash_replay_republish_dedups_at_subscriber(self):
        """A rewound cursor (the before-checkpoint crash window) makes
        the poller republish under the same uid; the subscriber's dedup
        window swallows it, so at-least-once tailing applies once."""
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        eco.drain_all()
        pub.cdc_poller.cursor = 0
        assert pub.cdc_poller.poll() == 1  # republished, same uid
        sub.subscriber.drain()
        assert len(rows_of(SubDoc)) == 1


class TestQuiescence:
    def test_drain_all_tails_outboxes(self):
        """A raw write followed immediately by drain_all must land: the
        process is not quiescent while an outbox tail is non-empty."""
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        assert not eco.cdc.idle()
        eco.drain_all()
        assert eco.cdc.idle()
        assert len(rows_of(SubDoc)) == 1

    def test_worker_fleet_idle_requires_empty_outbox(self):
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        with WorkerFleet(eco, workers=2) as fleet:
            assert fleet.wait_until_idle(timeout=10.0)
        assert eco.cdc.idle()
        assert len(rows_of(SubDoc)) == 1


class TestShedExemption:
    def _exhausted_flow(self):
        flow = QueueFlow(
            "q", 10, FlowConfig(), MetricsRegistry(),
            mode_of={"pub": "weak"}.get,
        )
        for _ in range(flow.credits):
            flow.admit(self._message(), flow.low + 1)
        assert flow.credits == 0
        return flow

    @staticmethod
    def _message(cdc=None):
        return Message(
            app="pub",
            operations=[{"operation": "create", "types": ["Doc"], "id": 1,
                         "attributes": {"name": "x"}}],
            dependencies={},
            published_at=0.0,
            cdc=cdc,
        )

    def test_weak_cdc_message_is_never_shed(self):
        """Shedding a CDC message would turn an acknowledged raw write
        into silent divergence: its outbox entry is already durably
        committed, so the graduated zone throttles instead."""
        flow = self._exhausted_flow()
        assert flow.admit(self._message(), flow.low + 1) == SHED
        assert flow.admit(self._message(cdc=7), flow.low + 1) == ADMIT

    def test_cdc_admission_counts_as_throttled(self):
        flow = self._exhausted_flow()
        before = flow.throttled.value
        flow.admit(self._message(cdc=7), flow.low + 1)
        assert flow.throttled.value == before + 1


class TestAuditorTransit:
    def test_outbox_lag_is_transit_not_loss(self):
        """An audit taken mid-tail sees divergence, but the pending
        outbox entry counts as in transit — not the §6.5 signature."""
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        with pub.controller():
            PubDoc.create(name="baseline", value=0)
        sub.subscriber.drain()
        pub.raw_session().insert(PubDoc, {"name": "pending", "value": 1})

        report = sub.audit_replication()
        lag = report.lag["pub"]
        assert lag.outbox_pending == 1
        assert lag.in_transit >= 1
        assert report.divergent_total == 1
        assert report.suspected_loss is False
        assert any("outbox_pending=1" in line
                   for line in report.summary_lines())

        eco.drain_all()
        healed = sub.audit_replication()
        assert healed.in_sync
        assert healed.lag["pub"].outbox_pending == 0


class TestPollCrash:
    def test_unknown_point_rejected(self):
        with pytest.raises(CdcError, match="unknown poller crash point"):
            PollCrash("mid-flight")

    def test_countdown_and_one_shot(self):
        injector = PollCrash("after-publish", after=2)
        injector.fire("before-publish")      # wrong point: no effect
        injector.fire("after-publish")       # 2 -> 1
        with pytest.raises(SimulatedCrash):
            injector.fire("after-publish")
        injector.fire("after-publish")       # fired latch: no re-raise

    def test_before_publish_crash_loses_nothing(self):
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        pub.cdc_poller.injector = PollCrash("before-publish")
        with pytest.raises(SimulatedCrash):
            pub.cdc_poller.poll()
        assert pub.cdc_poller.cursor == 0  # nothing consumed pre-crash
        pub.cdc_poller.injector = None
        eco.drain_all()
        assert len(rows_of(SubDoc)) == 1
