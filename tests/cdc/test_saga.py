"""The saga scenario pack: convergence through both front-ends,
compensation on decline, the INV_SAGA detector, and injected loss
healed by targeted repair (docs/cdc.md, "The saga pack")."""

from __future__ import annotations

from repro.cdc.saga import (
    _rows,
    build_saga_ecosystem,
    check_saga_invariant,
    run_saga,
    run_sagas,
)


class TestSagaConvergence:
    def test_mixed_sagas_balance_and_converge(self):
        saga = build_saga_ecosystem(mode="causal", seed=0)
        outcomes = run_sagas(saga, 6, seed=0, decline_every=3)
        assert len(outcomes) == 6
        assert sum(1 for o in outcomes if not o.approved) == 2
        assert check_saga_invariant(saga) == []
        for service in saga.subscribing_services():
            assert service.audit_replication().in_sync
        assert saga.eco.cdc.idle()

    def test_declined_saga_compensates(self):
        """Decline path: the reservation is released through the same
        raw front-end that took it, and the order cancels via the ORM."""
        saga = build_saga_ecosystem()
        run_saga(saga, index=0, qty=3, approved=False)
        saga.eco.drain_all()
        (reservation,) = _rows(saga.inventory, "Reservation")
        assert reservation["state"] == "released"
        (order_row,) = _rows(saga.order, "Order")
        assert order_row["state"] == "cancelled"
        assert check_saga_invariant(saga) == []

    def test_approved_saga_keeps_reservation(self):
        saga = build_saga_ecosystem()
        run_saga(saga, index=0, qty=2, approved=True)
        saga.eco.drain_all()
        (reservation,) = _rows(saga.inventory, "Reservation")
        assert reservation["state"] == "reserved"
        (order_row,) = _rows(saga.order, "Order")
        assert order_row["state"] == "confirmed"
        assert check_saga_invariant(saga) == []


class TestInvariantDetector:
    def test_missing_compensation_detected(self):
        saga = build_saga_ecosystem()
        run_saga(saga, index=0, qty=3, approved=False)
        saga.eco.drain_all()
        # Corrupt the books underneath everything: flip the released
        # reservation back, bypassing ORM and outbox alike.
        (reservation,) = _rows(saga.inventory, "Reservation")
        model = saga.inventory.registry.get("Reservation")
        model.__mapper__._do_update(reservation["id"], {"state": "reserved"})
        problems = check_saga_invariant(saga)
        assert any("compensation never landed" in p for p in problems)

    def test_quantity_imbalance_detected(self):
        saga = build_saga_ecosystem()
        run_saga(saga, index=0, qty=3, approved=True)
        saga.eco.drain_all()
        (reservation,) = _rows(saga.inventory, "Reservation")
        model = saga.inventory.registry.get("Reservation")
        model.__mapper__._do_update(reservation["id"], {"qty": 4})
        problems = check_saga_invariant(saga)
        assert any("inventory imbalance" in p for p in problems)

    def test_orphan_reservation_detected(self):
        saga = build_saga_ecosystem()
        run_saga(saga, index=0, qty=1, approved=True)
        saga.eco.drain_all()
        (reservation,) = _rows(saga.inventory, "Reservation")
        model = saga.inventory.registry.get("Reservation")
        model.__mapper__._do_update(reservation["id"], {"order_id": 999})
        problems = check_saga_invariant(saga)
        assert any("unknown order" in p for p in problems)
        assert any("no reservation at all" in p for p in problems)


class TestLossHealing:
    def test_injected_loss_heals_via_targeted_repair(self):
        """The §6.5 incident inside a saga workload: one routed message
        lost, one replica diverges, targeted repair converges all three
        services and the books still balance."""
        saga = build_saga_ecosystem()
        run_sagas(saga, 3, seed=1)
        for service in saga.subscribing_services():
            assert service.audit_replication().in_sync

        saga.eco.broker.drop_next(1)
        run_saga(saga, index=99, qty=2, approved=True)
        saga.eco.drain_all()
        diverged = [
            service for service in saga.subscribing_services()
            if not service.audit_replication().in_sync
        ]
        assert diverged

        for service in diverged:
            assert service.repair_replication().verified_in_sync
        saga.eco.drain_all()
        for service in saga.subscribing_services():
            assert service.audit_replication().in_sync
        assert check_saga_invariant(saga) == []
