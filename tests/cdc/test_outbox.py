"""The transactional outbox: atomic raw writes on both engine classes,
commit-order sequencing, and the golden row format (docs/cdc.md).

The row format is a restart contract like the WAL and wire formats:
snapshots carry outbox rows verbatim and a future poller reads them, so
the exact shape is pinned here as a literal dict.
"""

from __future__ import annotations

import json

import pytest

from repro.cdc import (
    OUTBOX_MODEL_NAME,
    OUTBOX_VERSION,
    check_entry_version,
    entry_row,
)
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import CdcError
from repro.orm import Field, Model


def build_pipeline(pub_db=None, mode="causal"):
    """One pub -> sub pipeline with the outbox armed on the publisher."""
    eco = Ecosystem()
    pub = eco.service(
        "pub", database=pub_db or MongoLike("pub-db"), delivery_mode=mode
    )

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    # Local-only model: raw writes to it must not leave outbox entries,
    # mirroring the ORM path where unpublished writes are not intercepted.
    @pub.model(name="Note")
    class Note(Model):
        body = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": mode},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    pub.enable_outbox()
    return eco, pub, sub, PubDoc, SubDoc


def outbox_rows(pub):
    return pub.outbox.mapper._do_where({}, None, None)


class TestGoldenRowFormat:
    def test_row_exact_shape(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        row = pub.raw_session().insert(PubDoc, {"name": "ada", "value": 3})
        (stored,) = outbox_rows(pub)
        entry = dict(stored)
        committed_at = entry.pop("committed_at")
        assert isinstance(committed_at, float)
        assert entry == {
            "id": 1,
            "seq": 1,
            "v": 1,
            "kind": "create",
            "model": "Doc",
            "row_id": row["id"],
            "attributes": json.dumps(
                {"name": "ada", "value": 3}, sort_keys=True
            ),
        }
        # Attributes are canonical JSON (sorted keys): writer and WAL
        # replayer derive identical rows regardless of dict order.
        assert entry["attributes"] == json.dumps(
            json.loads(entry["attributes"]), sort_keys=True
        )
        assert entry_row(stored) == {
            "id": row["id"], "name": "ada", "value": 3,
        }

    def test_sequence_is_monotonic_across_kinds(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        raw = pub.raw_session()
        row = raw.insert(PubDoc, {"name": "a", "value": 1})
        raw.update(PubDoc, row["id"], {"value": 2})
        raw.delete(PubDoc, row["id"])
        entries = sorted(outbox_rows(pub), key=lambda e: e["seq"])
        assert [e["seq"] for e in entries] == [1, 2, 3]
        assert [e["id"] for e in entries] == [1, 2, 3]  # id == seq: PK dedup
        assert [e["kind"] for e in entries] == ["create", "update", "delete"]

    def test_outbox_model_is_registry_bound(self):
        # The registry binding is what makes snapshots capture the
        # outbox with no extra durability code.
        eco, pub, sub, _, _ = build_pipeline()
        assert pub.registry.get(OUTBOX_MODEL_NAME) is pub.outbox.model_cls

    def test_newer_version_refused_legacy_accepted(self):
        with pytest.raises(CdcError, match="newer"):
            check_entry_version({"seq": 4, "v": OUTBOX_VERSION + 1})
        check_entry_version({"seq": 4, "v": OUTBOX_VERSION})
        check_entry_version({"seq": 4})          # legacy: missing v
        check_entry_version({"seq": 4, "v": None})

    def test_poller_refuses_newer_format_rows(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        (entry,) = outbox_rows(pub)
        pub.outbox.mapper._do_update(entry["id"], {"v": OUTBOX_VERSION + 1})
        with pytest.raises(CdcError, match="newer"):
            pub.cdc_poller.poll()
        assert pub.cdc_poller.cursor == 0  # nothing consumed past the refusal


class TestAtomicity:
    def test_transactional_engine_rolls_back_both(self):
        """Relational engine: data write and outbox insert share one
        engine transaction, so a failed append undoes the data write."""
        eco, pub, sub, PubDoc, _ = build_pipeline(
            pub_db=PostgresLike("pub-db")
        )
        assert pub.database.supports_transactions

        def boom():
            raise RuntimeError("seq allocator down")

        pub.outbox._allocate_seq = boom
        with pytest.raises(RuntimeError, match="seq allocator"):
            pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        assert PubDoc.__mapper__._do_where({}, None, None) == []
        assert outbox_rows(pub) == []

    def test_nontransactional_engine_undoes_create(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()  # MongoLike: no txns
        assert not pub.database.supports_transactions

        def boom(kind, model_cls, row):
            raise CdcError("outbox full")

        pub.outbox._append_entry = boom
        with pytest.raises(CdcError, match="outbox full"):
            pub.raw_session().insert(PubDoc, {"name": "a", "value": 1})
        assert PubDoc.__mapper__._do_where({}, None, None) == []
        assert outbox_rows(pub) == []

    def test_nontransactional_engine_restores_prior_on_update(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        raw = pub.raw_session()
        row = raw.insert(PubDoc, {"name": "a", "value": 1})

        def boom(kind, model_cls, written):
            raise CdcError("outbox full")

        pub.outbox._append_entry = boom
        with pytest.raises(CdcError, match="outbox full"):
            raw.update(PubDoc, row["id"], {"value": 99})
        (data,) = PubDoc.__mapper__._do_where({}, None, None)
        assert data["value"] == 1          # prior row restored
        assert len(outbox_rows(pub)) == 1  # only the create's entry

    def test_unpublished_model_skips_outbox(self):
        eco, pub, sub, _, _ = build_pipeline()
        row = pub.raw_session().insert("Note", {"body": "local only"})
        notes = pub.registry.get("Note").__mapper__._do_where({}, None, None)
        assert [note["id"] for note in notes] == [row["id"]]
        assert outbox_rows(pub) == []
        assert eco.cdc.idle()


class TestRawSession:
    def test_resolves_models_by_registry_name(self):
        eco, pub, sub, PubDoc, SubDoc = build_pipeline()
        pub.raw_session().insert("Doc", {"name": "byname", "value": 7})
        eco.drain_all()
        (row,) = SubDoc.__mapper__._do_where({}, None, None)
        assert (row["name"], row["value"]) == ("byname", 7)

    def test_unknown_model_name_raises(self):
        eco, pub, sub, _, _ = build_pipeline()
        with pytest.raises(CdcError, match="no model named"):
            pub.raw_session().insert("Ghost", {"x": 1})

    def test_unknown_kind_raises(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        with pytest.raises(CdcError, match="unknown raw-write kind"):
            pub.outbox.write("upsert", PubDoc, None, {"name": "x"})


class TestSequenceRecovery:
    def test_restore_entry_is_idempotent_and_advances_seq(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        entry = {
            "id": 10, "seq": 10, "v": OUTBOX_VERSION, "kind": "create",
            "model": "Doc", "row_id": 5,
            "attributes": json.dumps({"name": "x", "value": 0},
                                     sort_keys=True),
            "committed_at": 0.0,
        }
        pub.outbox.restore_entry(dict(entry))
        pub.outbox.restore_entry(dict(entry))  # replayed twice: PK dedup
        assert len(outbox_rows(pub)) == 1
        # New raw writes allocate past the replayed tail, never colliding.
        pub.raw_session().insert(PubDoc, {"name": "next", "value": 1})
        assert max(e["seq"] for e in outbox_rows(pub)) == 11

    def test_resync_rederives_next_seq_from_storage(self):
        eco, pub, sub, PubDoc, _ = build_pipeline()
        pub.outbox.mapper._do_insert({
            "id": 42, "seq": 42, "v": OUTBOX_VERSION, "kind": "create",
            "model": "Doc", "row_id": 9,
            "attributes": "{}", "committed_at": 0.0,
        })
        pub.outbox.resync()
        pub.raw_session().insert(PubDoc, {"name": "after", "value": 1})
        assert max(e["seq"] for e in outbox_rows(pub)) == 43
