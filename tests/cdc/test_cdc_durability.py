"""CDC durability: the golden ``obx`` / ``cdc`` WAL records, the
``out`` record's piggybacked cursor, and cursor restore across a
process death mid-tail (docs/cdc.md, "Cursor durability")."""

from __future__ import annotations

import json

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.durability.wal import decode_record
from repro.orm import Field, Model


def build_pipeline(data_dir, mode="causal"):
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode=mode)

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": mode},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    manager = eco.enable_durability(data_dir=str(data_dir))
    pub.enable_outbox()
    return eco, pub, sub, manager, PubDoc, SubDoc


def read_records(manager):
    path = manager.wal.segment_path(1)
    with open(path, "r", encoding="utf-8") as fh:
        return [decode_record(line.strip()) for line in fh if line.strip()]


class TestWALRecordsGolden:
    def test_obx_out_and_cdc_records_on_disk(self, tmp_path):
        eco, pub, sub, manager, PubDoc, _ = build_pipeline(tmp_path)
        row = pub.raw_session().insert(PubDoc, {"name": "ada", "value": 1})
        assert pub.cdc_poller.poll() == 1
        sub.subscriber.drain()
        manager.close()
        records = read_records(manager)

        (obx,) = [rec for rec in records if rec["t"] == "obx"]
        assert set(obx) == {"t", "svc", "e"}
        assert obx["svc"] == "pub"
        entry = dict(obx["e"])
        assert isinstance(entry.pop("committed_at"), float)
        assert entry == {
            "id": 1,
            "seq": 1,
            "v": 1,
            "kind": "create",
            "model": "Doc",
            "row_id": row["id"],
            "attributes": json.dumps(
                {"name": "ada", "value": 1}, sort_keys=True
            ),
        }

        # The publish's out record carries the piggybacked cursor: the
        # cursor advance is atomic with the counter capture, closing
        # the crash window between publish and checkpoint.
        (out,) = [rec for rec in records if rec["t"] == "out"]
        assert set(out) == {"t", "app", "m", "vs", "cur"}
        assert out["cur"] == 1
        assert out["m"]["uid"] == "pub:cdc:1"
        assert out["m"]["cdc"] == 1

        # The explicit batch checkpoint keeps an idle tail's position
        # durable across compaction.
        assert [rec for rec in records if rec["t"] == "cdc"] == [
            {"t": "cdc", "svc": "pub", "cur": 1},
        ]

    def test_orm_writes_carry_no_cursor(self, tmp_path):
        eco, pub, sub, manager, PubDoc, _ = build_pipeline(tmp_path)
        with pub.controller():
            PubDoc.create(name="orm", value=1)
        sub.subscriber.drain()
        manager.close()
        (out,) = [rec for rec in read_records(manager) if rec["t"] == "out"]
        assert "cur" not in out
        assert "cdc" not in out["m"]


class TestRestoreResumesTail:
    def test_death_mid_tail_resumes_without_loss_or_dupes(self, tmp_path):
        """Four raw writes, two tailed, then the process stops existing.
        The restored process resumes the tail at the durable cursor:
        every write lands at the subscriber exactly once."""
        eco_a, pub_a, sub_a, mgr_a, PubDocA, _ = build_pipeline(tmp_path)
        raw = pub_a.raw_session()
        for i in range(4):
            raw.insert(PubDocA, {"name": f"doc-{i}", "value": i})
        assert pub_a.cdc_poller.poll(max_entries=2) == 2
        sub_a.subscriber.drain()
        # No close, no checkpointed shutdown: kill -9 semantics.

        eco_b, pub_b, sub_b, mgr_b, _, SubDocB = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert not report.unrecoverable
        assert mgr_b.cdc_cursors["pub"] == 2
        assert pub_b.cdc_poller.cursor == 2
        assert pub_b.cdc_poller.backlog() == 2  # outbox rows replayed too
        eco_b.drain_all()
        assert pub_b.cdc_poller.idle()
        rows = SubDocB.__mapper__._do_where({}, None, None)
        assert sorted(row["name"] for row in rows) == [
            "doc-0", "doc-1", "doc-2", "doc-3",
        ]
        assert sub_b.audit_replication().in_sync

    def test_new_raw_writes_never_collide_with_replayed_tail(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDocA, _ = build_pipeline(tmp_path)
        raw_a = pub_a.raw_session()
        for i in range(3):
            raw_a.insert(PubDocA, {"name": f"old-{i}", "value": i})
        eco_a.drain_all()

        eco_b, pub_b, sub_b, mgr_b, PubDocB, SubDocB = build_pipeline(tmp_path)
        mgr_b.restore()
        # resync() re-derived the next sequence from the restored rows.
        pub_b.raw_session().insert(PubDocB, {"name": "new", "value": 9})
        seqs = [
            entry["seq"]
            for entry in pub_b.outbox.mapper._do_where({}, None, None)
        ]
        assert sorted(seqs) == [1, 2, 3, 4]
        eco_b.drain_all()
        assert len(SubDocB.__mapper__._do_where({}, None, None)) == 4
        assert sub_b.audit_replication().in_sync

    def test_polled_creates_never_clobber_later_raw_updates(self, tmp_path):
        """An ``out`` record for a CDC message sits at *poll* position in
        the WAL, not commit position: if a raw update committed between
        the create and the poll, replaying the out record's attributes
        onto the publisher row would roll it back to the stale create.
        Publisher rows for CDC messages must restore from the obx
        records alone (which do sit at commit position)."""
        eco_a, pub_a, sub_a, mgr_a, PubDocA, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            PubDocA.create(name="orm-0", value=0)
        raw = pub_a.raw_session()
        rows = [
            raw.insert(PubDocA, {"name": f"raw-{i}", "value": i})
            for i in range(5)
        ]
        raw.update(PubDocA, rows[0]["id"], {"name": "raw-0", "value": 100})
        raw.delete(PubDocA, rows[4]["id"])
        # Poll only the first three creates: their out records land in
        # the WAL *after* the obx records of the update and delete.
        assert pub_a.cdc_poller.poll(max_entries=3) == 3
        sub_a.subscriber.drain()
        mgr_a.wal.sync()
        # kill -9: abandon everything unclosed.

        eco_b, pub_b, sub_b, mgr_b, PubDocB, SubDocB = build_pipeline(tmp_path)
        assert not mgr_b.restore().unrecoverable
        eco_b.drain_all()
        pub_rows = sorted(
            (row["id"], row["name"], row["value"])
            for row in PubDocB.__mapper__._do_where({}, None, None)
        )
        sub_rows = sorted(
            (row["id"], row["name"], row["value"])
            for row in SubDocB.__mapper__._do_where({}, None, None)
        )
        # The update survived replay (value 100, not the create's 0) and
        # the deleted row stayed gone on both sides.
        assert (rows[0]["id"], "raw-0", 100) in pub_rows
        assert all(row[0] != rows[4]["id"] for row in pub_rows)
        assert pub_rows == sub_rows
        assert sub_b.audit_replication().in_sync
        assert eco_b.cdc.idle()
