"""The read path end to end: views maintained in the subscriber apply
path over real replication, cache invalidation riding the stream,
coalescing and group commit preserving the aggregates, restore
rebuilding them, and the INV_VIEW conformance variant."""

import tempfile

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.conformance import (
    INV_VIEW,
    DeliveryChecker,
    ScheduleConfig,
    replay_twice,
    run_schedule,
)
from repro.runtime.flow import FlowConfig
from repro.views import CountView, FeedView, SumView, TopKView


def build_pipeline(mode="causal", flow=None, data_dir=None):
    eco = Ecosystem()
    if flow is not None:
        eco.enable_flow(flow)
    if data_dir is not None:
        eco.enable_durability(data_dir=data_dir, snapshot_every=10_000)
    pub = eco.service(
        "pub", database=MongoLike("pub-db"), delivery_mode=mode
    )

    @pub.model(publish=["author", "score"], name="Post")
    class Post(Model):
        author = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["author", "score"], "mode": mode},
        name="Post",
    )
    class SubPost(Model):
        author = Field(str)
        score = Field(int, default=0)

    views = sub.enable_views()
    views.declare(CountView("posts", "Post"))
    views.declare(SumView("karma", "Post", "score"))
    views.declare(TopKView("top", "Post", "score", k=3))
    views.declare(FeedView("feeds", "Post", "author"))
    return eco, pub, sub, Post


def assert_views_match_recompute(views):
    for spec in views.specs():
        assert views.canonical(spec.name) == views.recompute_canonical(
            spec.name
        ), f"view {spec.name!r} diverged from recomputation"


class TestApplyPathMaintenance:
    def test_creates_updates_deletes_replicate_into_views(self):
        eco, pub, sub, post_cls = build_pipeline()
        posts = []
        with pub.controller():
            for i in range(9):
                posts.append(
                    post_cls.create(author=f"a{i % 3}", score=i)
                )
        sub.subscriber.drain()
        views = sub.views
        assert views.peek("posts") == 9
        assert views.peek("karma") == sum(range(9))
        assert_views_match_recompute(views)

        with pub.controller():
            posts[0].score += 100
            posts[0].save()
            posts[1].destroy()
        sub.subscriber.drain()
        assert views.peek("posts") == 8
        assert views.peek("karma") == sum(range(9)) + 100 - 1
        assert views.read("posts") == 8  # cache-aside read agrees
        assert_views_match_recompute(views)

    def test_cached_read_never_stale_after_applied_write(self):
        eco, pub, sub, post_cls = build_pipeline()
        with pub.controller():
            post = post_cls.create(author="ada", score=1)
        sub.subscriber.drain()
        assert sub.views.read("karma") == 1
        assert sub.views.read("karma") == 1  # warm hit
        with pub.controller():
            post.score = 50
            post.save()
        sub.subscriber.drain()
        # The apply invalidated the view key: this read must miss and
        # see the post-write aggregate, never the cached 1.
        assert sub.views.read("karma") == 50
        assert eco.metrics.value("cache.sub.hits") >= 1

    def test_row_cache_write_through(self):
        eco, pub, sub, post_cls = build_pipeline()
        with pub.controller():
            post = post_cls.create(author="ada", score=3)
        sub.subscriber.drain()
        row = sub.views.read_row("Post", post.id)
        assert row["score"] == 3
        # The apply wrote the row through: the read above was a hit.
        assert eco.metrics.value("cache.sub.hits") >= 1
        with pub.controller():
            post.destroy()
        sub.subscriber.drain()
        assert sub.views.read_row("Post", post.id) is None


class TestCoalescingPreservesViews:
    def test_coalesced_update_storm_lands_exactly(self):
        eco, pub, sub, post_cls = build_pipeline(
            mode="weak", flow=FlowConfig(capacity=64)
        )
        with pub.controller():
            post = post_cls.create(author="ada", score=0)
            for i in range(1, 6):
                post.score = i * 10
                post.save()
        sub.subscriber.drain()
        assert eco.metrics.value("flow.sub.coalesced") >= 1
        # Row-state deltas: the merged message lands the final
        # attributes once, exactly like replaying every update.
        assert sub.views.peek("karma") == 50
        assert sub.views.peek("posts") == 1
        assert_views_match_recompute(sub.views)


class TestBatchedApplyFoldsOnce:
    def test_group_commit_folds_and_invalidates_once(self):
        eco, pub, sub, post_cls = build_pipeline(
            flow=FlowConfig(batch_max=8, throttle_delay=0.0)
        )
        with pub.controller():
            for i in range(4):
                post_cls.create(author="ada", score=i)
        queue = sub.subscriber.queue
        before = sub.views.cache.version("view:posts")
        batch = queue.pop_many(8, timeout=0.0)
        assert len(batch) == 4
        done, retry, errors = sub.subscriber.process_batch(batch)
        assert len(done) == 4 and not retry and not errors
        for message in done:
            queue.ack(message)
        assert eco.metrics.value("views.sub.batch_flushes") == 1
        # One fold for the whole batch: each view key's watermark
        # advanced once, not once per message.
        assert sub.views.cache.version("view:posts") == before + 1
        assert sub.views.peek("posts") == 4
        assert_views_match_recompute(sub.views)


class TestRestoreRebuild:
    def test_kill_restart_rebuilds_views_from_rows(self):
        with tempfile.TemporaryDirectory() as data_dir:
            eco, pub, sub, post_cls = build_pipeline(data_dir=data_dir)
            with pub.controller():
                posts = [
                    post_cls.create(author=f"a{i % 2}", score=i)
                    for i in range(6)
                ]
            sub.subscriber.drain()
            with pub.controller():
                posts[0].destroy()
                posts[1].score = 99
                posts[1].save()
            sub.subscriber.drain()
            before = {
                spec.name: sub.views.canonical(spec.name)
                for spec in sub.views.specs()
            }
            eco.durability.wal.sync()

            eco2, pub2, sub2, _ = build_pipeline(data_dir=data_dir)
            report = eco2.durability.restore()
            assert not report.unrecoverable
            assert eco2.metrics.value("views.sub.rebuilds") == 1
            for name, value in before.items():
                assert sub2.views.canonical(name) == value
            assert_views_match_recompute(sub2.views)
            # The rebuilt cache starts cold but fresh.
            assert sub2.views.read("posts") == sub2.views.peek("posts")


class TestConformanceViews:
    def test_views_schedule_holds_invariants(self):
        result = run_schedule(
            ScheduleConfig(mode="causal", seed=7, views=True, flow=True)
        )
        assert result.ok, [str(v) for v in result.violations]
        assert result.stats["cache_hits"] + result.stats["cache_misses"] > 0

    def test_views_schedule_deterministic(self):
        config = ScheduleConfig(mode="weak", seed=3, views=True, flow=True)
        first, second = replay_twice(config)
        assert first.trace == second.trace

    def test_checker_flags_stale_cache_hit(self):
        _eco, _pub, sub, _post = build_pipeline()
        checker = DeliveryChecker(sub.subscriber)
        checker.on_event(
            1, "w0", "cache.invalidate", {"key": "view:karma", "version": 3}
        )
        checker.on_event(
            2, "r", "cache.read",
            {"key": "view:karma", "version": 2, "hit": True},
        )
        assert [v.invariant for v in checker.violations] == [INV_VIEW]
        # A hit at the frontier is fine.
        checker.on_event(
            3, "r", "cache.read",
            {"key": "view:karma", "version": 3, "hit": True},
        )
        assert len(checker.violations) == 1

    def test_checker_flags_aggregate_divergence_at_finalize(self):
        _eco, pub, sub, post_cls = build_pipeline()
        with pub.controller():
            post_cls.create(author="ada", score=1)
        sub.subscriber.drain()
        checker = DeliveryChecker(sub.subscriber)
        checker.views = sub.views
        assert checker.finalize() == []
        # Corrupt the incremental state: finalize must name INV_VIEW.
        sub.views._states["posts"]["count"] += 1
        violations = checker.finalize()
        assert any(v.invariant == INV_VIEW for v in violations)


class TestBatchAbortDropsBuffer:
    def test_abort_leaves_views_untouched(self):
        _eco, pub, sub, post_cls = build_pipeline()
        with pub.controller():
            post_cls.create(author="ada", score=5)
        sub.subscriber.drain()
        views = sub.views
        views.begin_batch()
        views.on_applied("Post", 999, None, {"id": 999, "score": 1000})
        views.abort_batch()
        assert views.peek("karma") == 5
        assert_views_match_recompute(views)

    def test_nested_batches_fold_on_outermost_commit(self):
        _eco, pub, sub, post_cls = build_pipeline()
        views = sub.views
        views.begin_batch()
        views.begin_batch()
        views.on_applied(
            "Post", 1, None, {"id": 1, "author": "ada", "score": 2}
        )
        views.commit_batch()
        assert views.peek("karma") == 0  # inner commit: still buffered
        views.commit_batch()
        assert views.peek("karma") == 2
