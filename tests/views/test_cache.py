"""The versioned cache's freshness protocol: hit/miss/invalidate
mechanics, the write-through fast path, and the mid-load race where a
stale value may be *stored* but never *served*."""

import threading

from repro.databases.kv import RedisLike
from repro.runtime.metrics import MetricsRegistry
from repro.views.cache import ReplicatedCache


def make_cache():
    metrics = MetricsRegistry()
    return ReplicatedCache("svc", metrics=metrics), metrics


class TestCacheAside:
    def test_miss_fills_then_hits(self):
        cache, _ = make_cache()
        calls = []
        loader = lambda: calls.append(1) or "payload"
        value, hit = cache.read("k", loader)
        assert (value, hit) == ("payload", False)
        value, hit = cache.read("k", lambda: "NEVER")
        assert (value, hit) == ("payload", True)
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_invalidate_forces_reload(self):
        cache, _ = make_cache()
        backing = {"v": "old"}
        cache.read("k", lambda: backing["v"])
        backing["v"] = "new"
        cache.invalidate("k")
        value, hit = cache.read("k", lambda: backing["v"])
        assert (value, hit) == ("new", False)

    def test_write_through_hits_without_loader(self):
        cache, _ = make_cache()
        cache.write_through("k", {"x": 1})
        value, hit = cache.read("k", lambda: 1 / 0)  # loader must not run
        assert hit and value == {"x": 1}

    def test_write_through_supersedes_cached_entry(self):
        cache, _ = make_cache()
        cache.read("k", lambda: "stale")
        cache.write_through("k", "fresh")
        value, hit = cache.read("k", lambda: 1 / 0)
        assert hit and value == "fresh"


class TestMidLoadRace:
    def test_stale_fill_is_stored_but_never_served(self):
        """A write that lands between version capture and the engine
        load makes the fill stale; the *next* read must miss and reload
        — the INV_VIEW freshness guarantee at the unit level."""
        cache, metrics = make_cache()
        backing = {"v": "before"}

        def racing_loader():
            # Simulate the engine read overlapping an applied write:
            # the apply path invalidates while the loader is out.
            snapshot = backing["v"]
            backing["v"] = "after"
            cache.invalidate("k")
            return snapshot

        value, hit = cache.read("k", racing_loader)
        assert (value, hit) == ("before", False)
        assert metrics.value("cache.svc.stale_fills") == 1
        # The stored entry is below the watermark: it must NOT be served.
        value, hit = cache.read("k", lambda: backing["v"])
        assert (value, hit) == ("after", False)
        value, hit = cache.read("k", lambda: 1 / 0)
        assert hit and value == "after"

    def test_concurrent_readers_one_key(self):
        cache, _ = make_cache()
        backing = {"v": 0}
        errors = []

        def writer():
            for i in range(1, 51):
                backing["v"] = i
                cache.invalidate("k")

        def reader():
            last = -1
            for _ in range(100):
                value, _hit = cache.read("k", lambda: backing["v"])
                if value < last:  # served state went backwards
                    errors.append((last, value))
                last = value

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestPlumbing:
    def test_key_builders(self):
        assert ReplicatedCache.row_key("Doc", 7) == "row:Doc:7"
        assert ReplicatedCache.view_key("karma") == "view:karma"

    def test_flush_drops_entries_and_watermarks(self):
        cache, _ = make_cache()
        cache.write_through("k", "v")
        cache.flush()
        assert cache.version("k") == 0
        value, hit = cache.read("k", lambda: "reloaded")
        assert (value, hit) == ("reloaded", False)

    def test_explicit_kv_engine(self):
        kv = RedisLike("shared")
        cache = ReplicatedCache("svc", kv=kv)
        cache.write_through("k", "v")
        assert kv.get("val:k")["value"] == "v"
