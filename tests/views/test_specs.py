"""Unit coverage for the view specs: every incremental `apply` must
land exactly where `recompute` over the final rows lands — including
deletes, field updates that move a row between buckets, and the
order-free canonical projections."""

import random

from repro.views import CountView, FeedView, SumView, TopKView


def drive(spec, transitions):
    """Fold transitions incrementally AND maintain the row table, then
    return (incremental state, recomputed state)."""
    state = spec.initial()
    rows = {}
    for old_row, new_row in transitions:
        spec.apply(state, old_row, new_row)
        if new_row is None:
            rows.pop(old_row["id"], None)
        else:
            rows[new_row["id"]] = new_row
    return state, spec.recompute(list(rows.values()))


class TestCountView:
    def test_create_update_delete(self):
        spec = CountView("n", "Doc")
        state, recomputed = drive(
            spec,
            [
                (None, {"id": 1, "v": 1}),
                (None, {"id": 2, "v": 5}),
                ({"id": 1, "v": 1}, {"id": 1, "v": 9}),  # update: no change
                ({"id": 2, "v": 5}, None),  # delete
            ],
        )
        assert spec.read(state) == 1
        assert spec.read(state) == spec.read(recomputed)

    def test_predicate_counts_bucket_moves(self):
        spec = CountView("hot", "Doc", predicate=lambda row: row["v"] >= 10)
        state, recomputed = drive(
            spec,
            [
                (None, {"id": 1, "v": 3}),
                ({"id": 1, "v": 3}, {"id": 1, "v": 12}),  # enters bucket
                (None, {"id": 2, "v": 20}),
                ({"id": 2, "v": 20}, {"id": 2, "v": 1}),  # leaves bucket
            ],
        )
        assert spec.read(state) == 1
        assert spec.read(state) == spec.read(recomputed)


class TestSumView:
    def test_delta_is_row_state_based(self):
        spec = SumView("s", "Doc", "v")
        # The same final row reached via many intermediate states sums
        # identically — what makes sums safe under coalescing.
        state, recomputed = drive(
            spec,
            [
                (None, {"id": 1, "v": 4}),
                ({"id": 1, "v": 4}, {"id": 1, "v": 100}),
                ({"id": 1, "v": 100}, {"id": 1, "v": 7}),
                (None, {"id": 2, "v": None}),  # missing/None counts as 0
            ],
        )
        assert spec.read(state) == 7
        assert spec.read(state) == spec.read(recomputed)

    def test_delete_subtracts(self):
        spec = SumView("s", "Doc", "v")
        state, recomputed = drive(
            spec,
            [(None, {"id": 1, "v": 5}), ({"id": 1, "v": 5}, None)],
        )
        assert spec.read(state) == 0 == spec.read(recomputed)


class TestTopKView:
    def test_demotion_and_delete_promote_lower_rows(self):
        spec = TopKView("top", "Doc", "v", k=2)
        state, recomputed = drive(
            spec,
            [
                (None, {"id": "a", "v": 10}),
                (None, {"id": "b", "v": 20}),
                (None, {"id": "c", "v": 5}),
                # Demote the leader below everyone: c must surface.
                ({"id": "b", "v": 20}, {"id": "b", "v": 1}),
                # Delete the new leader: b must come back.
                ({"id": "a", "v": 10}, None),
            ],
        )
        assert spec.read(state) == [["c", 5], ["b", 1]]
        assert spec.read(state) == spec.read(recomputed)

    def test_deterministic_tie_break(self):
        spec = TopKView("top", "Doc", "v", k=3)
        rows = [{"id": i, "v": 7} for i in (3, 1, 2)]
        assert spec.read(spec.recompute(rows)) == [[1, 7], [2, 7], [3, 7]]


class TestFeedView:
    def test_read_orders_by_recency_canonical_does_not(self):
        spec = FeedView("feeds", "Doc", "author", limit=2)
        state = spec.initial()
        for i in range(4):
            spec.apply(state, None, {"id": i, "author": "ada"})
        # Newest first, trimmed to the limit at read time.
        assert spec.read(state) == {"ada": [3, 2]}
        # Canonical keeps full membership, order-free: a full-scan
        # recompute (arrival order unknowable) must compare equal.
        rows = [{"id": i, "author": "ada"} for i in (2, 0, 3, 1)]
        assert spec.canonical(state) == spec.canonical(spec.recompute(rows))

    def test_key_move_and_delete(self):
        spec = FeedView("feeds", "Doc", "author")
        state, recomputed = drive(
            spec,
            [
                (None, {"id": 1, "author": "ada"}),
                (None, {"id": 2, "author": "bob"}),
                # Reassign 1 to bob: it must leave ada's feed entirely.
                ({"id": 1, "author": "ada"}, {"id": 1, "author": "bob"}),
                ({"id": 2, "author": "bob"}, None),
            ],
        )
        assert spec.read(state) == {"bob": [1]}
        assert spec.canonical(state) == spec.canonical(recomputed)


class TestRandomizedEquivalence:
    def test_every_spec_matches_recompute_over_random_histories(self):
        rng = random.Random(42)
        specs = [
            CountView("n", "Doc"),
            CountView("hot", "Doc", predicate=lambda row: row["v"] > 50),
            SumView("s", "Doc", "v"),
            TopKView("top", "Doc", "v", k=5),
            FeedView("feeds", "Doc", "author", limit=3),
        ]
        for trial in range(20):
            rows = {}
            transitions = []
            for _ in range(60):
                row_id = rng.randrange(12)
                old = rows.get(row_id)
                if old is not None and rng.random() < 0.2:
                    transitions.append((dict(old), None))
                    del rows[row_id]
                    continue
                new = {
                    "id": row_id,
                    "v": rng.randrange(100),
                    "author": rng.choice(["ada", "bob", "cyd"]),
                }
                transitions.append(
                    (dict(old) if old is not None else None, dict(new))
                )
                rows[row_id] = new
            for spec in specs:
                state = spec.initial()
                for old_row, new_row in transitions:
                    spec.apply(state, old_row, new_row)
                recomputed = spec.recompute(list(rows.values()))
                assert spec.canonical(state) == spec.canonical(recomputed), (
                    f"{spec.name} diverged on trial {trial}"
                )
