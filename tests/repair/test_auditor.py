"""ReplicationAuditor: divergence detection, lag-vs-loss, watermarks."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import SynapseError
from repro.orm import Field, Model
from repro.repair import ReplicationAuditor


@pytest.fixture
def eco():
    return Ecosystem()


def build_pair(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"], name="User")
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    return pub, sub


class TestAudit:
    def test_synced_replicas_audit_clean(self, eco):
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        for i in range(10):
            User.create(name=f"u{i}", score=i)
        sub.subscriber.drain()
        report = ReplicationAuditor(sub).audit()
        assert report.in_sync
        assert report.divergent_total == 0
        assert not report.suspected_loss
        assert report.lag["pub"].in_transit == 0
        assert report.lag["pub"].version_lag == 0

    def test_lost_message_pinpointed(self, eco):
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        users = [User.create(name=f"u{i}") for i in range(10)]
        sub.subscriber.drain()
        eco.broker.drop_next(1)
        users[3].update(score=99)  # lost on the wire
        sub.subscriber.drain()
        report = ReplicationAuditor(sub).audit()
        assert report.divergent_for("pub", "User") == [users[3].id]
        # Queue is idle yet the replica diverges and the version counter
        # never caught up: the §6.5 loss signature, not transit lag.
        assert report.suspected_loss
        assert report.lag["pub"].version_lag > 0

    def test_queued_messages_read_as_transit_lag(self, eco):
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        User.create(name="a")
        # Not drained: the message sits in the queue.
        report = ReplicationAuditor(sub).audit()
        assert report.divergent_total == 1
        assert report.lag["pub"].queued == 1
        assert not report.suspected_loss

    def test_in_flight_messages_read_as_transit_lag(self, eco):
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        User.create(name="a")
        # A worker popped the message but has not acked it yet.
        queue = sub.subscriber.queue
        delivery = queue.pop()
        assert delivery is not None
        report = ReplicationAuditor(sub).audit()
        assert report.lag["pub"].queued == 0
        assert report.lag["pub"].in_flight == 1
        assert not report.suspected_loss
        queue.nack(delivery)

    def test_unknown_publisher_rejected(self, eco):
        pub, sub = build_pair(eco)
        with pytest.raises(SynapseError):
            ReplicationAuditor(sub).audit("nope")

    def test_audit_does_not_perturb_pipeline(self, eco):
        """Audits must not publish messages or record dependencies."""
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        User.create(name="a")
        sub.subscriber.drain()
        published_before = pub.publisher.messages_published
        watermark_before = pub.publisher_version_store.watermark()
        ReplicationAuditor(sub).audit()
        assert pub.publisher.messages_published == published_before
        assert pub.publisher_version_store.watermark() == watermark_before

    def test_audit_metrics_recorded(self, eco):
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        User.create(name="a")
        sub.subscriber.drain()
        ReplicationAuditor(sub).audit()
        snap = eco.metrics.snapshot()
        assert snap["repair.sub.audits"] == 1
        assert snap["repair.sub.divergent_objects"] == 0
        assert snap["repair.sub.audit_time"]["count"] == 1

    def test_audit_traces_digest_and_diff_stages(self, eco):
        pub, sub = build_pair(eco)
        eco.enable_tracing()
        User = pub.registry["User"]
        User.create(name="a")
        sub.subscriber.drain()
        eco.tracer.clear()
        ReplicationAuditor(sub).audit()
        trace = eco.tracer.last()
        assert trace is not None
        assert "audit.digest" in trace.stages()
        assert "audit.merkle_diff" in trace.stages()

    def test_maybe_audit_respects_interval(self, eco):
        pub, sub = build_pair(eco)
        auditor = ReplicationAuditor(sub, interval=3600)
        assert auditor.maybe_audit() is not None
        assert auditor.maybe_audit() is None  # within the interval

    def test_interval_uses_last_run(self, eco):
        pub, sub = build_pair(eco)
        auditor = ReplicationAuditor(sub, interval=0.0)
        assert auditor.maybe_audit() is not None
        assert auditor.maybe_audit() is not None  # zero interval: always


class TestMultiPublisher:
    def test_rows_of_other_publishers_not_flagged(self, eco):
        """Fig 3: a table merging two publishers' rows must not treat the
        other publisher's rows (disjoint id spaces) as divergence."""
        pub_a = eco.service("appA", database=MongoLike("a-db"))

        @pub_a.model(publish=["name"], name="Item")
        class ItemA(Model):
            name = Field(str)

        pub_b = eco.service("appB", database=MongoLike("b-db"))

        @pub_b.model(publish=["name"], name="Item")
        class ItemB(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe=[
            {"from": "appA", "fields": ["name"]},
            {"from": "appB", "fields": ["name"]},
        ], name="Item")
        class SubItem(Model):
            name = Field(str)

        # Burn appB's id 1 so the two publishers' id spaces are disjoint
        # (colliding ids on the same published field are a config error,
        # not something anti-entropy can arbitrate).
        burner = ItemB.create(name="burner")
        burner.destroy()
        ItemA.create(name="from-a")   # appA id 1
        ItemB.create(name="from-b")   # appB id 2
        sub.subscriber.drain()
        report = ReplicationAuditor(sub).audit()
        # Each publisher sees the other's row in the merged table, but
        # neither may claim it as divergent (else repair would delete it).
        assert report.in_sync, [m.divergent_ids for m in report.models]

    def test_disjoint_attribute_publishers_audit_clean(self, eco):
        """Fig 3's other shape: two publishers decorate *different
        attributes* of the same logical objects; per-subscription field
        projections keep their digests independent."""
        pub_a = eco.service("appA", database=MongoLike("a-db"))

        @pub_a.model(publish=["name"], name="Item")
        class ItemA(Model):
            name = Field(str)

        pub_b = eco.service("appB", database=MongoLike("b-db"))

        @pub_b.model(publish=["rating"], name="Item")
        class ItemB(Model):
            rating = Field(int, default=0)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe=[
            {"from": "appA", "fields": ["name"]},
            {"from": "appB", "fields": ["rating"]},
        ], name="Item")
        class SubItem(Model):
            name = Field(str)
            rating = Field(int, default=0)

        ItemA.create(name="thing")   # same id=1 on both publishers
        ItemB.create(rating=5)
        sub.subscriber.drain()
        report = ReplicationAuditor(sub).audit()
        assert report.in_sync, [m.divergent_ids for m in report.models]


class TestServiceSurface:
    def test_service_audit_replication(self, eco):
        pub, sub = build_pair(eco)
        User = pub.registry["User"]
        User.create(name="a")
        sub.subscriber.drain()
        report = sub.audit_replication()
        assert report.in_sync
        assert report.subscriber == "sub"
