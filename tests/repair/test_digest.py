"""Merkle replica digests: alignment, descent, cross-engine hashing."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.databases.search import ElasticsearchLike
from repro.orm import Field, Model
from repro.repair.digest import (
    MerkleTree,
    publisher_model_digest,
    row_digest,
    subscriber_model_digest,
)


class TestRowDigest:
    def test_same_projection_same_digest(self):
        assert row_digest({"a": 1, "b": "x"}) == row_digest({"b": "x", "a": 1})

    def test_different_values_differ(self):
        assert row_digest({"a": 1}) != row_digest({"a": 2})

    def test_engine_representation_normalised(self):
        # Engines may hand back tuples vs lists; JSON canonicalisation
        # makes them hash identically.
        assert row_digest({"tags": (1, 2)}) == row_digest({"tags": [1, 2]})


class TestMerkleTree:
    def test_equal_contents_equal_roots(self):
        a = MerkleTree({i: f"h{i}" for i in range(100)})
        b = MerkleTree({i: f"h{i}" for i in reversed(range(100))})
        assert a.root == b.root
        assert a.diff(b).divergent_ids == []

    def test_diff_finds_changed_missing_and_extra(self):
        a = MerkleTree({1: "a", 2: "b", 3: "c"})
        b = MerkleTree({1: "a", 2: "X", 4: "d"})
        assert sorted(a.diff(b).divergent_ids) == [2, 3, 4]

    def test_descent_work_scales_with_divergence_not_size(self):
        """The point of the Merkle structure: one divergent object in a
        big dataset costs a root-to-leaf walk, not a full scan."""
        big = {i: f"h{i}" for i in range(5000)}
        a = MerkleTree(big, leaves=256)
        changed = dict(big)
        changed[17] = "MUTATED"
        b = MerkleTree(changed, leaves=256)
        diff = a.diff(b)
        assert diff.divergent_ids == [17]
        # Tree has 256 leaves + internal levels; a full compare would be
        # hundreds of nodes. The descent touches one path's fan-outs.
        assert diff.nodes_compared < 40

    def test_identical_roots_compare_one_node(self):
        a = MerkleTree({i: "h" for i in range(50)})
        b = MerkleTree({i: "h" for i in range(50)})
        assert a.diff(b).nodes_compared == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree({1: "a"}, leaves=16).diff(MerkleTree({1: "a"}, leaves=32))

    def test_has(self):
        tree = MerkleTree({1: "a", "doc-9": "b"})
        assert tree.has(1)
        assert tree.has("doc-9")
        assert not tree.has(2)

    def test_empty_trees_are_equal(self):
        assert MerkleTree({}).diff(MerkleTree({})).divergent_ids == []


class TestModelDigests:
    """Digests built through real engines must agree across engines."""

    def _ecosystem(self, sub_db):
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name", "score"], name="User")
        class User(Model):
            name = Field(str)
            score = Field(int, default=0)

        sub = eco.service("sub", database=sub_db)

        @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
                   name="User")
        class SubUser(Model):
            name = Field(str)
            score = Field(int, default=0)

        return eco, pub, sub

    @pytest.mark.parametrize("sub_db_factory", [
        lambda: PostgresLike("sub-pg"),
        lambda: ElasticsearchLike("sub-es"),
        lambda: MongoLike("sub-mongo"),
    ])
    def test_heterogeneous_replicas_hash_identically(self, sub_db_factory):
        eco, pub, sub = self._ecosystem(sub_db_factory())
        User = pub.registry["User"]
        for i in range(10):
            User.create(name=f"u{i}", score=i)
        sub.subscriber.drain()
        spec = sub.subscriber.specs[("pub", "User")]
        pub_digest = publisher_model_digest(pub, "User",
                                            remote_fields=list(spec.fields))
        sub_digest = subscriber_model_digest(sub, spec)
        assert pub_digest.root == sub_digest.root
        assert pub_digest.divergent_ids(sub_digest).divergent_ids == []

    def test_local_mutation_changes_subscriber_digest(self):
        eco, pub, sub = self._ecosystem(PostgresLike("sub-pg"))
        User = pub.registry["User"]
        user = User.create(name="a", score=1)
        sub.subscriber.drain()
        spec = sub.subscriber.specs[("pub", "User")]
        # Corrupt the subscriber replica behind Synapse's back.
        sub.registry["User"].__mapper__._do_update(user.id, {"score": 999})
        pub_digest = publisher_model_digest(pub, "User",
                                            remote_fields=list(spec.fields))
        sub_digest = subscriber_model_digest(sub, spec)
        assert pub_digest.root != sub_digest.root
        assert pub_digest.divergent_ids(sub_digest).divergent_ids == [user.id]

    def test_renamed_fields_hash_against_remote_names(self):
        """`fields: {remote: local}` subscriptions compare on the
        publisher-side attribute names."""
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name"], name="User")
        class User(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": {"name": "title"}},
                   name="User")
        class SubUser(Model):
            title = Field(str)

        User.create(name="ada")
        sub.subscriber.drain()
        spec = sub.subscriber.specs[("pub", "User")]
        pub_digest = publisher_model_digest(pub, "User",
                                            remote_fields=list(spec.fields))
        sub_digest = subscriber_model_digest(sub, spec)
        assert pub_digest.fields == sub_digest.fields == ["name"]
        assert pub_digest.root == sub_digest.root

    def test_observer_has_no_digest(self):
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name"], name="User")
        class User(Model):
            name = Field(str)

        sub = eco.service("sub")

        @sub.model(subscribe={"from": "pub", "fields": ["name"]},
                   observer=True, name="User")
        class SubUser(Model):
            name = Field(str)

        spec = sub.subscriber.specs[("pub", "User")]
        assert subscriber_model_digest(sub, spec) is None
