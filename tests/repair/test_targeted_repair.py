"""Targeted repair: the §6.5 incident healed in O(divergence).

The acceptance scenario: N write-messages are lost under causal
delivery, wedging the subscriber (follow-up messages wait forever for
the lost counter increments). The auditor detects exactly the divergent
objects; targeted repair re-publishes only those and fast-forwards their
dependency counters — replicas end digest-equal with the queue intact:
no decommission, no full re-bootstrap.
"""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.repair import ReplicationAuditor, repair_subscriber


@pytest.fixture
def eco():
    return Ecosystem()


def build_pair(eco, objects=20):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "score"], name="User")
    class User(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "score"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        score = Field(int, default=0)

    users = [User.create(name=f"u{i}", score=i) for i in range(objects)]
    sub.subscriber.drain()
    return pub, sub, users


class TestLossRepair:
    def test_lost_messages_healed_without_decommission_or_bootstrap(self, eco):
        """The acceptance criterion end to end."""
        pub, sub, users = build_pair(eco, objects=30)
        lost = users[5:8]  # N = 3

        eco.broker.drop_next(len(lost))
        for user in lost:
            user.update(score=user.score + 1000)   # lost on the wire
        # Follow-up writes to the same objects wedge the causal queue:
        # their messages wait for the lost increments (§6.5 deadlock).
        for user in lost:
            user.update(score=user.score + 1000)
        sub.subscriber.drain()
        SubUser = sub.registry["User"]
        assert SubUser.find(lost[0].id).score == 5  # still the old value
        assert len(sub.subscriber.queue) == len(lost)

        # 1. Detection: exactly the divergent objects, nothing else.
        report = ReplicationAuditor(sub).audit()
        assert sorted(report.divergent_for("pub", "User")) == \
            sorted(u.id for u in lost)

        # 2. Repair: targeted re-publish heals data AND counters.
        result = repair_subscriber(sub, report=report)
        assert result.objects_repaired == len(lost)
        assert result.verified_in_sync
        for user in lost:
            assert SubUser.find(user.id).score == user.score

        # 3. No heavyweight §6.5 remedy was used: the queue survived
        # (never decommissioned) and drained completely.
        stats = eco.broker.queue_stats("sub")["sub"]
        assert stats["decommissioned"] == 0
        assert stats["queued"] == 0 and stats["in_flight"] == 0
        assert not sub.bootstrap_active

    def test_repair_cost_scales_with_divergence_not_dataset(self, eco):
        """Only the divergent objects are re-published."""
        pub, sub, users = build_pair(eco, objects=50)
        eco.broker.drop_next(1)
        users[10].update(score=9999)
        sub.subscriber.drain()
        result = repair_subscriber(sub)
        assert result.objects_repaired == 1
        assert result.messages_published == 1
        snap = eco.metrics.snapshot()
        assert snap["repair.pub.republished"] == 1
        # The subscriber applied exactly one repaired object, not 50.
        assert snap["repair.sub.applied_objects"] == 1

    def test_live_traffic_flows_after_repair(self, eco):
        """Repair must leave the ordinary causal pipeline working."""
        pub, sub, users = build_pair(eco, objects=10)
        eco.broker.drop_next(1)
        users[0].update(score=111)
        sub.subscriber.drain()
        repair_subscriber(sub)
        users[0].update(score=222)   # ordinary post-repair traffic
        users[3].update(score=333)
        sub.subscriber.drain()
        SubUser = sub.registry["User"]
        assert SubUser.find(users[0].id).score == 222
        assert SubUser.find(users[3].id).score == 333
        assert ReplicationAuditor(sub).audit().in_sync

    def test_ghost_rows_repaired_with_deletes(self, eco):
        """A lost delete-message leaves a subscriber-side ghost; repair
        removes it instead of re-bootstrapping."""
        pub, sub, users = build_pair(eco, objects=10)
        ghost_id = users[4].id
        eco.broker.drop_next(1)
        users[4].destroy()           # the delete never arrives
        sub.subscriber.drain()
        SubUser = sub.registry["User"]
        assert SubUser.__mapper__.find(ghost_id) is not None  # ghost
        result = repair_subscriber(sub)
        assert result.deletes_published == 1
        assert result.verified_in_sync
        assert SubUser.__mapper__.find(ghost_id) is None

    def test_repair_of_synced_replicas_is_a_noop(self, eco):
        pub, sub, users = build_pair(eco, objects=5)
        result = repair_subscriber(sub)
        assert result.objects_repaired == 0
        assert result.messages_published == 0
        assert result.verified_in_sync

    def test_repair_messages_are_flagged_and_versioned(self, eco):
        """Repair traffic is ordinary versioned pub/sub traffic."""
        pub, sub, users = build_pair(eco, objects=5)
        eco.broker.drop_next(1)
        users[2].update(score=777)
        sub.subscriber.drain()

        seen = []
        original_publish = eco.broker.publish

        def spy(message):
            seen.append(message)
            original_publish(message)

        eco.broker.publish = spy
        repair_subscriber(sub)
        repair_messages = [m for m in seen if m.repair]
        assert len(repair_messages) == 1
        message = repair_messages[0]
        assert message.dependencies           # carries version counters
        assert message.generation == pub.current_generation()
        # Wire round trip preserves the flag.
        assert message.copy().repair is True

    def test_batching_splits_large_divergence(self, eco):
        pub, sub, users = build_pair(eco, objects=12)
        eco.broker.drop_next(10)
        for user in users[:10]:
            user.update(score=user.score + 500)
        sub.subscriber.drain()
        result = repair_subscriber(sub, batch_size=4)
        assert result.objects_repaired == 10
        assert result.messages_published == 3  # ceil(10/4)
        assert result.verified_in_sync

    def test_service_repair_replication_surface(self, eco):
        pub, sub, users = build_pair(eco, objects=5)
        eco.broker.drop_next(1)
        users[1].update(score=42)
        sub.subscriber.drain()
        result = sub.repair_replication()
        assert result.verified_in_sync
        assert sub.registry["User"].find(users[1].id).score == 42


class TestRepairVsBootstrapSemantics:
    def test_corrupted_subscriber_row_repaired_in_place(self, eco):
        """Divergence need not come from message loss: a subscriber-side
        corruption (manual DB edit, bad migration) is found and fixed."""
        pub, sub, users = build_pair(eco, objects=8)
        SubUser = sub.registry["User"]
        SubUser.__mapper__._do_update(users[6].id, {"name": "corrupted"})
        report = ReplicationAuditor(sub).audit()
        assert report.divergent_for("pub", "User") == [users[6].id]
        result = repair_subscriber(sub, report=report)
        assert result.verified_in_sync
        assert SubUser.find(users[6].id).name == users[6].name

    def test_stale_repair_discarded_fresh_kept(self, eco):
        """Repair applies with fresh-or-discard semantics: if the live
        pipeline already advanced an object past the audit snapshot, the
        slower repair message must not regress it."""
        pub, sub, users = build_pair(eco, objects=5)
        eco.broker.drop_next(1)
        users[0].update(score=100)
        sub.subscriber.drain()
        report = ReplicationAuditor(sub).audit()
        # Between audit and repair, the object moves on and replicates.
        users[0].update(score=200)
        sub.subscriber.drain()

        # drain() above is wedged (the 100-update was lost), so the 200
        # message is still queued; repair both heals and un-wedges.
        result = repair_subscriber(sub, report=report)
        assert result.verified_in_sync
        assert sub.registry["User"].find(users[0].id).score == 200
