"""Delivery-semantics integration tests (§3.2, §4.2, Fig 8)."""


from repro.core import Ecosystem
from repro.core.delivery import GLOBAL_OBJECT
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import BelongsTo, Field, Model


def build_social_publisher(eco, mode="causal"):
    """The Fig 8 publisher: users, posts, comments."""
    pub = eco.service("pub", database=PostgresLike("pub-db"), delivery_mode=mode)

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    @pub.model(publish=["author_id", "body"])
    class Post(Model):
        body = Field(str)
        author = BelongsTo("User")

    @pub.model(publish=["post_id", "author_id", "body"])
    class Comment(Model):
        body = Field(str)
        post = BelongsTo("Post")
        author = BelongsTo("User")

    return pub, User, Post, Comment


def build_social_subscriber(eco, name="sub", mode=None):
    sub = eco.service(name, database=MongoLike(f"{name}-db"))
    spec_mode = {} if mode is None else {"mode": mode}

    @sub.model(subscribe={"from": "pub", "fields": ["name"], **spec_mode})
    class User(Model):
        name = Field(str)

    @sub.model(subscribe={"from": "pub", "fields": ["author_id", "body"], **spec_mode})
    class Post(Model):
        body = Field(str)
        author = BelongsTo("User")

    @sub.model(
        subscribe={
            "from": "pub",
            "fields": ["post_id", "author_id", "body"],
            **spec_mode,
        }
    )
    class Comment(Model):
        body = Field(str)
        post = BelongsTo("Post")
        author = BelongsTo("User")

    return sub, User, Post, Comment


def run_fig8_trace(pub, User, Post, Comment):
    """The exact 4-controller interaction of Fig 8(a)."""
    user1 = User.create(name="user1")
    user2 = User.create(name="user2")
    with pub.controller(user=user1):
        post = Post.create(author_id=user1.id, body="helo")
    with pub.controller(user=user2):
        post_seen = Post.find(post.id)
        Comment.create(post_id=post_seen.id, author_id=user2.id,
                       body="you have a typo")
    with pub.controller(user=user1):
        post_seen = Post.find(post.id)
        Comment.create(post_id=post_seen.id, author_id=user1.id,
                       body="thanks for noticing")
    with pub.controller(user=user1):
        post_again = Post.find(post.id)
        post_again.update(body="hello")
    return post


class TestFig8Dependencies:
    def test_message_dependency_graph(self):
        """M2/M3 depend on M1, M4 depends on all prior (Fig 8c)."""
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        queue = eco.broker.bind("probe", "pub")
        run_fig8_trace(pub, User, Post, Comment)

        messages = []
        while True:
            msg = queue.pop()
            if msg is None:
                break
            messages.append(msg)
        # 2 user creations + the four Fig 8 writes.
        assert len(messages) == 6
        m1, m2, m3, m4 = messages[2:]
        post_dep = "pub/posts/id/1"
        u1_dep = "pub/users/id/1"
        u2_dep = "pub/users/id/2"
        # W1: creating the post in user1's session.
        assert m1.dependencies[post_dep] == 0
        assert m1.dependencies[u1_dep] == 1  # user1 already created once
        # W2: comment by user2, read dep on the post.
        assert m2.dependencies[post_dep] == 1
        assert m2.dependencies["pub/comments/id/1"] == 0
        assert m2.dependencies[u2_dep] == 1
        # W3: comment by user1, read dep on the post.
        assert m3.dependencies[post_dep] == 1
        assert m3.dependencies["pub/comments/id/2"] == 0
        assert m3.dependencies[u1_dep] == 2
        # W4: post update serialises after everything touching the post.
        assert m4.dependencies[post_dep] == 3
        assert m4.dependencies[u1_dep] == 3

    def test_causal_subscriber_blocks_until_dependency_met(self):
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        sub, SUser, SPost, SComment = build_social_subscriber(eco)
        queue = sub.subscriber.queue

        user = User.create(name="u")
        with pub.controller(user=user):
            post = Post.create(author_id=user.id, body="first")
        with pub.controller(user=user):
            Post.find(post.id)
            Comment.create(post_id=post.id, author_id=user.id, body="c")

        # Drop the user-creation + post-creation messages from the queue
        # by popping them, keeping only the comment message.
        first = queue.pop()
        second = queue.pop()
        comment_msg = queue.pop()
        assert comment_msg.operations[0]["types"][0] == "Comment"
        # Comment cannot process: its post/user deps are unmet.
        assert not sub.subscriber.process_message(comment_msg)
        # Process prerequisites, then the comment goes through.
        assert sub.subscriber.process_message(first)
        assert sub.subscriber.process_message(second)
        assert sub.subscriber.process_message(comment_msg)
        assert SComment.count() == 1

    def test_out_of_order_queue_converges_under_causal(self):
        """Even if the fabric reorders, drain applies causally."""
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        sub, SUser, SPost, SComment = build_social_subscriber(eco)
        run_fig8_trace(pub, User, Post, Comment)
        # Shuffle the queue by popping everything and nacking in reverse.
        queue = sub.subscriber.queue
        messages = []
        while True:
            msg = queue.pop()
            if msg is None:
                break
            messages.append(msg)
        for msg in messages:  # nack in original order puts them reversed
            queue.nack(msg)
        sub.subscriber.drain()
        assert SPost.find(1).body == "hello"
        assert SComment.count() == 2


class TestUserSessionSerialisation:
    def test_same_user_writes_serialise(self):
        """Writes in two controllers of one user chain through the user
        object's dependency (§4.2)."""
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        queue = eco.broker.bind("probe", "pub")
        user = User.create(name="u")
        queue.pop()
        with pub.controller(user=user):
            Post.create(author_id=user.id, body="one")
        with pub.controller(user=user):
            Post.create(author_id=user.id, body="two")
        m1 = queue.pop()
        m2 = queue.pop()
        user_dep = "pub/users/id/1"
        # Second post's user-dep version reflects the first write.
        assert m2.dependencies[user_dep] == m1.dependencies[user_dep] + 1

    def test_controller_write_chaining(self):
        """Within one controller, update N+1 read-depends on update N."""
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        queue = eco.broker.bind("probe", "pub")
        with pub.controller():
            p1 = Post.create(body="a")
            p2 = Post.create(body="b")
        queue.pop()
        m2 = queue.pop()
        # p2's message carries a read dep on p1 (the chained write).
        assert m2.dependencies["pub/posts/id/1"] == 1
        assert m2.dependencies["pub/posts/id/2"] == 0


class TestGlobalMode:
    def test_global_publisher_adds_global_object(self):
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco, mode="global")
        queue = eco.broker.bind("probe", "pub")
        User.create(name="a")
        User.create(name="b")
        m1, m2 = queue.pop(), queue.pop()
        assert m1.dependencies[GLOBAL_OBJECT] == 0
        assert m2.dependencies[GLOBAL_OBJECT] == 1

    def test_global_subscriber_fully_serialises(self):
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco, mode="global")
        sub, SUser, *_ = build_social_subscriber(eco, mode="global")
        for i in range(5):
            User.create(name=f"u{i}")
        assert sub.subscriber.drain() == 5
        assert SUser.count() == 5

    def test_causal_subscriber_of_global_publisher_ignores_global_object(self):
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco, mode="global")
        sub, SUser, *_ = build_social_subscriber(eco, mode="causal")
        User.create(name="a")
        queue = sub.subscriber.queue
        m1 = queue.pop()
        User.create(name="b")
        m2 = queue.pop()
        # Process out of order: causal ignores the global chain between
        # unrelated users, so m2 can go first.
        assert sub.subscriber.process_message(m2)
        assert sub.subscriber.process_message(m1)
        assert SUser.count() == 2


class TestWeakMode:
    def test_weak_subscriber_applies_latest_and_discards_stale(self):
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco, mode="causal")
        sub, SUser, *_ = build_social_subscriber(eco, mode="weak")
        user = User.create(name="v1")
        user.update(name="v2")
        user.update(name="v3")
        queue = sub.subscriber.queue
        m1, m2, m3 = queue.pop(), queue.pop(), queue.pop()
        # Deliver out of order: latest first.
        assert sub.subscriber.process_message(m3)
        assert SUser.find(user.id).name == "v3"
        # Stale updates are discarded, not applied.
        assert sub.subscriber.process_message(m1)
        assert sub.subscriber.process_message(m2)
        assert SUser.find(user.id).name == "v3"
        assert sub.subscriber.discarded_stale == 2

    def test_weak_subscriber_tolerates_message_loss(self):
        """The §6.5 scenario: weak subscribers keep making progress."""
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        sub, SUser, *_ = build_social_subscriber(eco, mode="weak")
        user = User.create(name="v1")
        eco.broker.drop_next(1)
        user.update(name="v2")  # lost in transit
        user.update(name="v3")
        sub.subscriber.drain()
        assert SUser.find(user.id).name == "v3"

    def test_causal_subscriber_stalls_on_message_loss(self):
        """...while causal subscribers deadlock on the missing dep."""
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco)
        sub, SUser, *_ = build_social_subscriber(eco, mode="causal")
        user = User.create(name="v1")
        eco.broker.drop_next(1)
        user.update(name="v2")  # lost
        user.update(name="v3")
        sub.subscriber.drain()
        assert SUser.find(user.id).name == "v1"  # stuck pre-loss
        stuck = sub.subscriber.stuck_dependencies()
        assert stuck  # diagnosable deadlock

    def test_weak_publisher_messages_have_single_dependency(self):
        eco = Ecosystem()
        pub, User, Post, Comment = build_social_publisher(eco, mode="weak")
        queue = eco.broker.bind("probe", "pub")
        user = User.create(name="u")
        with pub.controller(user=user):
            Post.create(author_id=user.id, body="x")
        queue.pop()
        m2 = queue.pop()
        # Weak publisher: only the object's own write dep, no user dep.
        assert list(m2.dependencies) == ["pub/posts/id/1"]
