"""Coverage for the smaller core modules: delivery, dependencies,
marshal, tools, clock, fault plans."""

import pytest

from repro.clock import Clock, VirtualClock
from repro.core import Ecosystem
from repro.core.delivery import (
    CAUSAL,
    GLOBAL,
    GLOBAL_OBJECT,
    WEAK,
    check_subscription_mode,
    effective_dependencies,
    rank,
    validate_mode,
)
from repro.core.dependencies import ControllerContext, dep_name
from repro.core.marshal import marshal_attributes, marshal_operation
from repro.core.tools import describe_ecosystem, to_dot
from repro.databases.base import FaultPlan
from repro.databases.document import MongoLike
from repro.errors import DeliveryModeError, FaultInjected
from repro.orm import Field, Model, VirtualField, bind_model


class TestDeliveryModes:
    def test_ranks(self):
        assert rank(WEAK) < rank(CAUSAL) < rank(GLOBAL)

    def test_validate_mode_rejects_unknown(self):
        with pytest.raises(DeliveryModeError):
            validate_mode("eventual")

    def test_subscription_mode_check(self):
        check_subscription_mode(WEAK, GLOBAL)
        check_subscription_mode(CAUSAL, CAUSAL)
        with pytest.raises(DeliveryModeError):
            check_subscription_mode(GLOBAL, CAUSAL)

    def test_effective_dependencies_weakening(self):
        deps = {GLOBAL_OBJECT: 5, "app/users/id/1": 2, "app/posts/id/9": 3}
        assert effective_dependencies(deps, GLOBAL, set()) == deps
        causal = effective_dependencies(deps, CAUSAL, set())
        assert GLOBAL_OBJECT not in causal and len(causal) == 2
        weak = effective_dependencies(deps, WEAK, {"app/posts/id/9"})
        assert weak == {"app/posts/id/9": 3}


class TestControllerContext:
    def make(self):
        eco = Ecosystem()
        service = eco.service("svc", database=MongoLike("m"))
        return service

    def test_read_dedup(self):
        service = self.make()
        ctx = ControllerContext(service)
        ctx.record_local_read("a")
        ctx.record_local_read("a")
        ctx.record_local_read("b")
        assert ctx.read_deps == ["a", "b"]

    def test_external_reads_keep_max_version(self):
        ctx = ControllerContext(self.make())
        ctx.record_external_read("x", 3)
        ctx.record_external_read("x", 1)
        ctx.record_external_read("x", 7)
        assert ctx.external_deps == {"x": 7}

    def test_user_dep(self):
        service = self.make()

        @service.model()
        class User(Model):
            name = Field(str)

        user = User.create(name="a")
        ctx = ControllerContext(service, user=user)
        assert ctx.user_dep == f"svc/users/id/{user.id}"
        assert ControllerContext(service).user_dep is None

    def test_explicit_deps(self):
        service = self.make()

        @service.model()
        class Thing(Model):
            name = Field(str)

        thing = Thing.create(name="t")
        ctx = ControllerContext(service)
        ctx.add_read_deps(thing)
        ctx.add_write_deps(thing)
        assert ctx.read_deps == [f"svc/things/id/{thing.id}"]
        assert ctx.extra_write_deps == [f"svc/things/id/{thing.id}"]

    def test_dep_name_format(self):
        assert dep_name("pub3", "users", 100) == "pub3/users/id/100"


class TestMarshal:
    def test_virtual_attribute_marshalling(self):
        class Profile(Model):
            raw = Field(str)
            loud = VirtualField()

            def loud_get(self):
                return (self.raw or "").upper()

        bind_model(Profile, MongoLike("m"))
        attrs = marshal_attributes(Profile, {"id": 1, "raw": "hi"}, ["raw", "loud"])
        assert attrs == {"raw": "hi", "loud": "HI"}

    def test_unknown_field_rejected(self):
        class Thing(Model):
            a = Field(int)

        bind_model(Thing, MongoLike("m"))
        with pytest.raises(KeyError):
            marshal_attributes(Thing, {"id": 1}, ["ghost"])

    def test_delete_operations_include_attributes(self):
        class Thing(Model):
            a = Field(int)

        bind_model(Thing, MongoLike("m"))
        op = marshal_operation("delete", Thing, {"id": 3, "a": 7}, ["a"])
        assert op["operation"] == "delete"
        assert op["id"] == 3
        assert op["attributes"] == {"a": 7}


class TestTools:
    def build(self):
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("p"))

        @pub.model(publish=["name"])
        class User(Model):
            name = Field(str)

        sub = eco.service("sub", database=MongoLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"],
                              "mode": "weak"}, name="User")
        class SubUser(Model):
            name = Field(str)

        return eco

    def test_describe(self):
        text = describe_ecosystem(self.build())
        assert "pub [mongodb]" in text
        assert "publishes User(name) [causal]" in text
        assert "subscribes pub/User(name) [weak]" in text

    def test_dot_styles_by_mode(self):
        dot = to_dot(self.build())
        assert '"pub" -> "sub" [style=dashed];' in dot
        assert dot.startswith("digraph synapse {")


class TestClocks:
    def test_virtual_clock_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(1.5)
        assert clock.now() == 1.5
        assert clock.monotonic() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_wall_clock_monotonic(self):
        clock = Clock()
        a = clock.monotonic()
        b = clock.monotonic()
        assert b >= a


class TestFaultPlan:
    def test_fail_next_writes(self):
        plan = FaultPlan(fail_next_writes=2)
        with pytest.raises(FaultInjected):
            plan.check_write()
        with pytest.raises(FaultInjected):
            plan.check_write()
        plan.check_write()  # budget exhausted

    def test_down_blocks_reads_and_writes(self):
        plan = FaultPlan(down=True)
        with pytest.raises(FaultInjected):
            plan.check_read()
        with pytest.raises(FaultInjected):
            plan.check_write()

    def test_engine_fault_injection(self):
        db = MongoLike("m")
        db.faults.fail_next_writes = 1
        with pytest.raises(FaultInjected):
            db.insert_one("c", {"a": 1})
        db.insert_one("c", {"a": 1})
        assert db.count("c") == 1
