"""Sampled always-on tracing: deterministic head-based decisions,
exemplar attachment through the live pipeline, and trace release."""

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.tracing import MARK_ACKED, Tracer


def build(eco):
    pub = eco.service("pub", database=MongoLike("p"))

    @pub.model(publish=["name"], name="User")
    class User(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("s"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    return pub, sub, pub.registry["User"]


class TestSamplingDecision:
    def test_same_seed_and_rate_give_identical_sampled_set(self):
        uids = [f"pub:{i}" for i in range(2000)]
        a = Tracer(sample_rate=0.1, seed=42)
        b = Tracer(sample_rate=0.1, seed=42)
        sampled_a = {uid for uid in uids if a.sampled(uid)}
        sampled_b = {uid for uid in uids if b.sampled(uid)}
        assert sampled_a == sampled_b
        assert 0 < len(sampled_a) < len(uids)

    def test_different_seed_changes_the_set(self):
        uids = [f"pub:{i}" for i in range(2000)]
        a = {u for u in uids if Tracer(sample_rate=0.1, seed=1).sampled(u)}
        b = {u for u in uids if Tracer(sample_rate=0.1, seed=2).sampled(u)}
        assert a != b

    def test_rate_edges(self):
        assert Tracer(sample_rate=1.0).sampled("anything")
        assert not Tracer(sample_rate=0.0).sampled("anything")

    def test_rate_roughly_matches_fraction(self):
        uids = [f"pub:{i}" for i in range(10_000)]
        tracer = Tracer(sample_rate=0.25, seed=0)
        fraction = sum(1 for u in uids if tracer.sampled(u)) / len(uids)
        assert 0.2 < fraction < 0.3

    def test_enable_validates_rate(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer().enable(sample_rate=1.5)


class TestSampledPipeline:
    def test_partial_rate_traces_only_sampled_messages(self):
        eco = Ecosystem()
        pub, sub, User = build(eco)
        eco.enable_tracing(sample_rate=0.3, seed=9)
        probe = eco.broker.bind("probe", "pub")
        with pub.controller():
            for i in range(40):
                User.create(name=f"u{i}")
        tracer = eco.tracer
        carried = {m.uid for m in probe.peek_all() if m.trace is not None}
        expected = {m.uid for m in probe.peek_all() if tracer.sampled(m.uid)}
        assert carried == expected
        assert 0 < len(carried) < 40
        sub.subscriber.drain()
        finished = {t.trace_id for t in tracer.finished()}
        # Traces adopt the message uid as their id, so the finished set
        # is exactly the sampled uid set.
        assert finished == expected

    def test_zero_rate_costs_no_subscriber_side_traces(self):
        eco = Ecosystem()
        pub, sub, User = build(eco)
        eco.enable_tracing(sample_rate=0.0)
        with pub.controller():
            User.create(name="ada")
        sub.subscriber.drain()
        assert eco.tracer.finished() == []

    def test_trace_released_from_message_after_ack(self):
        eco = Ecosystem()
        pub, sub, User = build(eco)
        eco.enable_tracing()
        with pub.controller():
            User.create(name="ada")
        queue = sub.subscriber.queue
        message = queue.pop()
        assert message.trace is not None
        assert sub.subscriber.process_message(message)
        queue.ack(message)
        # The finished trace lives on in the tracer (with its ack mark);
        # the message itself no longer pins it.
        assert message.trace is None
        trace = eco.tracer.last()
        assert trace is not None
        assert MARK_ACKED in trace.marks

    def test_finished_traces_flow_to_flight_recorder_sink(self):
        eco = Ecosystem()
        pub, sub, User = build(eco)
        eco.enable_tracing()
        with pub.controller():
            for i in range(3):
                User.create(name=f"u{i}")
        sub.subscriber.drain()
        recorded = eco.recorder.traces()
        assert len(recorded) == 3
        assert [t.trace_id for t in recorded] == [
            t.trace_id for t in eco.tracer.finished()
        ]


class TestPipelineExemplars:
    def test_slow_apply_links_exemplar_to_offending_message(self):
        eco = Ecosystem()
        pub, sub, User = build(eco)
        eco.enable_tracing()
        # Arm the apply histogram so every observation is "slow".
        sub.subscriber.apply_time.exemplar_threshold = -1.0
        with pub.controller():
            User.create(name="ada")
        probe_uids = {m.uid for m in sub.subscriber.queue.peek_all()}
        sub.subscriber.drain()
        exemplars = sub.subscriber.apply_time.exemplars()
        assert len(exemplars) == 1
        assert exemplars[0]["trace_id"] in probe_uids
