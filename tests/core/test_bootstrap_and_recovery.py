"""Bootstrapping, failure recovery and the §6.5 production incidents."""

import pytest

from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber, recover_subscriber_version_store
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import QueueDecommissioned
from repro.orm import Field, Model, after_create


@pytest.fixture
def eco():
    return Ecosystem(queue_limit=50)


def make_publisher(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    return pub, User


def make_subscriber(eco, name="sub"):
    sub = eco.service(name, database=PostgresLike(f"{name}-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]})
    class User(Model):
        name = Field(str)

    return sub, sub.registry["User"]


class TestBootstrap:
    def test_late_subscriber_catches_up(self, eco):
        """A subscriber deployed after data exists gets everything."""
        pub, User = make_publisher(eco)
        for i in range(10):
            User.create(name=f"u{i}")
        sub, SubUser = make_subscriber(eco)
        assert SubUser.count() == 0  # missed the pre-deploy traffic
        applied = bootstrap_subscriber(sub)
        assert applied == 10
        assert SubUser.count() == 10
        assert not sub.bootstrap_active

    def test_bootstrap_then_live_traffic(self, eco):
        pub, User = make_publisher(eco)
        User.create(name="old")
        sub, SubUser = make_subscriber(eco)
        bootstrap_subscriber(sub)
        User.create(name="new")
        sub.subscriber.drain()
        assert {u.name for u in SubUser.all()} == {"old", "new"}

    def test_bootstrap_flag_visible_to_callbacks(self, eco):
        """Fig 2: the mailer suppresses emails during bootstrap."""
        pub, User = make_publisher(eco)
        User.create(name="old1")
        User.create(name="old2")

        sub = eco.service("mailer", database=MongoLike("mail-db"))
        sent = []

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
        class SubUser(Model):
            name = Field(str)

            @after_create
            def welcome(self):
                if not type(self)._service.bootstrap_active:
                    sent.append(self.name)

        bootstrap_subscriber(sub)
        assert sent == []  # bulk phase: no emails
        pub.registry["User"].create(name="fresh")
        sub.subscriber.drain()
        assert sent == ["fresh"]

    def test_bootstrap_is_idempotent(self, eco):
        pub, User = make_publisher(eco)
        User.create(name="a")
        sub, SubUser = make_subscriber(eco)
        bootstrap_subscriber(sub)
        bootstrap_subscriber(sub)
        assert SubUser.count() == 1

    def test_bootstrap_preserves_causal_semantics_afterwards(self, eco):
        pub, User = make_publisher(eco)
        user = User.create(name="v1")
        sub, SubUser = make_subscriber(eco)
        bootstrap_subscriber(sub)
        # Post-bootstrap: ordered updates apply cleanly.
        user.update(name="v2")
        user.update(name="v3")
        sub.subscriber.drain()
        assert SubUser.find(user.id).name == "v3"


class TestQueueOverflowDecommission:
    def test_overflow_kills_queue_then_partial_bootstrap_recovers(self, eco):
        """§4.4: a dead subscriber's queue grows, gets killed; when the
        subscriber returns a partial bootstrap resynchronises it."""
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        # Subscriber is "down" (not draining) while traffic flows.
        for i in range(60):  # queue_limit=50
            User.create(name=f"u{i}")
        assert sub.subscriber.queue.decommissioned
        with pytest.raises(QueueDecommissioned):
            sub.subscriber.drain()
        bootstrap_subscriber(sub)
        assert SubUser.count() == 60
        # Live again.
        User.create(name="после")
        sub.subscriber.drain()
        assert SubUser.count() == 61


class TestVersionStoreFailures:
    def test_publisher_store_death_bumps_generation(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        User.create(name="a")
        sub.subscriber.drain()
        for shard in pub.publisher_version_store.kv.shards:
            shard.crash()
        User.create(name="b")  # publisher recovers transparently
        assert pub.current_generation() == 2
        sub.subscriber.drain()
        assert SubUser.count() == 2

    def test_subscriber_flushes_store_on_new_generation(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        User.create(name="a")
        sub.subscriber.drain()
        before = sub.subscriber_version_store.ops("pub/users/id/1")
        assert before > 0
        for shard in pub.publisher_version_store.kv.shards:
            shard.crash()
        User.create(name="b")
        sub.subscriber.drain()
        assert sub.subscriber.generations["pub"] == 2
        assert SubUser.count() == 2
        # Old generation counters were flushed; new ones restarted small.
        assert sub.subscriber_version_store.ops("pub/users/id/1") <= before

    def test_subscriber_store_death_triggers_partial_bootstrap(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        User.create(name="a")
        sub.subscriber.drain()
        for shard in sub.subscriber_version_store.kv.shards:
            shard.crash()
        recover_subscriber_version_store(sub)
        assert SubUser.count() == 1
        User.create(name="b")
        sub.subscriber.drain()
        assert SubUser.count() == 2


class TestMessageLossIncident:
    def test_lost_message_deadlocks_causal_then_bootstrap_unblocks(self, eco):
        """The full §6.5 story: RabbitMQ upgrade loses messages, causal
        subscribers deadlock with filling queues, and Synapse's recovery
        (rebootstrap) unblocks them."""
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        user = User.create(name="v1")
        sub.subscriber.drain()
        eco.broker.drop_next(1)
        user.update(name="v2")  # lost
        user.update(name="v3")
        sub.subscriber.drain()
        # Deadlocked: v3 waits for the lost v2's increment.
        assert SubUser.find(user.id).name == "v1"
        assert len(sub.subscriber.queue) == 1
        # Recovery: partial bootstrap.
        bootstrap_subscriber(sub)
        assert SubUser.find(user.id).name == "v3"
        assert len(sub.subscriber.queue) == 0


class TestQueueLimitPath:
    """The default_queue_limit decommission path, end to end (§4.4)."""

    def test_exactly_at_limit_survives(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        for i in range(50):  # queue_limit=50: at the limit, not over
            User.create(name=f"u{i}")
        assert not sub.subscriber.queue.decommissioned
        sub.subscriber.drain()
        assert SubUser.count() == 50

    def test_one_over_limit_decommissions(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        for i in range(51):
            User.create(name=f"u{i}")
        queue = sub.subscriber.queue
        assert queue.decommissioned
        # The backlog is gone with the queue; lifetime counters remain.
        stats = eco.broker.queue_stats("sub")["sub"]
        assert stats["decommissioned"] == 1
        assert stats["queued"] == 0
        assert stats["published"] == 51

    def test_decommissioned_queue_drops_new_traffic(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        for i in range(60):
            User.create(name=f"u{i}")
        assert sub.subscriber.queue.decommissioned
        User.create(name="while-dead")  # silently dropped, no overflow error
        assert len(sub.subscriber.queue) == 0

    def test_bootstrap_fully_recovers_overflowed_subscriber(self, eco):
        """The satellite acceptance path: over-limit decommission, then
        bootstrap_subscriber restores every object and live traffic."""
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        for i in range(75):
            User.create(name=f"u{i}")
        assert sub.subscriber.queue.decommissioned
        applied = bootstrap_subscriber(sub)
        assert applied == 75
        assert SubUser.count() == 75
        assert not sub.subscriber.queue.decommissioned
        # Digest-level proof of full recovery, and live traffic flows.
        assert sub.audit_replication().in_sync
        User.create(name="fresh")
        sub.subscriber.drain()
        assert SubUser.count() == 76

    def test_audit_reports_decommissioned_queue(self, eco):
        pub, User = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        for i in range(60):
            User.create(name=f"u{i}")
        report = sub.audit_replication()
        assert report.lag["pub"].decommissioned
        assert not report.in_sync
