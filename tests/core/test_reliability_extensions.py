"""At-least-once dedup, give-up timeouts, and multi-object unrolling."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.workers import SubscriberWorkerPool


@pytest.fixture
def eco():
    return Ecosystem()


def build(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "n"])
    class User(Model):
        name = Field(str)
        n = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "n"]}, name="User")
    class SubUser(Model):
        name = Field(str)
        n = Field(int, default=0)

    return pub, pub.registry["User"], sub, sub.registry["User"]


class TestAtLeastOnceDedup:
    def test_redelivered_message_is_not_applied_twice(self, eco):
        pub, User, sub, SubUser = build(eco)
        user = User.create(name="a")
        queue = sub.subscriber.queue
        message = queue.pop()
        assert sub.subscriber.process_message(message)
        # Worker crashed before acking: the broker redelivers.
        queue.nack(message)
        redelivered = queue.pop()
        assert redelivered.uid == message.uid
        assert sub.subscriber.process_message(redelivered)
        assert sub.subscriber.duplicate_messages == 1
        # Counters were incremented exactly once: a follow-up update with
        # the expected dependency version applies cleanly.
        queue.ack(redelivered)
        user.update(name="b")
        sub.subscriber.drain()
        assert SubUser.find(user.id).name == "b"

    def test_uid_survives_wire_roundtrip(self, eco):
        pub, User, sub, SubUser = build(eco)
        User.create(name="a")
        message = sub.subscriber.queue.pop()
        assert message.copy().uid == message.uid

    def test_dedup_window_is_bounded(self, eco):
        pub, User, sub, SubUser = build(eco)
        subscriber = sub.subscriber
        for i in range(subscriber._applied_uids.maxlen + 10):
            subscriber._mark_applied(f"u{i}")
        assert len(subscriber._applied_uid_set) == subscriber._applied_uids.maxlen
        assert "u0" not in subscriber._applied_uid_set


class TestGiveUpTimeout:
    def test_apply_action_unblocks_lost_dependency(self, eco):
        """§6.5's recommendation: a causal subscriber with a finite
        give-up timeout rides through message loss."""
        pub, User, sub, SubUser = build(eco)
        user = User.create(name="v1")
        eco.broker.drop_next(1)
        user.update(name="v2")  # lost forever
        user.update(name="v3")
        pool = SubscriberWorkerPool(
            sub, workers=2, wait_timeout=0.01, max_deliveries=3,
            give_up_action="apply",
        )
        with pool:
            assert pool.wait_until_idle(timeout=10)
        # The blocked v3 was force-applied after the timeout.
        assert SubUser.find(user.id).name == "v3"
        assert pool.deadlocked_messages >= 1

    def test_invalid_action_rejected(self, eco):
        pub, User, sub, SubUser = build(eco)
        with pytest.raises(ValueError):
            SubscriberWorkerPool(sub, give_up_action="explode")

    def test_force_apply_is_idempotent(self, eco):
        pub, User, sub, SubUser = build(eco)
        User.create(name="a")
        message = sub.subscriber.queue.pop()
        sub.subscriber.force_apply(message)
        sub.subscriber.force_apply(message)
        assert SubUser.count() == 1
        assert sub.subscriber.processed_messages == 1


class TestMultiObjectUnrolling:
    def test_update_all_publishes_per_object_messages(self, eco):
        pub, User, sub, SubUser = build(eco)
        for i in range(5):
            User.create(name="bulk", n=i)
        before = pub.publisher.messages_published
        updated = User.update_all({"name": "bulk"}, n=99)
        assert len(updated) == 5
        # One message per object, not one bulk message (§4.2).
        assert pub.publisher.messages_published == before + 5
        sub.subscriber.drain()
        assert all(u.n == 99 for u in SubUser.where(name="bulk"))

    def test_update_all_fires_callbacks_per_object(self, eco):
        events = []
        svc = eco.service("svc", database=MongoLike("m"))

        from repro.orm import after_update

        @svc.model()
        class Thing(Model):
            x = Field(int)

            @after_update
            def log(self):
                events.append(self.id)

        a = Thing.create(x=1)
        b = Thing.create(x=1)
        Thing.update_all({"x": 1}, x=2)
        assert sorted(events) == [a.id, b.id]

    def test_destroy_all(self, eco):
        pub, User, sub, SubUser = build(eco)
        for i in range(4):
            User.create(name="gone", n=i)
        User.create(name="kept")
        sub.subscriber.drain()
        assert User.destroy_all(name="gone") == 4
        sub.subscriber.drain()
        assert [u.name for u in SubUser.all()] == ["kept"]
