"""NonPersistedMapper behaviour and the exception hierarchy."""

import threading


from repro import errors
from repro.broker import Message, SubscriberQueue
from repro.core.observer import NonPersistedMapper
from repro.orm import Field, Model, bind_model


class TestNonPersistedMapper:
    def make(self):
        class Ghost(Model):
            name = Field(str)

        bind_model(Ghost, None, mapper=NonPersistedMapper())
        return Ghost

    def test_insert_assigns_ids_without_storage(self):
        Ghost = self.make()
        a = Ghost.create(name="a")
        b = Ghost.create(name="b")
        assert (a.id, b.id) == (1, 2)
        assert Ghost.count() == 0
        assert Ghost.where() == []
        assert Ghost.find_by(name="a") is None

    def test_update_and_delete_return_rows(self):
        Ghost = self.make()
        ghost = Ghost.create(name="a")
        ghost.update(name="b")  # no storage, but no crash either
        ghost.destroy()

    def test_explicit_ids_preserved(self):
        Ghost = self.make()
        ghost = Ghost(name="x")
        ghost.id = 42
        ghost.save()
        assert ghost.id == 42


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_domain_bases(self):
        assert issubclass(errors.UnknownTableError, errors.DatabaseError)
        assert issubclass(errors.SubscriptionError, errors.SynapseError)
        assert issubclass(errors.RecordNotFound, errors.ORMError)
        assert issubclass(errors.QueueDecommissioned, errors.BrokerError)


class TestBlockingPop:
    def test_pop_blocks_until_publish(self):
        queue = SubscriberQueue("q")
        got = []

        def consumer():
            got.append(queue.pop(timeout=5))

        thread = threading.Thread(target=consumer)
        thread.start()
        message = Message(app="a", operations=[], dependencies={},
                          published_at=0.0)
        queue.publish(message)
        thread.join(timeout=5)
        assert got and got[0].uid == message.uid

    def test_pop_timeout_returns_none(self):
        queue = SubscriberQueue("q")
        assert queue.pop(timeout=0.05) is None
