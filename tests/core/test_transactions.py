"""Transactional publishing: one message per transaction, 2PC (§4.2)."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model


@pytest.fixture
def eco():
    return Ecosystem()


def build(eco):
    pub = eco.service("pub", database=PostgresLike("pub-db"))

    @pub.model(publish=["name", "balance"])
    class Account(Model):
        name = Field(str)
        balance = Field(int)

    sub = eco.service("sub", database=MongoLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "balance"]})
    class Account(Model):  # noqa: F811
        name = Field(str)
        balance = Field(int)

    return pub, pub.registry["Account"], sub, sub.registry["Account"]


class TestTransactionalPublishing:
    def test_all_writes_in_one_message(self, eco):
        pub, Account, sub, SubAccount = build(eco)
        probe = eco.broker.bind("probe", "pub")
        db = pub.database
        with db.begin():
            a = Account.create(name="a", balance=100)
            b = Account.create(name="b", balance=0)
            a.update(balance=50)
            b.update(balance=50)
        msg = probe.pop()
        assert probe.pop() is None  # exactly one message
        kinds = [op["operation"] for op in msg.operations]
        assert kinds == ["create", "create", "update", "update"]
        assert pub.publisher.messages_published == 1

    def test_subscriber_applies_transaction_atomically_in_order(self, eco):
        pub, Account, sub, SubAccount = build(eco)
        with pub.database.begin():
            a = Account.create(name="a", balance=100)
            b = Account.create(name="b", balance=0)
            a.update(balance=50)
            b.update(balance=50)
        sub.subscriber.drain()
        assert SubAccount.find(a.id).balance == 50
        assert SubAccount.find(b.id).balance == 50

    def test_rollback_publishes_nothing(self, eco):
        pub, Account, sub, SubAccount = build(eco)
        with pytest.raises(RuntimeError):
            with pub.database.begin():
                Account.create(name="a", balance=1)
                raise RuntimeError("boom")
        assert pub.publisher.messages_published == 0
        sub.subscriber.drain()
        assert SubAccount.count() == 0
        # The local DB rolled back too.
        assert Account.count() == 0

    def test_transaction_dependencies_cover_all_written_objects(self, eco):
        pub, Account, sub, SubAccount = build(eco)
        probe = eco.broker.bind("probe", "pub")
        with pub.database.begin():
            Account.create(name="a", balance=1)
            Account.create(name="b", balance=2)
        msg = probe.pop()
        assert "pub/accounts/id/1" in msg.dependencies
        assert "pub/accounts/id/2" in msg.dependencies

    def test_transactions_chain_within_controller(self, eco):
        pub, Account, sub, SubAccount = build(eco)
        probe = eco.broker.bind("probe", "pub")
        with pub.controller():
            with pub.database.begin():
                a = Account.create(name="a", balance=1)
            with pub.database.begin():
                a.update(balance=2)
        probe.pop()
        m2 = probe.pop()
        # Second txn read-depends on the first txn's first write dep.
        assert m2.dependencies["pub/accounts/id/1"] == 1

    def test_failed_prepare_rolls_back_local_commit(self, eco):
        """2PC: if version bumping dies, the local commit must not land."""
        pub, Account, sub, SubAccount = build(eco)
        # Crash the publisher's version store mid-flight: prepare recovers
        # by bumping the generation, so instead we simulate a hard failure
        # of the broker-side publish by crashing during prepare via a bad
        # hook injected *after* Synapse's own hook.
        txn = pub.database.begin()
        Account.create(name="a", balance=1)
        txn.on_prepare.append(lambda t: (_ for _ in ()).throw(RuntimeError("die")))
        with pytest.raises(RuntimeError):
            txn.commit()
        assert Account.count() == 0
        assert pub.publisher.messages_published == 0

    def test_generation_bump_on_version_store_death_in_txn(self, eco):
        pub, Account, sub, SubAccount = build(eco)
        for shard in pub.publisher_version_store.kv.shards:
            shard.crash()
        with pub.database.begin():
            Account.create(name="a", balance=1)
        # Publishing succeeded under a new generation.
        assert pub.publisher.messages_published == 1
        assert pub.current_generation() == 2
        sub.subscriber.drain()
        assert SubAccount.count() == 1
