"""Bootstrap anti-entropy: ghost rows from lost delete messages."""


from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model


def build(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["n"], name="Item")
    class Item(Model):
        n = Field(int)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Item")
    class SubItem(Model):
        n = Field(int)

    return pub, pub.registry["Item"], sub, sub.registry["Item"]


class TestGhostRowReconciliation:
    def test_lost_delete_cleaned_up_by_bootstrap(self):
        eco = Ecosystem()
        pub, Item, sub, SubItem = build(eco)
        keep = Item.create(n=1)
        ghost = Item.create(n=2)
        sub.subscriber.drain()
        assert SubItem.count() == 2
        # The delete message is lost in transit (§6.5).
        eco.broker.drop_next(1)
        ghost.destroy()
        sub.subscriber.drain()
        assert SubItem.count() == 2  # ghost row lingers
        bootstrap_subscriber(sub)
        assert {i.id for i in SubItem.all()} == {keep.id}

    def test_ghost_delete_fires_destroy_callbacks(self):
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("p"))

        @pub.model(publish=["n"], name="Item")
        class Item(Model):
            n = Field(int)

        sub = eco.service("sub", database=PostgresLike("s"))
        removed = []

        from repro.orm import after_destroy

        @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Item")
        class SubItem(Model):
            n = Field(int)

            @after_destroy
            def log(self):
                removed.append(self.id)

        item = Item.create(n=1)
        sub.subscriber.drain()
        eco.broker.drop_next(1)
        item.destroy()
        bootstrap_subscriber(sub)
        assert removed == [item.id]

    def test_multi_publisher_models_exempt(self):
        """A model subscribed from two publishers (Fig 3's Sub2) must not
        lose rows just because one publisher's dump misses them."""
        eco = Ecosystem()
        pub1 = eco.service("pub1", database=MongoLike("p1"))

        @pub1.model(publish=["name"], name="User")
        class User1(Model):
            name = Field(str)

        dec = eco.service("dec2", database=MongoLike("d"))

        @dec.model(subscribe={"from": "pub1", "fields": ["name"]},
                   publish=["interests"], name="User")
        class DecUser(Model):
            name = Field(str)
            interests = Field(list, default=list)

        sub = eco.service("sub2", database=PostgresLike("s"))

        @sub.model(subscribe=[
            {"from": "pub1", "fields": ["name"]},
            {"from": "dec2", "fields": ["interests"]},
        ], name="User")
        class SubUser(Model):
            name = Field(str)
            interests = Field(list, default=list)

        ada = User1.create(name="ada")
        eco.drain_all()
        assert SubUser.count() == 1
        # Bootstrapping from dec2 (whose own User copy might lag) must
        # not delete the row that pub1 owns.
        bootstrap_subscriber(sub, "dec2")
        assert SubUser.count() == 1
