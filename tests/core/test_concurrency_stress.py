"""Threaded stress tests: concurrent publishers + concurrent subscriber
workers over the real engines."""

import threading


from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import BelongsTo, Field, Model
from repro.runtime.workers import SubscriberWorkerPool


def build(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"),
                      version_store_shards=4)

    @pub.model(publish=["name", "version"])
    class User(Model):
        name = Field(str)
        version = Field(int, default=0)

    @pub.model(publish=["author_id", "body"])
    class Post(Model):
        body = Field(str)
        author = BelongsTo("User")

    sub = eco.service("sub", database=PostgresLike("sub-db"),
                      version_store_shards=4)

    @sub.model(subscribe={"from": "pub", "fields": ["name", "version"]},
               name="User")
    class SubUser(Model):
        name = Field(str)
        version = Field(int, default=0)

    @sub.model(subscribe={"from": "pub", "fields": ["author_id", "body"]},
               name="Post")
    class SubPost(Model):
        body = Field(str)
        author_id = Field(int)

    return pub, pub.registry["User"], pub.registry["Post"], sub, \
        sub.registry["User"], sub.registry["Post"]


class TestConcurrentPipeline:
    def test_concurrent_publishers_and_workers(self):
        eco = Ecosystem()
        pub, User, Post, sub, SubUser, SubPost = build(eco)
        users = [User.create(name=f"u{i}") for i in range(8)]
        sub.subscriber.drain()
        errors = []

        def publisher_thread(user):
            try:
                for i in range(25):
                    with pub.controller(user=user):
                        seen = User.find(user.id)
                        Post.create(author_id=seen.id, body=f"{user.name}-{i}")
                        seen.update(version=i + 1)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        with SubscriberWorkerPool(sub, workers=6, wait_timeout=0.5) as pool:
            threads = [threading.Thread(target=publisher_thread, args=(u,))
                       for u in users]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert pool.wait_until_idle(timeout=30)
        assert errors == []
        # Everything arrived, exactly once.
        assert SubPost.count() == 8 * 25
        # Per-user causality: the final version is the last one written.
        for user in users:
            assert SubUser.find(user.id).version == 25

    def test_per_object_serialisation_under_contention(self):
        """Many threads updating one object: the subscriber must end at
        the publisher's final value (no lost or reordered final write)."""
        eco = Ecosystem()
        pub, User, Post, sub, SubUser, SubPost = build(eco)
        target = User.create(name="contended")
        barrier = threading.Barrier(4)

        def writer(k):
            barrier.wait()
            for i in range(20):
                # Each update re-reads to avoid clobbering attr state.
                fresh = User.find(target.id)
                fresh.update(version=(fresh.version or 0) + 1)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with SubscriberWorkerPool(sub, workers=4, wait_timeout=0.5) as pool:
            assert pool.wait_until_idle(timeout=30)
        assert SubUser.find(target.id).version == User.find(target.id).version

    def test_sharded_version_store_under_threads(self):
        """Counter integrity across 4 shards with concurrent publishers."""
        eco = Ecosystem()
        pub, User, Post, sub, SubUser, SubPost = build(eco)

        def hammer(k):
            for i in range(50):
                Post.create(author_id=None, body=f"{k}-{i}")

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pub.publisher.messages_published == 300
        sub.subscriber.drain()
        assert SubPost.count() == 300
