"""Concurrent stress test: registry counters must reconcile exactly.

4 publisher threads x 125 creates flow through the broker to a threaded
subscriber pool (plus a probe queue that doubles the fan-out), with
injected message loss and injected at-least-once redeliveries. At the
end, the central registry's counters must balance to the message:

    published * fanout == routed + dropped
    processed + duplicates + deadlocked == delivered (acked)
    no double-apply (row count == distinct applied creates)
"""

import threading

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.workers import SubscriberWorkerPool

PUBLISHER_THREADS = 4
CREATES_PER_THREAD = 125
TOTAL = PUBLISHER_THREADS * CREATES_PER_THREAD
DROPPED = 7
REDELIVERIES = 50


def build(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"), version_store_shards=4)

    @pub.model(publish=["body"], name="Note")
    class Note(Model):
        body = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"), version_store_shards=4)

    @sub.model(subscribe={"from": "pub", "fields": ["body"]}, name="Note")
    class SubNote(Model):
        body = Field(str)

    return pub, sub, pub.registry["Note"], sub.registry["Note"]


class TestRegistryReconciliation:
    def test_counters_reconcile_under_concurrency(self):
        eco = Ecosystem()
        pub, sub, Note, SubNote = build(eco)
        # Probe queue: captures wire copies for redelivery injection and
        # doubles the broker fan-out (fanout = 2).
        probe = eco.broker.bind("probe", "pub")
        eco.broker.drop_next(DROPPED)
        errors = []

        def publisher_thread(k):
            try:
                for i in range(CREATES_PER_THREAD):
                    Note.create(body=f"{k}-{i}")
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        with SubscriberWorkerPool(sub, workers=6, wait_timeout=0.2) as pool:
            threads = [
                threading.Thread(target=publisher_thread, args=(k,))
                for k in range(PUBLISHER_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert pool.wait_until_idle(timeout=30)

            # Phase 2: inject at-least-once redeliveries — wire copies of
            # already-applied messages land on the subscriber queue again
            # (same uid, fresh wire copy, exactly what a broker redelivery
            # after a missed ack looks like).
            captured = []
            while True:
                message = probe.pop()
                if message is None:
                    break
                probe.ack(message)
                captured.append(message)
            sub_queue = sub.subscriber.queue
            store_before = sub.subscriber.processed_messages
            for message in captured[:REDELIVERIES]:
                sub_queue.publish(message.copy())
            assert pool.wait_until_idle(timeout=30)
            deadlocked = pool.deadlocked_messages

        assert errors == []
        metrics = eco.metrics

        # Every published message was either routed or dropped, per queue.
        published = metrics.value("publisher.pub.published")
        assert published == TOTAL
        fanout = 2  # sub + probe
        assert (
            metrics.value("broker.routed") + metrics.value("broker.dropped")
            == published * fanout
        )
        assert metrics.value("broker.dropped") == DROPPED

        # Everything delivered to the subscriber was acked, and every ack
        # is accounted for as processed, duplicate or deadlocked.
        sub_queue = sub.subscriber.queue
        assert len(sub_queue) == 0 and sub_queue.unacked_count == 0
        processed = metrics.value("subscriber.sub.processed")
        duplicates = metrics.value("subscriber.sub.duplicates")
        assert processed + duplicates + deadlocked == sub_queue.total_acked
        assert sub_queue.total_acked == sub_queue.total_published

        # Every injected redelivery either deduplicated (its original was
        # applied) or recovered a message the broker dropped on the sub
        # queue — at-least-once semantics, with no third outcome.
        recovered = processed - store_before
        assert recovered >= 0
        assert duplicates + recovered == REDELIVERIES

        # No double-apply: one row per processed create (creates are
        # independent objects, so every processed message is distinct),
        # and the engine saw exactly that many ORM writes.
        assert SubNote.count() == processed
        assert metrics.value("orm.sub.writes") == processed
        # The subscriber bumped each applied message's single dependency
        # exactly once — duplicates never touch the version store.
        assert metrics.value("versionstore.sub.applied") == processed

        # The snapshot surface exposes the whole reconciliation.
        snap = metrics.snapshot()
        for name in (
            "broker.routed",
            "broker.dropped",
            "publisher.pub.published",
            "subscriber.sub.processed",
            "subscriber.sub.duplicates",
            "workers.sub.deadlocked",
        ):
            assert name in snap
