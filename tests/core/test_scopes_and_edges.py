"""Background jobs, explicit dependencies, partial bootstrap scoping and
assorted error paths."""

import pytest

from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import SynapseError
from repro.orm import Field, Model


@pytest.fixture
def eco():
    return Ecosystem()


def build(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    @pub.model(publish=["label"])
    class Widget(Model):
        label = Field(str)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    @sub.model(subscribe={"from": "pub", "fields": ["label"]}, name="Widget")
    class SubWidget(Model):
        label = Field(str)

    return pub, sub


class TestBackgroundJobs:
    def test_background_job_chains_writes(self, eco):
        """Sidekiq-style jobs get the same implicit tracking (§4.2)."""
        pub, sub = build(eco)
        User = pub.registry["User"]
        probe = eco.broker.bind("probe", "pub")
        with pub.background_job():
            a = User.create(name="a")
            User.create(name="b")
        probe.pop()
        m2 = probe.pop()
        # Chained: second create read-depends on the first.
        assert f"pub/users/id/{a.id}" in m2.dependencies

    def test_explicit_read_deps_synchronise_aggregations(self, eco):
        """add_read_deps covers aggregation queries Synapse cannot infer
        (§4.2)."""
        pub, sub = build(eco)
        User = pub.registry["User"]
        existing = User.create(name="seed")
        probe = eco.broker.bind("probe", "pub")
        with pub.controller() as ctx:
            assert User.count() == 1  # aggregation: no implicit dep
            ctx.add_read_deps(existing)
            User.create(name="derived")
        message = probe.pop()
        assert f"pub/users/id/{existing.id}" in message.dependencies


class TestPartialBootstrapScope:
    def test_models_filter_limits_bulk_phase(self, eco):
        pub, sub = build(eco)
        User = pub.registry["User"]
        Widget = pub.registry["Widget"]
        User.create(name="u")
        Widget.create(label="w")
        # Bootstrap only the Widget model.
        applied = bootstrap_subscriber(sub, "pub", models=["Widget"])
        assert applied == 1
        assert sub.registry["Widget"].count() == 1
        # User arrived through the normal queue drain (step 3), not bulk.
        assert sub.registry["User"].count() == 1

    def test_no_subscriptions_is_a_noop(self, eco):
        lonely = eco.service("lonely", database=MongoLike("l"))
        assert bootstrap_subscriber(lonely) == 0
        assert lonely.subscriber.drain() == 0


class TestErrorPaths:
    def test_duplicate_model_name_in_service_rejected(self, eco):
        pub, sub = build(eco)
        with pytest.raises(SynapseError):
            @pub.model(name="User")
            class AnotherUser(Model):
                name = Field(str)

    def test_unknown_bootstrap_publisher_rejected(self, eco):
        pub, sub = build(eco)
        sub.subscriber.specs[("ghost", "User")] = \
            sub.subscriber.specs[("pub", "User")]
        with pytest.raises(SynapseError):
            bootstrap_subscriber(sub, "ghost")

    def test_generation_regression_is_harmless(self, eco):
        """A stale-generation message (e.g. an old redelivery) processes
        without disturbing the current generation."""
        pub, sub = build(eco)
        User = pub.registry["User"]
        User.create(name="a")
        sub.subscriber.drain()
        sub.subscriber.generations["pub"] = 5  # pretend we're ahead
        User.create(name="b")
        sub.subscriber.drain()
        assert sub.registry["User"].count() == 2
        assert sub.subscriber.generations["pub"] == 5
