"""Tests for the Synapse testing framework (§4.5)."""

import pytest

from repro.core import Ecosystem
from repro.core.testing import ModelFactory, PublisherFactoryFile, check_ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import SynapseError
from repro.orm import Field, Model


@pytest.fixture
def eco():
    return Ecosystem()


def build_pub(eco):
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["name", "email"])
    class User(Model):
        name = Field(str)
        email = Field(str)

    return pub, User


def build_sub(eco):
    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "email"]})
    class User(Model):
        name = Field(str)
        email = Field(str)

    return sub, sub.registry["User"]


class TestModelFactory:
    def test_sequenced_defaults(self, eco):
        _, User = build_pub(eco)
        factory = ModelFactory(User, {"name": lambda n: f"user{n}", "email": "x@y"})
        a = factory.build_attributes()
        b = factory.build_attributes()
        assert (a["name"], b["name"]) == ("user1", "user2")
        assert a["id"] == 1 and b["id"] == 2
        assert a["email"] == "x@y"

    def test_overrides_win(self, eco):
        _, User = build_pub(eco)
        factory = ModelFactory(User, {"name": "default"})
        attrs = factory.build_attributes(name="custom", id=99)
        assert attrs["name"] == "custom"
        assert attrs["id"] == 99


class TestPublisherFactoryFile:
    def test_register_requires_published_model(self, eco):
        pub, User = build_pub(eco)

        @pub.model()
        class Hidden(Model):
            x = Field(int)

        factories = PublisherFactoryFile(pub)
        factories.register(User, name="u")
        with pytest.raises(SynapseError):
            factories.register(Hidden, x=1)

    def test_emulated_payload_matches_wire_format(self, eco):
        pub, User = build_pub(eco)
        factories = PublisherFactoryFile(pub)
        factories.register(User, name=lambda n: f"user{n}", email="a@b")
        message = factories.emulate_payload("User")
        op = message.operations[0]
        assert message.app == "pub"
        assert op["operation"] == "create"
        assert op["types"] == ["User"]
        assert set(op["attributes"]) == {"name", "email"}
        # Round-trips through the wire format.
        assert message.copy().operations == message.operations

    def test_deliver_runs_subscriber_integration(self, eco):
        """A subscriber test can run without the publisher app running."""
        pub, User = build_pub(eco)
        sub, SubUser = build_sub(eco)
        factories = PublisherFactoryFile(pub)
        factories.register(User, name="ada", email="ada@lovelace.org")
        factories.deliver(sub, "User")
        assert SubUser.count() == 1
        assert SubUser.all()[0].email == "ada@lovelace.org"

    def test_deliver_update_and_delete(self, eco):
        pub, User = build_pub(eco)
        sub, SubUser = build_sub(eco)
        factories = PublisherFactoryFile(pub)
        factories.register(User, name="v1", email="e")
        factories.deliver(sub, "User", id=7)
        factories.deliver(sub, "User", kind="update", id=7, name="v2")
        assert SubUser.find(7).name == "v2"
        factories.deliver(sub, "User", kind="delete", id=7)
        assert SubUser.count() == 0

    def test_unknown_factory_rejected(self, eco):
        pub, _ = build_pub(eco)
        factories = PublisherFactoryFile(pub)
        with pytest.raises(SynapseError):
            factories.emulate_payload("Ghost")


class TestEcosystemCheck:
    def test_healthy_ecosystem_reports_nothing(self, eco):
        build_pub(eco)
        build_sub(eco)
        assert check_ecosystem(eco) == []

    def test_detects_publication_shrink(self, eco):
        """A publisher silently un-publishing a field breaks subscribers —
        the check catches it before deployment does."""
        pub, User = build_pub(eco)
        sub, _ = build_sub(eco)
        # Simulate a bad redeploy: the publisher drops "email".
        models = eco.broker._publications["pub"]
        fields, mode = models["User"]
        models["User"] = ([f for f in fields if f != "email"], mode)
        problems = check_ecosystem(eco)
        assert len(problems) == 1
        assert "email" in problems[0]
