"""LiveMigrator.add_field: live attribute addition on every engine kind."""

import pytest

from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.core.migration import LiveMigrator
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import MigrationError
from repro.orm import Field, Model


def build(eco, db):
    pub = eco.service("pub", database=db)

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    return pub, User


class TestAddField:
    def test_add_field_on_relational_creates_column(self):
        eco = Ecosystem()
        pub, User = build(eco, PostgresLike("pg"))
        User.create(name="before")
        LiveMigrator(pub).add_field(User, "level", int, default=0)
        # Existing rows get the default; new rows persist the field.
        assert User.all()[0].level == 0
        user = User.create(name="after", level=7)
        assert User.find(user.id).level == 7

    def test_add_field_on_schemaless_engine(self):
        eco = Ecosystem()
        pub, User = build(eco, MongoLike("m"))
        User.create(name="before")
        LiveMigrator(pub).add_field(User, "level", int)
        user = User.create(name="after", level=3)
        assert User.find(user.id).level == 3

    def test_duplicate_field_rejected(self):
        eco = Ecosystem()
        pub, User = build(eco, MongoLike("m"))
        with pytest.raises(MigrationError):
            LiveMigrator(pub).add_field(User, "name", str)

    def test_full_evolution_cycle(self):
        """The §4.3 rule-3 deployment dance, end to end: publisher adds +
        publishes the field, subscriber widens, partial bootstrap
        back-fills."""
        eco = Ecosystem()
        pub, User = build(eco, PostgresLike("pg"))
        sub = eco.service("sub", database=MongoLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
        class SubUser(Model):
            name = Field(str)
            level = Field(int)

        User.create(name="ada")
        sub.subscriber.drain()

        migrator = LiveMigrator(pub)
        migrator.add_field(User, "level", int, default=1)
        migrator.publish_new_attribute(User, "level")
        sub.subscriber.specs[("pub", "User")].fields["level"] = "level"
        bootstrap_subscriber(sub, "pub", models=["User"])
        assert SubUser.all()[0].level == 1
