"""Subscriber-side atomic application of transactional messages (§4.2)."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model


def build(eco):
    pub = eco.service("pub", database=PostgresLike("pub-db"))

    @pub.model(publish=["name", "balance"])
    class Account(Model):
        name = Field(str)
        balance = Field(int)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["name", "balance"]},
               name="Account")
    class SubAccount(Model):
        name = Field(str)
        balance = Field(int)

    return pub, pub.registry["Account"], sub, sub.registry["Account"]


class TestAtomicApply:
    def test_multi_op_message_applied_in_one_transaction(self):
        eco = Ecosystem()
        pub, Account, sub, SubAccount = build(eco)
        with pub.database.begin():
            a = Account.create(name="a", balance=100)
            b = Account.create(name="b", balance=0)
            a.update(balance=60)
            b.update(balance=40)
        before = sub.database.stats.transactions
        sub.subscriber.drain()
        assert sub.database.stats.transactions == before + 1
        assert SubAccount.find(a.id).balance == 60
        assert SubAccount.find(b.id).balance == 40

    def test_faulted_transaction_rolls_back_and_retries_cleanly(self):
        """A mid-transaction engine fault leaves nothing half-applied;
        the redelivery then applies everything."""
        eco = Ecosystem()
        pub, Account, sub, SubAccount = build(eco)
        with pub.database.begin():
            Account.create(name="a", balance=1)
            Account.create(name="b", balance=2)
        queue = sub.subscriber.queue
        message = queue.pop()
        # First apply dies on the second op's engine write.
        sub.database.faults.skip_next_writes = 1
        sub.database.faults.fail_next_writes = 1
        with pytest.raises(Exception):
            sub.subscriber.process_message(message)
        assert SubAccount.count() == 0  # rolled back, nothing partial
        # Redelivery succeeds and deps were not double-counted.
        assert sub.subscriber.process_message(message)
        assert SubAccount.count() == 2

    def test_single_op_messages_skip_transactions(self):
        eco = Ecosystem()
        pub, Account, sub, SubAccount = build(eco)
        Account.create(name="solo", balance=1)
        before = sub.database.stats.transactions
        sub.subscriber.drain()
        assert sub.database.stats.transactions == before

    def test_non_transactional_subscriber_still_works(self):
        eco = Ecosystem()
        pub = eco.service("pub", database=PostgresLike("p"))

        @pub.model(publish=["n"], name="Item")
        class Item(Model):
            n = Field(int)

        sub = eco.service("sub", database=MongoLike("s"))  # no txns

        @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Item")
        class SubItem(Model):
            n = Field(int)

        with pub.database.begin():
            Item.create(n=1)
            Item.create(n=2)
        sub.subscriber.drain()
        assert SubItem.count() == 2
