"""Publisher files (§3.1) and topology tooling."""

import json

from repro.core import Ecosystem
from repro.core.tools import publisher_file, to_dot
from repro.databases.document import MongoLike
from repro.orm import Field, Model


def build():
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("p"), delivery_mode="causal")

    @pub.model(publish=["name", "email"])
    class User(Model):
        name = Field(str)
        email = Field(str)

    @pub.model(publish=["body"])
    class Post(Model):
        body = Field(str)

    return eco, pub


class TestPublisherFile:
    def test_lists_models_and_attributes(self):
        eco, pub = build()
        doc = publisher_file(pub)
        assert doc["app"] == "pub"
        assert doc["delivery_mode"] == "causal"
        assert doc["models"]["User"]["uri"] == "pub/User"
        assert doc["models"]["User"]["attributes"] == ["name", "email"]
        assert doc["models"]["Post"]["types"] == ["Post"]

    def test_json_serialisable(self):
        eco, pub = build()
        round_tripped = json.loads(json.dumps(publisher_file(pub)))
        assert round_tripped["models"]["User"]["attributes"] == ["name", "email"]

    def test_subscriber_can_validate_against_file(self):
        """A subscriber team checks its field list against the file
        before deploying (the §4.5 workflow)."""
        eco, pub = build()
        doc = publisher_file(pub)
        wanted = {"name", "email"}
        assert wanted <= set(doc["models"]["User"]["attributes"])


class TestDotExport:
    def test_nodes_for_every_service(self):
        eco, pub = build()
        sub = eco.service("sub", database=MongoLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
        class SubUser(Model):
            name = Field(str)

        dot = to_dot(eco)
        assert '"pub"' in dot and '"sub"' in dot
        assert dot.count("->") == 1
