"""CLI (`python -m repro`) smoke tests."""

from repro.__main__ import main


class TestCLI:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == "1.0.0"

    def test_help(self, capsys):
        assert main([]) == 0
        assert "topology" in capsys.readouterr().out

    def test_topology_text(self, capsys):
        assert main(["topology", "crowdtap"]) == 0
        out = capsys.readouterr().out
        assert "main [mongodb]" in out

    def test_topology_dot(self, capsys):
        assert main(["topology", "social", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_metrics_snapshot(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "broker.routed" in out
        assert "publisher.pub.overhead" in out
        assert "subscriber.sub.processed" in out

    def test_metrics_with_trace(self, capsys):
        assert main(["metrics", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "publisher.intercept" in out
        assert "queue.dwell" in out
        assert "subscriber.apply" in out
        assert "total" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1

    def test_unknown_demo(self, capsys):
        assert main(["demo", "nope"]) == 1
