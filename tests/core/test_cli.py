"""CLI (`python -m repro`) smoke tests."""

from repro.__main__ import main


class TestCLI:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert capsys.readouterr().out.strip() == "1.0.0"

    def test_help(self, capsys):
        assert main([]) == 0
        assert "topology" in capsys.readouterr().out

    def test_topology_text(self, capsys):
        assert main(["topology", "crowdtap"]) == 0
        out = capsys.readouterr().out
        assert "main [mongodb]" in out

    def test_topology_dot(self, capsys):
        assert main(["topology", "social", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_metrics_snapshot(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "broker.routed" in out
        assert "publisher.pub.overhead" in out
        assert "subscriber.sub.processed" in out

    def test_metrics_with_trace(self, capsys):
        assert main(["metrics", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "publisher.intercept" in out
        assert "queue.dwell" in out
        assert "subscriber.apply" in out
        assert "total" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 1

    def test_unknown_demo(self, capsys):
        assert main(["demo", "nope"]) == 1

    def test_repair_demo(self, capsys):
        assert main(["repair", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "repair.pub.republished" in out
        assert "OK: replicas digest-equal, queue intact" in out

    def test_repair_demo_with_flags(self, capsys):
        assert main(["repair", "--demo", "--objects", "10", "--lose", "2"]) == 0
        out = capsys.readouterr().out
        assert "replicated 10 objects; injecting loss of 2 messages" in out

    def test_repair_without_demo_flag(self, capsys):
        assert main(["repair"]) == 1

    def test_flow_demo(self, capsys):
        assert main(["flow", "--demo", "--writes", "120", "--queue-limit", "32"]) == 0
        out = capsys.readouterr().out
        assert "decommissioned=False" in out
        assert "flow.sub.shed" in out
        assert "flow.sub.coalesced" in out
        assert out.rstrip().endswith("replicas converged")

    def test_flow_without_demo_flag(self, capsys):
        assert main(["flow"]) == 1

    def test_watch_once(self, capsys):
        assert main(["watch", "--once", "--writes", "10"]) == 0
        out = capsys.readouterr().out
        assert "replication health" in out
        assert "pub -> sub" in out
        assert "[OK]" in out
        assert "flight recorder" in out

    def test_watch_once_prometheus(self, capsys):
        assert main(["watch", "--once", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_broker_routed counter" in out
        assert "repro_monitor_pub_to_sub_lag" in out

    def test_watch_once_json(self, capsys):
        import json

        assert main(["watch", "--once", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["links"][0]["status"] == "ok"
        # 20 ORM writes plus the round's writes//5 = 4 raw CDC writes.
        assert payload["metrics"]["broker.routed"] == 24

    def test_help_mentions_repair_and_watch(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "repair --demo" in out
        assert "watch" in out
        assert "flow --demo" in out
