"""Decorators, ephemerals, observers and virtual attributes (§3.1, §3.3)."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import PostgresLike
from repro.errors import DecoratorViolation, SynapseError
from repro.orm import (
    BelongsTo,
    Field,
    Model,
    VirtualField,
    after_create,
    after_destroy,
)


@pytest.fixture
def eco():
    return Ecosystem()


def make_user_publisher(eco, extra_fields=()):
    pub = eco.service("pub1", database=MongoLike("pub-db"))
    fields = {"name": Field(str)}
    for name in extra_fields:
        fields[name] = Field(str)

    namespace = dict(fields)
    User = type("User", (Model,), namespace)
    pub.model(publish=list(fields))(User)
    return pub, User


class TestDecorators:
    def build_decorator(self, eco):
        """The Fig 3 Dec2 service: subscribes name, publishes interests."""
        make_user_publisher(eco)
        dec = eco.service("dec2", database=MongoLike("dec-db"))

        @dec.model(
            subscribe={"from": "pub1", "fields": ["name"]},
            publish=["interests"],
        )
        class User(Model):
            name = Field(str)
            interests = Field(list, default=list)

        return dec, User

    def test_decorated_attribute_flows_downstream(self, eco):
        dec, DecUser = self.build_decorator(eco)
        sub2 = eco.service("sub2", database=PostgresLike("sub2-db"))

        @sub2.model(
            subscribe=[
                {"from": "pub1", "fields": ["name"]},
                {"from": "dec2", "fields": ["interests"]},
            ]
        )
        class User(Model):
            name = Field(str)
            interests = Field(list, default=list)

        pub_user_cls = eco.services["pub1"].registry["User"]
        user = pub_user_cls.create(name="ada")
        eco.drain_all()
        # Decorator enriches the model...
        with dec.controller():
            dec_user = DecUser.find(user.id)
            dec_user.interests = ["cats"]
            dec_user.save()
        eco.drain_all()
        merged = User.find(user.id)
        assert merged.name == "ada"
        assert merged.interests == ["cats"]

    def test_decorator_cannot_create_instances(self, eco):
        dec, DecUser = self.build_decorator(eco)
        with pytest.raises(DecoratorViolation):
            with DecUser._suspend_readonly_guard():
                DecUser.create(name="rogue", interests=[])

    def test_decorator_cannot_delete_instances(self, eco):
        dec, DecUser = self.build_decorator(eco)
        pub_user_cls = eco.services["pub1"].registry["User"]
        user = pub_user_cls.create(name="ada")
        eco.drain_all()
        with pytest.raises(DecoratorViolation):
            DecUser.find(user.id).destroy()

    def test_decorator_cannot_update_subscribed_attributes(self, eco):
        from repro.errors import ReadOnlyAttributeError

        dec, DecUser = self.build_decorator(eco)
        pub_user_cls = eco.services["pub1"].registry["User"]
        user = pub_user_cls.create(name="ada")
        eco.drain_all()
        dec_user = DecUser.find(user.id)
        with pytest.raises(ReadOnlyAttributeError):
            dec_user.name = "hacked"

    def test_decorator_cannot_republish_subscribed_attributes(self, eco):
        make_user_publisher(eco)
        dec = eco.service("dec2", database=MongoLike("dec-db"))
        with pytest.raises(DecoratorViolation):
            @dec.model(
                subscribe={"from": "pub1", "fields": ["name"]},
                publish=["name", "interests"],
            )
            class User(Model):
                name = Field(str)
                interests = Field(list, default=list)

    def test_decorator_message_carries_external_dependency(self, eco):
        """Downstream subscribers wait for the origin data to land before
        applying decorations read from it (§4.2)."""
        dec, DecUser = self.build_decorator(eco)
        pub_user_cls = eco.services["pub1"].registry["User"]
        user = pub_user_cls.create(name="ada")
        eco.drain_all()
        probe = eco.broker.bind("probe", "dec2")
        with dec.controller():
            dec_user = DecUser.find(user.id)
            dec_user.interests = ["cats"]
            dec_user.save()
        msg = probe.pop()
        assert msg.external_dependencies == {"pub1/users/id/1": 1}
        assert "dec2/users/id/1" in msg.dependencies


class TestEphemerals:
    def test_ephemeral_publishes_without_persisting(self, eco):
        """User actions stream: front-end publishes, analytics stores."""
        front = eco.service("frontend")  # no database at all

        @front.model(publish=["kind", "target"], ephemeral=True)
        class UserAction(Model):
            kind = Field(str)
            target = Field(str)

        analytics = eco.service("analytics", database=MongoLike("an-db"))

        @analytics.model(subscribe={"from": "frontend", "fields": ["kind", "target"]})
        class UserAction(Model):  # noqa: F811
            kind = Field(str)
            target = Field(str)

        front_cls = front.registry["UserAction"]
        front_cls.create(kind="click", target="buy-button")
        front_cls.create(kind="search", target="cats")
        eco.drain_all()
        stored = analytics.registry["UserAction"].all()
        assert {a.kind for a in stored} == {"click", "search"}
        # Nothing persisted on the ephemeral side.
        assert front_cls.count() == 0

    def test_ephemeral_cannot_subscribe(self, eco):
        front = eco.service("frontend")
        with pytest.raises(SynapseError):
            front.model(subscribe={"from": "x", "fields": []}, ephemeral=True)

    def test_dbless_service_requires_ephemeral_or_observer(self, eco):
        svc = eco.service("dbless")
        with pytest.raises(SynapseError):
            @svc.model(publish=["name"])
            class User(Model):
                name = Field(str)


class TestObservers:
    def test_fig5_friendship_edges(self, eco):
        """Example 2: SQL friendships become Neo4j edges via an observer."""
        pub = eco.service("pub2", database=PostgresLike("pub2-db"))

        @pub.model(publish=["name", "likes"])
        class User(Model):
            name = Field(str)
            likes = Field(list, default=list)

        @pub.model(publish=["user1_id", "user2_id"])
        class Friendship(Model):
            user1 = BelongsTo("User")
            user2 = BelongsTo("User")

        sub = eco.service("sub2", database=Neo4jLike("neo"))
        neo = sub.database

        @sub.model(subscribe={"from": "pub2", "fields": ["name", "likes"]},
                   name="User")
        class SubUser(Model):
            name = Field(str)
            likes = Field(list, default=list)

        @sub.model(
            subscribe={"from": "pub2", "fields": ["user1_id", "user2_id"]},
            observer=True,
        )
        class Friendship(Model):  # noqa: F811
            user1_id = Field(int)
            user2_id = Field(int)

            @after_create
            def add_edge(self):
                neo.create_edge(self.user1_id, "friend", self.user2_id,
                                directed=False)

            @after_destroy
            def remove_edge(self):
                neo.delete_edge(self.user1_id, "friend", self.user2_id,
                                directed=False)

        pub_user = pub.registry["User"]
        pub_friend = pub.registry["Friendship"]
        a = pub_user.create(name="a")
        b = pub_user.create(name="b")
        friendship = pub_friend.create(user1_id=a.id, user2_id=b.id)
        eco.drain_all()
        assert neo.has_edge(a.id, "friend", b.id)
        assert neo.has_edge(b.id, "friend", a.id)
        # Friendship rows are NOT persisted as nodes.
        assert neo.count_nodes("Friendship") == 0
        # Unfriending removes the edge.
        friendship.destroy()
        eco.drain_all()
        assert not neo.has_edge(a.id, "friend", b.id)

    def test_observer_cannot_publish(self, eco):
        svc = eco.service("svc", database=MongoLike("m"))
        with pytest.raises(SynapseError):
            svc.model(publish=["x"], observer=True)


class TestVirtualAttributes:
    def test_example3_interest_rows(self, eco):
        """Fig 7 Sub3b: a Mongo array lands as one SQL row per element."""
        pub = eco.service("pub3", database=MongoLike("pub3-db"))

        @pub.model(publish=["interests"])
        class User(Model):
            interests = Field(list, default=list)

        sub = eco.service("sub3b", database=PostgresLike("sub3b-db"))

        @sub.model()
        class Interest(Model):
            user_id = Field(int)
            tag = Field(str)

        @sub.model(
            subscribe={"from": "pub3", "fields": {"interests": "interests_virt"}},
            name="User",
        )
        class SubUser(Model):
            interests_virt = VirtualField()

            def interests_virt_set(self, tags):
                Interest.where(user_id=self.id)  # ensure table exists
                for row in Interest.where(user_id=self.id):
                    if row.tag not in tags:
                        row.destroy()
                existing = {r.tag for r in Interest.where(user_id=self.id)}
                for tag in tags:
                    if tag not in existing:
                        Interest.create(user_id=self.id, tag=tag)

            def interests_virt_get(self):
                return [r.tag for r in Interest.where(user_id=self.id)]

        pub_user = pub.registry["User"]
        user = pub_user.create(interests=["cats", "dogs"])
        eco.drain_all()
        assert {r.tag for r in Interest.all()} == {"cats", "dogs"}
        # Removing an interest deletes its row.
        user.update(interests=["cats"])
        eco.drain_all()
        assert {r.tag for r in Interest.all()} == {"cats"}

    def test_published_virtual_attribute_uses_getter(self, eco):
        pub = eco.service("pub", database=MongoLike("m"))

        @pub.model(publish=["name", "display_name"])
        class User(Model):
            name = Field(str)
            display_name = VirtualField()

            def display_name_get(self):
                return (self.name or "").title()

        probe = eco.broker.bind("probe", "pub")
        User.create(name="ada lovelace")
        msg = probe.pop()
        assert msg.operations[0]["attributes"]["display_name"] == "Ada Lovelace"


class TestPolymorphicModels:
    def test_subscriber_consumes_base_type(self, eco):
        """Publisher writes a subclass; subscriber knows only the base."""
        pub = eco.service("pub", database=MongoLike("m"))

        @pub.model(publish=["name"])
        class Animal(Model):
            name = Field(str)

        @pub.model(publish=["name"])
        class Dog(Animal):
            pass

        sub = eco.service("sub", database=MongoLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]})
        class Animal(Model):  # noqa: F811
            name = Field(str)

        pub.registry["Dog"].create(name="rex")
        sub.subscriber.drain()
        assert sub.registry["Animal"].count() == 1
