"""Service.stats(): the operational counter surface."""

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model


class TestServiceStats:
    def test_counters_track_traffic(self):
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("p"))

        @pub.model(publish=["name"])
        class User(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
        class SubUser(Model):
            name = Field(str)

        for i in range(5):
            User.create(name=f"u{i}")
        pub_stats = pub.stats()
        assert pub_stats["messages_published"] == 5
        assert pub_stats["publish_overhead_mean_ms"] > 0
        sub_stats = sub.stats()
        assert sub_stats["queue_depth"] == 5
        sub.subscriber.drain()
        sub_stats = sub.stats()
        assert sub_stats["messages_processed"] == 5
        assert sub_stats["queue_depth"] == 0
        assert sub_stats["generation"] == 1
        assert not sub_stats["bootstrapping"]

    def test_stats_for_publisher_only_service(self):
        eco = Ecosystem()
        svc = eco.service("solo", database=MongoLike("m"))
        stats = svc.stats()
        assert stats["queue_depth"] == 0
        assert stats["messages_published"] == 0
