"""Per-publisher delivery-mode selection rules (§3.2)."""

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import SubscriptionError
from repro.orm import Field, Model


def make_two_model_publisher(eco, mode="causal"):
    pub = eco.service("pub", database=MongoLike("p"), delivery_mode=mode)

    @pub.model(publish=["a"])
    class Alpha(Model):
        a = Field(int)

    @pub.model(publish=["b"])
    class Beta(Model):
        b = Field(int)

    return pub


class TestPerPublisherModes:
    def test_conflicting_modes_for_one_publisher_rejected(self):
        eco = Ecosystem()
        make_two_model_publisher(eco)
        sub = eco.service("sub", database=PostgresLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["a"], "mode": "causal"},
                   name="Alpha")
        class SubAlpha(Model):
            a = Field(int)

        with pytest.raises(SubscriptionError):
            @sub.model(subscribe={"from": "pub", "fields": ["b"],
                                  "mode": "weak"}, name="Beta")
            class SubBeta(Model):
                b = Field(int)

    def test_same_mode_for_both_models_fine(self):
        eco = Ecosystem()
        make_two_model_publisher(eco)
        sub = eco.service("sub", database=PostgresLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["a"], "mode": "weak"},
                   name="Alpha")
        class SubAlpha(Model):
            a = Field(int)

        @sub.model(subscribe={"from": "pub", "fields": ["b"], "mode": "weak"},
                   name="Beta")
        class SubBeta(Model):
            b = Field(int)

        assert sub.subscriber.app_modes["pub"] == "weak"

    def test_different_modes_for_different_publishers_fine(self):
        """The Crowdtap pattern: causal from one app, weak from another."""
        eco = Ecosystem()
        make_two_model_publisher(eco)
        other = eco.service("other", database=MongoLike("o"))

        @other.model(publish=["c"])
        class Gamma(Model):
            c = Field(int)

        sub = eco.service("sub", database=PostgresLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["a"],
                              "mode": "causal"}, name="Alpha")
        class SubAlpha(Model):
            a = Field(int)

        @sub.model(subscribe={"from": "other", "fields": ["c"],
                              "mode": "weak"}, name="Gamma")
        class SubGamma(Model):
            c = Field(int)

        assert sub.subscriber.app_modes == {"pub": "causal", "other": "weak"}

    def test_unsubscribed_model_messages_still_advance_dependencies(self):
        """A subscriber taking only Alpha must still count Beta's
        messages, or cross-model causal chains would deadlock."""
        eco = Ecosystem()
        pub = make_two_model_publisher(eco)
        Alpha, Beta = pub.registry["Alpha"], pub.registry["Beta"]
        sub = eco.service("sub", database=PostgresLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["a"]}, name="Alpha")
        class SubAlpha(Model):
            a = Field(int)

        with pub.controller():
            Beta.create(b=1)          # chained: alpha depends on beta's write
            Alpha.create(a=1)
        assert sub.subscriber.drain() == 2
        assert sub.registry["Alpha"].count() == 1
