"""End-to-end publish/subscribe integration (Figs 1 and 4 of the paper)."""

import pytest

from repro.core import Ecosystem
from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import MySQLLike, PostgresLike
from repro.databases.search import ElasticsearchLike, Match
from repro.errors import (
    DeliveryModeError,
    PublicationError,
    ReadOnlyAttributeError,
    SubscriptionError,
    SynapseError,
)
from repro.orm import Field, Model


@pytest.fixture
def eco():
    return Ecosystem()


def make_publisher(eco, name="pub1", db=None, mode="causal"):
    service = eco.service(name, database=db or MongoLike(f"{name}-db"),
                          delivery_mode=mode)

    @service.model(publish=["name"])
    class User(Model):
        name = Field(str)

    return service, User


def make_subscriber(eco, name="sub1", db=None, from_app="pub1", mode=None):
    service = eco.service(name, database=db or PostgresLike(f"{name}-db"))
    spec = {"from": from_app, "fields": ["name"]}
    if mode is not None:
        spec["mode"] = mode

    @service.model(subscribe=spec)
    class User(Model):
        name = Field(str)

    return service, User


class TestFig1BasicIntegration:
    def test_create_propagates(self, eco):
        pub, PubUser = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        PubUser.create(name="ada")
        assert sub.subscriber.drain() == 1
        users = SubUser.all()
        assert len(users) == 1
        assert users[0].name == "ada"

    def test_ids_preserved_across_services(self, eco):
        pub, PubUser = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        user = PubUser.create(name="ada")
        sub.subscriber.drain()
        assert SubUser.find(user.id).name == "ada"

    def test_update_propagates(self, eco):
        pub, PubUser = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        user = PubUser.create(name="ada")
        user.update(name="lovelace")
        sub.subscriber.drain()
        assert SubUser.find(user.id).name == "lovelace"

    def test_delete_propagates(self, eco):
        pub, PubUser = make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        user = PubUser.create(name="ada")
        sub.subscriber.drain()
        user.destroy()
        sub.subscriber.drain()
        assert SubUser.count() == 0

    def test_unpublished_fields_not_shipped(self, eco):
        pub = eco.service("pub1", database=MongoLike("m"))

        @pub.model(publish=["name"])
        class User(Model):
            name = Field(str)
            secret = Field(str)

        sub, SubUser = make_subscriber(eco)
        User.create(name="ada", secret="hunter2")
        sub.subscriber.drain()
        queue_msg_attrs = SubUser.all()[0].to_attributes()
        assert "secret" not in queue_msg_attrs

    def test_unpublished_model_writes_produce_no_messages(self, eco):
        pub = eco.service("pub1", database=MongoLike("m"))

        @pub.model(publish=["name"])
        class User(Model):
            name = Field(str)

        @pub.model()
        class Internal(Model):
            data = Field(str)

        sub, SubUser = make_subscriber(eco)
        Internal.create(data="x")
        assert pub.publisher.messages_published == 0
        User.create(name="a")
        assert pub.publisher.messages_published == 1


class TestFig4HeterogeneousFanout:
    """One MongoDB publisher, three different subscriber engines."""

    def test_fanout_to_sql_search_and_mongo(self, eco):
        pub, PubUser = make_publisher(eco)  # MongoDB
        sub_sql, SqlUser = make_subscriber(eco, "sub1a", PostgresLike("pg"))
        sub_es_service = eco.service("sub1b", database=ElasticsearchLike("es"))

        @sub_es_service.model(subscribe={"from": "pub1", "fields": ["name"]})
        class User(Model):
            __analyzers__ = {"name": "simple"}
            name = Field(str)

        sub_mongo, MongoUser = make_subscriber(eco, "sub1c", MongoLike("m2"))

        PubUser.create(name="Ada Lovelace")
        eco.drain_all()
        assert SqlUser.count() == 1
        assert MongoUser.count() == 1
        es = sub_es_service.database
        assert len(es.search("users", Match("name", "ada"))) == 1

    def test_all_engine_pairs_smoke(self, eco):
        """Table 1: every engine family can publish to every other."""
        engines = {
            "pg": PostgresLike("pg0"),
            "my": MySQLLike("my0"),
            "mongo": MongoLike("mo0"),
            "cass": CassandraLike("ca0"),
            "es": ElasticsearchLike("es0"),
        }
        pub, PubUser = make_publisher(eco, db=engines["pg"])
        subs = []
        for key, db in list(engines.items())[1:]:
            subs.append(make_subscriber(eco, f"sub-{key}", db))
        # Neo4j as subscriber too
        subs.append(make_subscriber(eco, "sub-neo", Neo4jLike("neo0")))
        PubUser.create(name="ada")
        eco.drain_all()
        for service, SubUser in subs:
            assert SubUser.count() == 1, service.name


class TestDeclarationChecks:
    def test_subscribe_before_publisher_deployed_rejected(self, eco):
        sub = eco.service("sub1", database=PostgresLike("pg"))
        with pytest.raises(SubscriptionError):
            @sub.model(subscribe={"from": "ghost", "fields": ["name"]})
            class User(Model):
                name = Field(str)

    def test_subscribe_to_unpublished_attribute_rejected(self, eco):
        make_publisher(eco)
        sub = eco.service("sub1", database=PostgresLike("pg"))
        with pytest.raises(SubscriptionError):
            @sub.model(subscribe={"from": "pub1", "fields": ["name", "email"]})
            class User(Model):
                name = Field(str)
                email = Field(str)

    def test_publish_unknown_attribute_rejected(self, eco):
        pub = eco.service("pub1", database=MongoLike("m"))
        with pytest.raises(PublicationError):
            @pub.model(publish=["nope"])
            class User(Model):
                name = Field(str)

    def test_stronger_subscriber_mode_rejected(self, eco):
        make_publisher(eco, mode="weak")
        with pytest.raises(DeliveryModeError):
            make_subscriber(eco, mode="causal")

    def test_subscribed_attributes_are_read_only(self, eco):
        make_publisher(eco)
        sub, SubUser = make_subscriber(eco)
        with pytest.raises(ReadOnlyAttributeError):
            SubUser(name="nope")

    def test_local_fields_remain_writable_on_subscriber(self, eco):
        make_publisher(eco)
        sub = eco.service("sub1", database=PostgresLike("pg"))

        @sub.model(subscribe={"from": "pub1", "fields": ["name"]})
        class User(Model):
            name = Field(str)
            note = Field(str)

        # name read-only, note writable
        user = User.find_or_initialize(1)
        user.note = "fine"
        with pytest.raises(ReadOnlyAttributeError):
            user.name = "nope"

    def test_duplicate_service_name_rejected(self, eco):
        eco.service("dup")
        with pytest.raises(SynapseError):
            eco.service("dup")


class TestSubscriberCallbacks:
    def test_after_create_fires_on_remote_create(self, eco):
        """The Fig 2 mailer pattern."""
        make_publisher(eco)
        sub = eco.service("mailer", database=MongoLike("mail-db"))
        sent = []

        from repro.orm import after_create

        @sub.model(subscribe={"from": "pub1", "fields": ["name"]})
        class User(Model):
            name = Field(str)

            @after_create
            def send_welcome(self):
                if not type(self)._service.bootstrap_active:
                    sent.append(self.name)

        pub_user_cls = eco.services["pub1"].registry["User"]
        pub_user_cls.create(name="ada")
        sub.subscriber.drain()
        assert sent == ["ada"]

    def test_update_callback_distinct_from_create(self, eco):
        pub, PubUser = make_publisher(eco)
        sub = eco.service("sub1", database=MongoLike("s-db"))
        events = []

        from repro.orm import after_create, after_update

        @sub.model(subscribe={"from": "pub1", "fields": ["name"]})
        class User(Model):
            name = Field(str)

            @after_create
            def on_create(self):
                events.append(("create", self.name))

            @after_update
            def on_update(self):
                events.append(("update", self.name))

        user = PubUser.create(name="a")
        user.update(name="b")
        sub.subscriber.drain()
        assert events == [("create", "a"), ("update", "b")]


class TestMessageFormat:
    def test_fig6b_wire_format(self, eco):
        """Messages carry app, operations (with type chain), dependencies,
        published_at and generation — the Fig 6(b) schema."""
        pub, PubUser = make_publisher(eco)
        queue = eco.broker.bind("inspector", "pub1")
        PubUser.create(name="ada")
        message = queue.pop()
        assert message.app == "pub1"
        op = message.operations[0]
        assert op["operation"] == "create"
        assert op["types"] == ["User"]
        assert op["id"] == 1
        assert op["attributes"] == {"name": "ada"}
        assert message.dependencies == {"pub1/users/id/1": 0}
        assert message.generation == 1
        assert message.published_at > 0
