"""Multi-level decorator cascades (the §3.1 "complex ecosystems ...
subscribe to data from each other, enhance it, and publish it further")."""


from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model, after_create, after_update


def build_chain(eco):
    """origin -> enricher1 (adds score) -> enricher2 (adds grade) -> sink."""
    origin = eco.service("origin", database=MongoLike("o"))

    @origin.model(publish=["text"])
    class Item(Model):
        text = Field(str)

    enricher1 = eco.service("enricher1", database=MongoLike("e1"))

    @enricher1.model(
        subscribe={"from": "origin", "fields": ["text"]},
        publish=["score"],
        name="Item",
    )
    class ScoredItem(Model):
        text = Field(str)
        score = Field(int)

        @after_create
        def compute(self):
            with enricher1.background_job():
                mine = type(self).find(self.id)
                mine.score = len(self.text or "")
                mine.save()

    enricher2 = eco.service("enricher2", database=MongoLike("e2"))

    @enricher2.model(
        subscribe=[
            {"from": "origin", "fields": ["text"]},
            {"from": "enricher1", "fields": ["score"]},
        ],
        publish=["grade"],
        name="Item",
    )
    class GradedItem(Model):
        text = Field(str)
        score = Field(int)
        grade = Field(str)

        @after_create
        @after_update
        def compute(self):
            if self.score is None or self.grade is not None:
                return
            with enricher2.background_job():
                mine = type(self).find(self.id)
                mine.grade = "long" if (mine.score or 0) > 10 else "short"
                mine.save()

    sink = eco.service("sink", database=PostgresLike("s"))

    @sink.model(
        subscribe=[
            {"from": "origin", "fields": ["text"]},
            {"from": "enricher1", "fields": ["score"]},
            {"from": "enricher2", "fields": ["grade"]},
        ],
        name="Item",
    )
    class SinkItem(Model):
        text = Field(str)
        score = Field(int)
        grade = Field(str)

    return origin.registry["Item"], sink.registry["Item"]


class TestThreeLevelCascade:
    def test_enrichments_accumulate_at_the_sink(self):
        eco = Ecosystem()
        Item, SinkItem = build_chain(eco)
        Item.create(text="a rather long piece of text")
        Item.create(text="short")
        eco.drain_all()
        rows = {i.text: i for i in SinkItem.all()}
        long_row = rows["a rather long piece of text"]
        assert long_row.score == len("a rather long piece of text")
        assert long_row.grade == "long"
        assert rows["short"].grade == "short"

    def test_cascade_updates_flow_through(self):
        eco = Ecosystem()
        Item, SinkItem = build_chain(eco)
        item = Item.create(text="tiny")
        eco.drain_all()
        assert SinkItem.find(item.id).grade == "short"

    def test_external_dependencies_propagate_down_the_chain(self):
        """enricher2's messages carry external deps on both upstream
        apps, so the sink orders the whole chain correctly."""
        eco = Ecosystem()
        Item, SinkItem = build_chain(eco)
        probe = eco.broker.bind("probe", "enricher2")
        Item.create(text="hello world, this is long enough")
        eco.drain_all()
        messages = []
        while True:
            message = probe.pop()
            if message is None:
                break
            messages.append(message)
        grade_updates = [
            m for m in messages
            if m.operations[0]["attributes"].get("grade") is not None
        ]
        assert grade_updates
        externals = grade_updates[-1].external_dependencies
        assert any(dep.startswith("enricher1/") for dep in externals)


class TestNestedControllers:
    def test_inner_scope_tracks_independently(self):
        eco = Ecosystem()
        svc = eco.service("svc", database=MongoLike("m"))

        @svc.model(publish=["n"])
        class Thing(Model):
            n = Field(int)

        probe = eco.broker.bind("probe", "svc")
        with svc.controller():
            Thing.create(n=1)
            with svc.controller():
                # Fresh inner scope: no chaining from the outer write.
                Thing.create(n=2)
            Thing.create(n=3)
        m1, m2, m3 = probe.pop(), probe.pop(), probe.pop()
        assert "svc/things/id/1" not in m2.dependencies
        # The outer scope's chain survived the inner scope.
        assert "svc/things/id/1" in m3.dependencies
