"""End-to-end tracing of the publish->route->apply pipeline."""

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.runtime.tracing import (
    MARK_ACKED,
    STAGE_APPLY,
    STAGE_COLLECT,
    STAGE_DEP_WAIT,
    STAGE_DWELL,
    STAGE_ENGINE_WRITE,
    STAGE_INTERCEPT,
    STAGE_REGISTER,
    STAGE_ROUTE,
    Trace,
    format_trace,
)
from repro.runtime.workers import SubscriberWorkerPool


def build(eco, pub_db=None):
    pub = eco.service("pub", database=pub_db or MongoLike("p"))

    @pub.model(publish=["name"], name="User")
    class User(Model):
        name = Field(str)

    sub = eco.service("sub", database=PostgresLike("s"))

    @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
    class SubUser(Model):
        name = Field(str)

    return pub, sub, pub.registry["User"], sub.registry["User"]


class TestTracingDisabled:
    def test_no_trace_attached_by_default(self):
        eco = Ecosystem()
        pub, sub, User, SubUser = build(eco)
        probe = eco.broker.bind("probe", "pub")
        User.create(name="ada")
        message = probe.pop()
        assert message.trace is None
        assert eco.tracer.last() is None


class TestTracingEnabled:
    def test_single_write_covers_every_stage(self):
        eco = Ecosystem()
        pub, sub, User, SubUser = build(eco)
        eco.enable_tracing()
        with pub.controller():
            User.create(name="ada")
        assert sub.subscriber.drain() == 1
        trace = eco.tracer.last()
        assert trace is not None and trace.app == "pub"
        stages = set(trace.stages())
        assert {
            STAGE_INTERCEPT,
            STAGE_COLLECT,
            STAGE_REGISTER,
            STAGE_ENGINE_WRITE,
            STAGE_ROUTE,
            STAGE_DWELL,
            STAGE_DEP_WAIT,
            STAGE_APPLY,
        } <= stages
        assert all(span.duration >= 0 for span in trace.spans)
        # The intercept span subsumes collection, registration and the
        # engine write.
        assert trace.duration(STAGE_INTERCEPT) >= (
            trace.duration(STAGE_COLLECT)
            + trace.duration(STAGE_REGISTER)
            + trace.duration(STAGE_ENGINE_WRITE)
        )

    def test_trace_survives_wire_round_trip(self):
        trace = Trace(app="pub")
        trace.add("publisher.intercept", 1.0, 0.5)
        trace.mark("queue.enqueued", 2.0)
        restored = Trace.from_dict(trace.to_dict())
        assert restored.app == "pub"
        assert restored.stages() == ["publisher.intercept"]
        assert restored.spans[0].duration == 0.5
        assert restored.marks["queue.enqueued"] == 2.0

    def test_ack_marked_under_threaded_workers(self):
        eco = Ecosystem()
        pub, sub, User, SubUser = build(eco)
        eco.enable_tracing()
        with SubscriberWorkerPool(sub, workers=2) as pool:
            for i in range(3):
                User.create(name=f"u{i}")
            assert pool.wait_until_idle(timeout=10)
        traces = eco.tracer.finished()
        assert len(traces) == 3
        for trace in traces:
            assert STAGE_APPLY in trace.stages()
            assert MARK_ACKED in trace.marks

    def test_transactional_publish_is_traced(self):
        eco = Ecosystem()
        pub, sub, User, SubUser = build(eco, pub_db=PostgresLike("p"))
        eco.enable_tracing()
        with pub.database.begin():
            User.create(name="a")
            User.create(name="b")
        assert sub.subscriber.drain() == 1
        trace = eco.tracer.last()
        stages = set(trace.stages())
        assert {STAGE_INTERCEPT, STAGE_COLLECT, STAGE_REGISTER, STAGE_APPLY} <= stages

    def test_format_trace_renders_all_spans(self):
        eco = Ecosystem()
        pub, sub, User, SubUser = build(eco)
        eco.enable_tracing()
        User.create(name="ada")
        sub.subscriber.drain()
        lines = format_trace(eco.tracer.last())
        text = "\n".join(lines)
        assert "publisher.intercept" in text
        assert "queue.dwell" in text
        assert "total" in lines[-1]

    def test_tracer_capacity_bounds_memory(self):
        eco = Ecosystem()
        pub, sub, User, SubUser = build(eco)
        eco.tracer._finished.clear()
        eco.enable_tracing()
        for i in range(5):
            User.create(name=f"u{i}")
        sub.subscriber.drain()
        assert len(eco.tracer.finished()) == 5
        eco.tracer.clear()
        assert eco.tracer.last() is None
