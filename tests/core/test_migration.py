"""Live schema migration rules (§4.3) and DB-swap migration (§6.5)."""

import pytest

from repro.core import Ecosystem
from repro.core.migration import LiveMigrator, replicate_service
from repro.databases.document import MongoLike, TokuMXLike
from repro.databases.relational import PostgresLike
from repro.errors import MigrationError
from repro.orm import Field, Model


@pytest.fixture
def eco():
    return Ecosystem()


def build_pub(eco, db=None):
    pub = eco.service("pub", database=db or PostgresLike("pub-db"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)
        internal = Field(str)

    return pub, User


class TestRule1Isolation:
    def test_dropping_published_column_requires_virtual_shadow(self, eco):
        pub, User = build_pub(eco)
        migrator = LiveMigrator(pub)
        with pytest.raises(MigrationError):
            migrator.drop_published_column(User, "name")

    def test_drop_after_shadowing_keeps_subscribers_working(self, eco):
        pub, User = build_pub(eco)
        sub = eco.service("sub", database=MongoLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
        class SubUser(Model):
            name = Field(str)

        migrator = LiveMigrator(pub)
        # New storage: name derived from internal; the published surface
        # is unchanged.
        migrator.shadow_with_virtual(
            User, "name", getter=lambda self: (self.internal or "").upper()
        )
        migrator.drop_published_column(User, "name")
        User.create(internal="ada")
        sub.subscriber.drain()
        assert sub.registry["User"].all()[0].name == "ADA"

    def test_unpublished_column_drops_freely(self, eco):
        pub, User = build_pub(eco)
        LiveMigrator(pub).drop_published_column(User, "internal")
        assert "internal" not in User._fields


class TestRule2TypeStability:
    def test_published_attribute_type_frozen(self, eco):
        pub, User = build_pub(eco)
        with pytest.raises(MigrationError):
            LiveMigrator(pub).change_attribute_type(User, "name", int)

    def test_unpublished_attribute_type_changeable(self, eco):
        pub, User = build_pub(eco)
        LiveMigrator(pub).change_attribute_type(User, "internal", int)
        assert User._fields["internal"].py_type is int

    def test_unknown_field_rejected(self, eco):
        pub, User = build_pub(eco)
        with pytest.raises(MigrationError):
            LiveMigrator(pub).change_attribute_type(User, "ghost", int)


class TestRule3AdditiveEvolution:
    def test_publish_new_attribute_then_backfill(self, eco):
        pub, User = build_pub(eco)
        sub = eco.service("sub", database=MongoLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="User")
        class SubUser(Model):
            name = Field(str)
            internal = Field(str)

        User.create(name="ada", internal="secret")
        sub.subscriber.drain()
        # Publisher deploys the new attribute first (rule 3)...
        LiveMigrator(pub).publish_new_attribute(User, "internal")
        assert "internal" in eco.broker.published_fields("pub", "User")
        # ...then the subscriber redeploys with the wider subscription.
        spec = sub.subscriber.specs[("pub", "User")]
        spec.fields["internal"] = "internal"
        # Partial bootstrap back-fills existing objects.
        LiveMigrator.backfill(sub, "pub")
        assert sub.registry["User"].all()[0].internal == "secret"

    def test_publishing_unknown_attribute_rejected(self, eco):
        pub, User = build_pub(eco)
        with pytest.raises(MigrationError):
            LiveMigrator(pub).publish_new_attribute(User, "ghost")

    def test_publish_new_attribute_idempotent(self, eco):
        pub, User = build_pub(eco)
        migrator = LiveMigrator(pub)
        migrator.publish_new_attribute(User, "internal")
        migrator.publish_new_attribute(User, "internal")
        fields = eco.broker.published_fields("pub", "User")
        assert fields.count("internal") == 1


class TestCrowdtapDBSwap:
    def test_replicate_service_mirrors_all_models_live(self, eco):
        """§6.5: MongoDB -> TokuMX migration with no downtime."""
        pub, User = build_pub(eco, db=MongoLike("main-mongo"))
        for i in range(5):
            User.create(name=f"u{i}", internal="x")
        clone = replicate_service(eco, "pub", "pub-tokumx", TokuMXLike("toku"))
        CloneUser = clone.registry["User"]
        assert CloneUser.count() == 5
        # Still synchronised while both run (dual-run QA window).
        User.create(name="during-qa", internal="x")
        clone.subscriber.drain()
        assert CloneUser.count() == 6
        # The clone's data lives on the new engine.
        assert clone.database.engine_family == "tokumx"

    def test_replicate_unknown_source_rejected(self, eco):
        with pytest.raises(MigrationError):
            replicate_service(eco, "ghost", "clone", MongoLike("m"))
