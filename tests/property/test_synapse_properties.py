"""Property-based tests on the Synapse replication invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.kv import RedisLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.versionstore import (
    PublisherVersionStore,
    ShardedKV,
    SubscriberVersionStore,
)

# ---------------------------------------------------------------------------
# Version-store algorithm properties
# ---------------------------------------------------------------------------

OBJECTS = ["a", "b", "c", "d"]

operations = st.lists(
    st.tuples(
        st.sets(st.sampled_from(OBJECTS), max_size=2),   # read deps
        st.sets(st.sampled_from(OBJECTS), min_size=1, max_size=2),  # write deps
    ),
    min_size=1,
    max_size=25,
)


def publish_all(ops):
    """Run the publisher algorithm; returns the per-op dependency maps."""
    store = PublisherVersionStore(ShardedKV([RedisLike("p")]))
    messages = []
    for read_deps, write_deps in ops:
        reads = sorted(read_deps - write_deps)
        messages.append(store.register_operation(reads, sorted(write_deps)))
    return messages


class TestVersionStoreAlgorithm:
    @given(ops=operations)
    @settings(max_examples=80, deadline=None)
    def test_publish_order_is_always_processable(self, ops):
        """Delivering in publish order never blocks a subscriber."""
        messages = publish_all(ops)
        sub = SubscriberVersionStore(ShardedKV([RedisLike("s")]))
        for deps in messages:
            assert sub.satisfied(deps), (deps, messages)
            sub.apply(deps)

    @given(ops=operations, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=80, deadline=None)
    def test_any_greedy_dependency_respecting_order_drains(self, ops, seed):
        """From any delivery permutation, greedily applying whatever is
        satisfied always drains the backlog (no artificial deadlock) and
        ends with identical counters."""
        import random

        messages = publish_all(ops)
        reference = SubscriberVersionStore(ShardedKV([RedisLike("r")]))
        for deps in messages:
            reference.apply(deps)

        rng = random.Random(seed)
        shuffled = list(messages)
        rng.shuffle(shuffled)
        sub = SubscriberVersionStore(ShardedKV([RedisLike("s")]))
        pending = shuffled
        while pending:
            ready = [m for m in pending if sub.satisfied(m)]
            assert ready, "greedy deadlock despite complete delivery"
            for deps in ready:
                sub.apply(deps)
            pending = [m for m in pending if m not in ready]
        for obj in OBJECTS:
            assert sub.ops(obj) == reference.ops(obj)

    @given(ops=operations)
    @settings(max_examples=80, deadline=None)
    def test_write_versions_strictly_increase_per_object(self, ops):
        messages = publish_all(ops)
        last_write_version = {}
        for (read_deps, write_deps), deps in zip(ops, messages):
            for obj in write_deps:
                version = deps[obj]
                if obj in last_write_version:
                    assert version > last_write_version[obj]
                last_write_version[obj] = version

    @given(versions=st.lists(st.integers(min_value=0, max_value=50),
                             min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_weak_fast_forward_converges_to_max(self, versions):
        sub = SubscriberVersionStore(ShardedKV([RedisLike("s")]))
        applied = []
        for version in versions:
            if not sub.is_stale("obj", version):
                applied.append(version)
                sub.fast_forward("obj", version)
        assert sub.ops("obj") == max(versions) + 1
        # Applied versions are non-decreasing: no rollback ever visible.
        assert applied == sorted(applied)


# ---------------------------------------------------------------------------
# End-to-end replication properties
# ---------------------------------------------------------------------------

crud_ops = st.lists(
    st.tuples(
        st.sampled_from(["create", "update", "delete"]),
        st.integers(min_value=0, max_value=5),   # object slot
        st.integers(min_value=0, max_value=99),  # value
    ),
    min_size=1,
    max_size=30,
)


def build_pair():
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["n"], name="Item")
    class Item(Model):
        n = Field(int)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Item")
    class SubItem(Model):
        n = Field(int)

    return eco, pub, Item, sub, sub.registry["Item"]


class TestEndToEndReplication:
    @given(ops=crud_ops)
    @settings(max_examples=40, deadline=None)
    def test_subscriber_converges_to_published_projection(self, ops):
        eco, pub, Item, sub, SubItem = build_pair()
        live = {}
        with pub.controller():
            for kind, slot, value in ops:
                if kind == "create" and slot not in live:
                    live[slot] = Item.create(n=value)
                elif kind == "update" and slot in live:
                    live[slot].update(n=value)
                elif kind == "delete" and slot in live:
                    live[slot].destroy()
                    del live[slot]
        sub.subscriber.drain()
        pub_state = {i.id: i.n for i in Item.all()}
        sub_state = {i.id: i.n for i in SubItem.all()}
        assert sub_state == pub_state

    @given(ops=crud_ops, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_convergence_despite_queue_reordering(self, ops, seed):
        import random

        eco, pub, Item, sub, SubItem = build_pair()
        live = {}
        with pub.controller():
            for kind, slot, value in ops:
                if kind == "create" and slot not in live:
                    live[slot] = Item.create(n=value)
                elif kind == "update" and slot in live:
                    live[slot].update(n=value)
                elif kind == "delete" and slot in live:
                    live[slot].destroy()
                    del live[slot]
        queue = sub.subscriber.queue
        messages = []
        while True:
            message = queue.pop()
            if message is None:
                break
            messages.append(message)
        rng = random.Random(seed)
        rng.shuffle(messages)
        for message in messages:
            queue.nack(message)
        sub.subscriber.drain()
        assert {i.id: i.n for i in SubItem.all()} == \
            {i.id: i.n for i in Item.all()}

    @given(ops=crud_ops, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_weak_subscriber_converges_on_latest_versions(self, ops, seed):
        import random

        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["n"], name="Item")
        class Item(Model):
            n = Field(int)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["n"], "mode": "weak"},
                   name="Item")
        class SubItem(Model):
            n = Field(int)

        live = {}
        for kind, slot, value in ops:
            if kind == "create" and slot not in live:
                live[slot] = Item.create(n=value)
            elif kind == "update" and slot in live:
                live[slot].update(n=value)
        queue = sub.subscriber.queue
        messages = []
        while True:
            message = queue.pop()
            if message is None:
                break
            queue.ack(message)
            messages.append(message)
        random.Random(seed).shuffle(messages)
        for message in messages:
            sub.subscriber.process_message(message)
        # Weak delivery in any order still ends at the latest versions.
        assert {i.id: i.n for i in SubItem.all()} == \
            {i.id: i.n for i in Item.all()}
