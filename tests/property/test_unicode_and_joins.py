"""Unicode round-trips through the whole wire path, and join properties."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import (
    Col,
    Column,
    Integer,
    PostgresLike,
    TableSchema,
    Text,
)
from repro.orm import Field, Model

# Includes combining characters, CJK, emoji, RTL and control-adjacent.
unicode_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),  # no lone surrogates
    max_size=40,
)


class TestUnicodeWirePath:
    @given(name=unicode_text)
    @settings(max_examples=60, deadline=None)
    def test_any_unicode_survives_publish_subscribe(self, name):
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("p"))

        @pub.model(publish=["name"], name="Item")
        class Item(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("s"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Item")
        class SubItem(Model):
            name = Field(str)

        item = Item.create(name=name)
        sub.subscriber.drain()
        assert SubItem.find(item.id).name == name


class TestJoinProperties:
    rows = st.lists(
        st.tuples(st.integers(min_value=1, max_value=5),   # fk
                  st.integers(min_value=0, max_value=9)),  # payload
        min_size=0, max_size=20,
    )
    parents = st.sets(st.integers(min_value=1, max_value=5), min_size=0,
                      max_size=5)

    @given(children=rows, parent_ids=parents)
    @settings(max_examples=60, deadline=None)
    def test_join_equals_nested_loop(self, children, parent_ids):
        db = PostgresLike("p")
        db.create_table(TableSchema("parents", [Column("tag", Text())]))
        db.create_table(
            TableSchema("children",
                        [Column("parent_id", Integer()),
                         Column("n", Integer())])
        )
        for pid in sorted(parent_ids):
            db.insert("parents", {"id": pid, "tag": f"p{pid}"})
        for fk, n in children:
            db.insert("children", {"parent_id": fk, "n": n})
        joined = db.join("parents", "children", on=("id", "parent_id"))
        expected = [
            (p, c)
            for p in db.select("parents")
            for c in db.select("children")
            if c["parent_id"] == p["id"]
        ]
        def key(pair):
            return (pair[0]["id"], pair[1]["id"])

        assert sorted(joined, key=key) == sorted(expected, key=key)

    @given(children=rows)
    @settings(max_examples=40, deadline=None)
    def test_join_with_where_filters_left_side(self, children):
        db = PostgresLike("p")
        db.create_table(TableSchema("parents", [Column("tag", Text())]))
        db.create_table(
            TableSchema("children", [Column("parent_id", Integer())])
        )
        db.insert("parents", {"id": 1, "tag": "keep"})
        db.insert("parents", {"id": 2, "tag": "drop"})
        for fk, _n in children:
            db.insert("children", {"parent_id": 1 if fk % 2 else 2})
        joined = db.join("parents", "children", on=("id", "parent_id"),
                         where=Col("tag") == "keep")
        assert all(p["tag"] == "keep" for p, _c in joined)


class TestDrainBounds:
    def test_drain_all_terminates_with_max_rounds(self):
        eco = Ecosystem()
        assert eco.drain_all(max_rounds=1) == 0

    def test_drain_empty_subscriber(self):
        eco = Ecosystem()
        svc = eco.service("svc", database=MongoLike("m"))
        assert svc.subscriber.drain() == 0
