"""Property: logged batches are atomic and timestamp-consistent."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.databases.columnar import CassandraLike, ColumnFamily

batch_specs = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=0, max_value=99),
        ),
        min_size=1, max_size=5,
    ),
    min_size=1, max_size=10,
)


def replay_reference(batches):
    """Cassandra batch semantics: one timestamp per batch; tombstones win
    timestamp ties, so a delete anywhere in a batch kills the key even if
    a put follows it; among puts, the last written cell wins."""
    reference = {}
    for batch in batches:
        dead = {key for kind, key, _v in batch if kind == "delete"}
        puts = {}
        for kind, key, value in batch:
            if kind == "put":
                puts[key] = value
        for key, value in puts.items():
            if key not in dead:
                reference[key] = value
        for key in dead:
            reference.pop(key, None)
    return reference


class TestBatchAtomicity:
    @given(batches=batch_specs,
           flush_threshold=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_batches_equal_reference_semantics(self, batches, flush_threshold):
        db = CassandraLike("c", flush_threshold=flush_threshold)
        db.create_table(ColumnFamily("t"))
        for batch in batches:
            mutations = []
            for kind, key, value in batch:
                if kind == "put":
                    mutations.append(("put", "t", {"id": key, "v": value}))
                else:
                    mutations.append(("delete", "t", (key,)))
            db.batch(mutations)
        reference = replay_reference(batches)
        for key in range(1, 6):
            row = db.get_by_id("t", key)
            if key in reference:
                assert row is not None and row["v"] == reference[key], key
            else:
                assert row is None, key

    def test_tombstone_wins_timestamp_tie(self):
        """Within one batch (one timestamp), the delete shadows the put —
        Cassandra's tie-break rule."""
        db = CassandraLike("c")
        db.create_table(ColumnFamily("t"))
        db.batch([
            ("delete", "t", (1,)),
            ("put", "t", {"id": 1, "v": 1}),
        ])
        assert db.get_by_id("t", 1) is None
        # A later batch resurrects the key.
        db.batch([("put", "t", {"id": 1, "v": 2})])
        assert db.get_by_id("t", 1) == {"id": 1, "v": 2}
