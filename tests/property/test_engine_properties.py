"""Property-based tests on the storage engines (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.databases.columnar import CassandraLike, ColumnFamily
from repro.databases.document import MongoLike
from repro.databases.relational import (
    Col,
    Column,
    Index,
    Integer,
    PostgresLike,
    TableSchema,
    Text,
)
from repro.databases.search import ElasticsearchLike, Term, analyze
from repro.versionstore import HashRing

# -- strategies -------------------------------------------------------------

names = st.sampled_from(["ada", "bob", "carol", "dave", "erin"])
small_ints = st.integers(min_value=-5, max_value=5)
rows = st.lists(
    st.tuples(names, small_ints), min_size=0, max_size=30
)


class TestRelationalPlanner:
    """The index path and the scan path must agree on every predicate."""

    @staticmethod
    def _build(data, with_index):
        db = PostgresLike("p")
        indexes = [Index("by_name", ["name"])] if with_index else []
        db.create_table(
            TableSchema(
                "users",
                [Column("name", Text()), Column("age", Integer())],
                indexes=indexes,
            )
        )
        for name, age in data:
            db.insert("users", {"name": name, "age": age})
        return db

    @given(data=rows, target=names)
    @settings(max_examples=60, deadline=None)
    def test_index_equals_scan(self, data, target):
        with_idx = self._build(data, True)
        without_idx = self._build(data, False)
        where = Col("name") == target
        a = with_idx.select("users", where=where)
        b = without_idx.select("users", where=where)
        assert a == b
        # And both agree with brute force.
        expected = [r for r in without_idx.select("users") if r["name"] == target]
        assert a == expected

    @given(data=rows, lo=small_ints, hi=small_ints, target=names)
    @settings(max_examples=60, deadline=None)
    def test_compound_predicates_match_python_semantics(self, data, lo, hi, target):
        db = self._build(data, True)
        where = (Col("age") >= lo) & ((Col("age") < hi) | (Col("name") == target))
        got = {r["id"] for r in db.select("users", where=where)}
        expected = {
            r["id"]
            for r in db.select("users")
            if r["age"] >= lo and (r["age"] < hi or r["name"] == target)
        }
        assert got == expected

    @given(data=rows)
    @settings(max_examples=40, deadline=None)
    def test_update_then_select_consistent(self, data):
        db = self._build(data, True)
        db.update("users", Col("age") > 0, {"age": 99})
        assert all(
            r["age"] == 99 for r in db.select("users", where=Col("age") == 99)
        )
        assert not any(
            0 < r["age"] < 99 for r in db.select("users")
        )


class TestColumnarLSM:
    """The LSM read path must behave like a plain dict of latest writes,
    regardless of flush/compaction boundaries."""

    ops = st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=1, max_value=8),   # key
            st.integers(min_value=0, max_value=99),  # value
        ),
        min_size=0,
        max_size=60,
    )

    @given(ops=ops, flush_threshold=st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_model(self, ops, flush_threshold):
        db = CassandraLike("c", flush_threshold=flush_threshold)
        db.create_table(ColumnFamily("t"))
        reference = {}
        for kind, key, value in ops:
            if kind == "put":
                db.put("t", {"id": key, "v": value})
                reference[key] = value
            else:
                db.delete("t", (key,))
                reference.pop(key, None)
        for key in range(1, 9):
            row = db.get_by_id("t", key)
            if key in reference:
                assert row == {"id": key, "v": reference[key]}
            else:
                assert row is None
        assert db.count("t") == len(reference)


class TestDocumentStore:
    docs = st.lists(
        st.fixed_dictionaries(
            {"name": names, "n": small_ints,
             "tags": st.lists(st.sampled_from(["x", "y", "z"]), max_size=3)}
        ),
        min_size=0, max_size=25,
    )

    @given(docs=docs, target=names)
    @settings(max_examples=60, deadline=None)
    def test_find_equals_brute_force(self, docs, target):
        db = MongoLike("m")
        for doc in docs:
            db.insert_one("c", dict(doc))
        got = {d["_id"] for d in db.find("c", {"name": target})}
        expected = {d["_id"] for d in db.find("c") if d["name"] == target}
        assert got == expected

    @given(docs=docs, tag=st.sampled_from(["x", "y", "z"]))
    @settings(max_examples=60, deadline=None)
    def test_array_membership(self, docs, tag):
        db = MongoLike("m")
        for doc in docs:
            db.insert_one("c", dict(doc))
        got = {d["_id"] for d in db.find("c", {"tags": tag})}
        expected = {d["_id"] for d in db.find("c") if tag in d["tags"]}
        assert got == expected

    @given(docs=docs)
    @settings(max_examples=40, deadline=None)
    def test_index_never_changes_results(self, docs):
        plain = MongoLike("a")
        indexed = MongoLike("b")
        indexed.create_index("c", "name")
        for doc in docs:
            plain.insert_one("c", dict(doc))
            indexed.insert_one("c", dict(doc))
        for target in ["ada", "bob", "zzz"]:
            assert plain.find("c", {"name": target}) == \
                indexed.find("c", {"name": target})


class TestSearchEngine:
    texts = st.lists(
        st.text(
            alphabet=st.sampled_from("abc xyz CAT dog "), min_size=0, max_size=30
        ),
        min_size=0, max_size=20,
    )

    @given(texts=texts, term=st.sampled_from(["cat", "dog", "abc", "xyz"]))
    @settings(max_examples=60, deadline=None)
    def test_term_query_equals_token_scan(self, texts, term):
        db = ElasticsearchLike("e")
        db.create_index("docs", analyzers={"body": "simple"})
        for text in texts:
            db.index_doc("docs", {"body": text})
        hits = {doc["_id"] for doc, _ in db.search("docs", Term("body", term),
                                                   size=None)}
        expected = {
            doc["_id"]
            for doc, _ in db.search("docs", size=None)
            if term in analyze(doc["body"], "simple")
        }
        assert hits == expected

    @given(texts=texts)
    @settings(max_examples=40, deadline=None)
    def test_delete_removes_from_every_posting(self, texts):
        db = ElasticsearchLike("e")
        db.create_index("docs")
        ids = [db.index_doc("docs", {"body": t})["_id"] for t in texts]
        for doc_id in ids:
            db.delete_doc("docs", doc_id)
        assert db.count("docs") == 0
        for term in ["cat", "dog", "abc", "xyz"]:
            assert db.search("docs", Term("body", term)) == []


class TestHashRing:
    keys = st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=80,
                    unique=True)

    @given(keys=keys)
    @settings(max_examples=50, deadline=None)
    def test_removal_only_remaps_removed_nodes_keys(self, keys):
        ring = HashRing(["n1", "n2", "n3", "n4"])
        before = {k: ring.node_for(k) for k in keys}
        ring.remove_node("n2")
        for key in keys:
            after = ring.node_for(key)
            if before[key] != "n2":
                assert after == before[key]
            else:
                assert after != "n2"

    @given(keys=keys)
    @settings(max_examples=50, deadline=None)
    def test_assignment_total_and_deterministic(self, keys):
        ring = HashRing(["a", "b"])
        assert all(ring.node_for(k) in ("a", "b") for k in keys)
        assert [ring.node_for(k) for k in keys] == [ring.node_for(k) for k in keys]
