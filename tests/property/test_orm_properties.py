"""Property tests: model attribute round-trips across every engine."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import MySQLLike, PostgresLike
from repro.databases.search import ElasticsearchLike
from repro.orm import Field, Model, bind_model

ENGINE_FACTORIES = [
    lambda: PostgresLike("pg"),
    lambda: MySQLLike("my"),
    lambda: MongoLike("mo"),
    lambda: CassandraLike("ca"),
    lambda: ElasticsearchLike("es"),
    lambda: Neo4jLike("ne"),
]

attr_values = st.fixed_dictionaries(
    {
        "title": st.text(max_size=20),
        "score": st.integers(min_value=-10**6, max_value=10**6),
        "ratio": st.floats(allow_nan=False, allow_infinity=False,
                           min_value=-1e6, max_value=1e6),
        "flag": st.booleans(),
        "tags": st.lists(st.text(max_size=5), max_size=4),
    }
)


def make_model(db):
    class Record(Model):
        title = Field(str)
        score = Field(int)
        ratio = Field(float)
        flag = Field(bool)
        tags = Field(list, default=list)

    bind_model(Record, db)
    return Record


class TestRoundTrip:
    @given(attrs=attr_values, engine_idx=st.integers(min_value=0, max_value=5))
    @settings(max_examples=120, deadline=None)
    def test_create_read_roundtrip(self, attrs, engine_idx):
        Record = make_model(ENGINE_FACTORIES[engine_idx]())
        record = Record.create(**attrs)
        fetched = Record.find(record.id)
        for name, value in attrs.items():
            got = getattr(fetched, name)
            if isinstance(value, float):
                assert got == value or abs(got - value) < 1e-9
            else:
                assert got == value, (name, got, value)

    @given(attrs=attr_values, new_attrs=attr_values,
           engine_idx=st.integers(min_value=0, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_update_roundtrip(self, attrs, new_attrs, engine_idx):
        Record = make_model(ENGINE_FACTORIES[engine_idx]())
        record = Record.create(**attrs)
        record.update(**new_attrs)
        fetched = Record.find(record.id)
        assert fetched.title == new_attrs["title"]
        assert fetched.score == new_attrs["score"]
        assert fetched.tags == new_attrs["tags"]

    @given(batch=st.lists(attr_values, min_size=1, max_size=10),
           engine_idx=st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_count_and_all_consistent(self, batch, engine_idx):
        Record = make_model(ENGINE_FACTORIES[engine_idx]())
        for attrs in batch:
            Record.create(**attrs)
        assert Record.count() == len(batch)
        assert len(Record.all()) == len(batch)
        assert sorted(r.id for r in Record.all()) == list(range(1, len(batch) + 1))
