"""Property: transactional all-or-nothing replication (§4.2)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

txn_scripts = st.lists(
    st.tuples(
        st.booleans(),  # commit (True) or abort (False)
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),  # slot
                      st.integers(min_value=0, max_value=99)),  # value
            min_size=1, max_size=5,
        ),
    ),
    min_size=1, max_size=8,
)


def build():
    eco = Ecosystem()
    pub = eco.service("pub", database=PostgresLike("pub-db"))

    @pub.model(publish=["n"], name="Slot")
    class Slot(Model):
        n = Field(int)

    sub = eco.service("sub", database=MongoLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Slot")
    class SubSlot(Model):
        n = Field(int)

    return eco, pub, Slot, sub, sub.registry["Slot"]


class TestTransactionalReplication:
    @given(scripts=txn_scripts)
    @settings(max_examples=40, deadline=None)
    def test_only_committed_transactions_replicate(self, scripts):
        eco, pub, Slot, sub, SubSlot = build()
        live = {}
        committed_txns = 0
        for commit, writes in scripts:
            txn = pub.database.begin()
            try:
                for slot, value in writes:
                    if slot in live:
                        live[slot].update(n=value)
                    else:
                        live[slot] = Slot.create(n=value)
                if commit:
                    txn.commit()
                    committed_txns += 1
                else:
                    txn.rollback()
                    # Forget local handles from the aborted transaction;
                    # reload survivors from the DB.
                    live = {
                        slot: obj for slot, obj in live.items()
                        if pub.database.get("slots", obj.id) is not None
                    }
                    for obj in live.values():
                        obj.reload()
            except Exception:
                raise
        assert pub.publisher.messages_published == committed_txns
        sub.subscriber.drain()
        pub_state = {s.id: s.n for s in Slot.all()}
        sub_state = {s.id: s.n for s in SubSlot.all()}
        assert sub_state == pub_state
