"""Property: bootstrapping at any point in a workload always converges."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Ecosystem
from repro.core.bootstrap import bootstrap_subscriber
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

crud_ops = st.lists(
    st.tuples(
        st.sampled_from(["create", "update", "delete"]),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=25,
)


def apply_op(Item, live, op):
    kind, slot, value = op
    if kind == "create" and slot not in live:
        live[slot] = Item.create(n=value)
    elif kind == "update" and slot in live:
        live[slot].update(n=value)
    elif kind == "delete" and slot in live:
        live[slot].destroy()
        del live[slot]


class TestBootstrapConvergence:
    @given(ops=crud_ops, join_at=st.integers(min_value=0, max_value=25),
           lose=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_late_joiner_converges_from_any_point(self, ops, join_at, lose):
        """The subscriber deploys after ``join_at`` operations (missing
        all earlier traffic — its queue did not even exist), optionally
        loses one in-flight message, bootstraps, and must converge."""
        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["n"], name="Item")
        class Item(Model):
            n = Field(int)

        live = {}
        join_at = min(join_at, len(ops))
        for op in ops[:join_at]:
            apply_op(Item, live, op)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["n"]}, name="Item")
        class SubItem(Model):
            n = Field(int)

        if lose and len(ops) > join_at:
            eco.broker.drop_next(1)
        for op in ops[join_at:]:
            apply_op(Item, live, op)

        bootstrap_subscriber(sub)
        # A lost message may leave causal successors queued; a second
        # (recovery) bootstrap must always finish the job.
        bootstrap_subscriber(sub)
        assert {i.id: i.n for i in SubItem.all()} == \
            {i.id: i.n for i in Item.all()}
        assert not sub.bootstrap_active
