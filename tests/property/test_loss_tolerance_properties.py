"""Property: weak-mode convergence under arbitrary message loss (§6.5)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model

updates = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),   # slot
              st.integers(min_value=0, max_value=99)),  # value
    min_size=1, max_size=25,
)
loss_mask = st.lists(st.booleans(), min_size=25, max_size=25)


def build(mode):
    eco = Ecosystem()
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["n"], name="Item")
    class Item(Model):
        n = Field(int)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(subscribe={"from": "pub", "fields": ["n"], "mode": mode},
               name="Item")
    class SubItem(Model):
        n = Field(int)

    return eco, Item, sub, sub.registry["Item"]


class TestWeakLossTolerance:
    @given(ops=updates, losses=loss_mask)
    @settings(max_examples=40, deadline=None)
    def test_weak_converges_where_final_update_survived(self, ops, losses):
        """For every object whose *last* update message was delivered, a
        weak subscriber ends at exactly that value — regardless of which
        earlier messages were lost."""
        eco, Item, sub, SubItem = build("weak")
        live = {}
        last_delivered_value = {}
        for (slot, value), lost in zip(ops, losses):
            if slot not in live:
                # Creations always delivered so the object exists locally.
                live[slot] = Item.create(n=value)
                last_delivered_value[slot] = value
            else:
                if lost:
                    eco.broker.drop_next(1)
                live[slot].update(n=value)
                if not lost:
                    last_delivered_value[slot] = value
        sub.subscriber.drain()
        for slot, obj in live.items():
            local = SubItem.find_by(id=obj.id)
            assert local is not None
            publisher_value = obj.n
            if last_delivered_value[slot] == publisher_value:
                assert local.n == publisher_value
            # Either way, the subscriber holds SOME delivered value.
            assert local.n is not None

    @given(ops=updates, losses=loss_mask)
    @settings(max_examples=30, deadline=None)
    def test_causal_never_skips_a_gap(self, ops, losses):
        """A causal subscriber never applies an update whose predecessor
        (same object) was lost: the visible value is always a prefix of
        the delivered stream."""
        eco, Item, sub, SubItem = build("causal")
        live = {}
        lost_before = set()
        prefix_value = {}
        for (slot, value), lost in zip(ops, losses):
            if slot not in live:
                live[slot] = Item.create(n=value)
                prefix_value[slot] = value
            else:
                if lost:
                    eco.broker.drop_next(1)
                live[slot].update(n=value)
                if slot not in lost_before:
                    if lost:
                        lost_before.add(slot)
                    else:
                        prefix_value[slot] = value
        sub.subscriber.drain()
        for slot, obj in live.items():
            local = SubItem.find_by(id=obj.id)
            assert local is not None
            assert local.n == prefix_value[slot]
