"""Unit tests for version stores: the Fig 8 arithmetic, sharding, hashing."""

import threading

import pytest

from repro.databases.kv import RedisLike
from repro.versionstore import (
    DependencyHasher,
    HashRing,
    PublisherVersionStore,
    ShardedKV,
    SubscriberVersionStore,
)


def make_kv(n_shards=1):
    return ShardedKV([RedisLike(f"shard{i}") for i in range(n_shards)])


@pytest.fixture
def pub_store():
    return PublisherVersionStore(make_kv())


@pytest.fixture
def sub_store():
    return SubscriberVersionStore(make_kv())


class TestHashRing:
    def test_deterministic_assignment(self):
        nodes = ["a", "b", "c"]
        ring1 = HashRing(list(nodes))
        ring2 = HashRing(list(nodes))
        keys = [f"key{i}" for i in range(100)]
        assert [ring1.node_for(k) for k in keys] == [ring2.node_for(k) for k in keys]

    def test_distribution_roughly_balanced(self):
        ring = HashRing(["a", "b", "c", "d"], vnodes=128)
        counts = ring.distribution([f"key{i}" for i in range(4000)])
        assert all(500 < c < 1500 for c in counts.values())

    def test_remove_node_remaps_only_its_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key{i}" for i in range(500)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove_node("b")
        after = {k: ring.node_for(k) for k in keys}
        for key in keys:
            if before[key] != "b":
                assert after[key] == before[key]
            else:
                assert after[key] != "b"

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestDependencyHasher:
    def test_identity_by_default(self):
        assert DependencyHasher().hash("app/users/id/1") == "app/users/id/1"

    def test_folding_into_space(self):
        hasher = DependencyHasher(space=8)
        names = {hasher.hash(f"app/users/id/{i}") for i in range(1000)}
        assert len(names) <= 8
        assert all(n.startswith("d") for n in names)

    def test_stable(self):
        h1 = DependencyHasher(space=100)
        h2 = DependencyHasher(space=100)
        assert h1.hash("x") == h2.hash("x")

    def test_one_entry_space_serialises_everything(self):
        hasher = DependencyHasher(space=1)
        assert hasher.hash("a") == hasher.hash("b")

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            DependencyHasher(space=0)


class TestPublisherAlgorithm:
    def test_fig8_trace(self, pub_store):
        """Exact counter/message arithmetic of Fig 8(b)."""
        u1, u2, p1, c1, c2 = (
            "user/id/1", "user/id/2", "post/id/1", "comment/id/1", "comment/id/2",
        )
        # W1: write [u1, p1]
        m1 = pub_store.register_operation(read_deps=[], write_deps=[u1, p1])
        assert m1 == {u1: 0, p1: 0}
        assert pub_store.current(u1) == (1, 1)
        assert pub_store.current(p1) == (1, 1)
        # W2: read [p1], write [u2, c1]
        m2 = pub_store.register_operation(read_deps=[p1], write_deps=[u2, c1])
        assert m2 == {u2: 0, c1: 0, p1: 1}
        assert pub_store.current(p1) == (2, 1)
        # W3: read [p1], write [u1, c2]
        m3 = pub_store.register_operation(read_deps=[p1], write_deps=[u1, c2])
        assert m3 == {u1: 1, c2: 0, p1: 1}
        assert pub_store.current(u1) == (2, 2)
        assert pub_store.current(p1) == (3, 1)
        # W4: write [u1, p1]
        m4 = pub_store.register_operation(read_deps=[], write_deps=[u1, p1])
        assert m4 == {u1: 2, p1: 3}
        assert pub_store.current(u1) == (3, 3)
        assert pub_store.current(p1) == (4, 4)

    def test_write_wins_over_read_for_same_dep(self, pub_store):
        versions = pub_store.register_operation(read_deps=["x"], write_deps=["x"])
        # ops: read bump ->1, write bump ->2; message carries version-1=1.
        assert versions == {"x": 1}

    def test_locks_block_concurrent_holders(self, pub_store):
        held = pub_store.acquire_write_locks(["a", "b"])
        acquired = []

        def other():
            handles = pub_store.acquire_write_locks(["b"])
            acquired.append(True)
            pub_store.release_locks(handles)

        t = threading.Thread(target=other)
        t.start()
        t.join(timeout=0.1)
        assert not acquired  # still blocked
        pub_store.release_locks(held)
        t.join(timeout=1)
        assert acquired == [True]

    def test_concurrent_bumps_never_lose_updates(self):
        store = PublisherVersionStore(make_kv(4))

        def worker():
            for _ in range(100):
                store.bump("obj", is_write=True)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.current("obj") == (400, 400)

    def test_snapshot_lists_hashed_deps(self, pub_store):
        pub_store.register_operation([], ["a"])
        pub_store.register_operation(["a"], ["b"])
        snap = pub_store.snapshot()
        assert snap == {"a": 2, "b": 1}


class TestSubscriberStore:
    def test_satisfied_and_apply(self, sub_store):
        deps = {"u1": 0, "p1": 0}
        assert sub_store.satisfied(deps)
        sub_store.apply(deps)
        assert sub_store.ops("u1") == 1
        assert not sub_store.satisfied({"p1": 2})
        assert sub_store.missing({"p1": 2}) == {"p1": (2, 1)}

    def test_fig8_subscriber_ordering(self, sub_store):
        """M2/M3 wait for M1; M4 waits for M2 and M3 (Fig 8c)."""
        m1 = {"u1": 0, "p1": 0}
        m2 = {"u2": 0, "c1": 0, "p1": 1}
        m3 = {"u1": 1, "c2": 0, "p1": 1}
        m4 = {"u1": 2, "p1": 3}
        assert sub_store.satisfied(m1)
        assert not sub_store.satisfied(m2)
        assert not sub_store.satisfied(m3)
        sub_store.apply(m1)
        assert sub_store.satisfied(m2) and sub_store.satisfied(m3)
        assert not sub_store.satisfied(m4)
        sub_store.apply(m3)
        assert not sub_store.satisfied(m4)
        sub_store.apply(m2)
        assert sub_store.satisfied(m4)

    def test_weak_mode_staleness(self, sub_store):
        assert not sub_store.is_stale("o", 0)
        sub_store.fast_forward("o", 5)  # applied version-5 message
        assert sub_store.ops("o") == 6
        assert sub_store.is_stale("o", 3)
        assert not sub_store.is_stale("o", 7)
        sub_store.fast_forward("o", 2)  # late stale apply cannot regress
        assert sub_store.ops("o") == 6

    def test_wait_satisfied_times_out(self, sub_store):
        assert not sub_store.wait_satisfied({"x": 5}, timeout=0.05)

    def test_wait_satisfied_wakes_on_apply(self, sub_store):
        results = []

        def waiter():
            results.append(sub_store.wait_satisfied({"x": 1}, timeout=2))

        t = threading.Thread(target=waiter)
        t.start()
        sub_store.apply({"x": 1})
        t.join(timeout=3)
        assert results == [True]

    def test_bulk_load_never_regresses(self, sub_store):
        sub_store.apply({"a": 0})
        sub_store.apply({"a": 0})
        sub_store.bulk_load({"a": 1, "b": 7})
        assert sub_store.ops("a") == 2
        assert sub_store.ops("b") == 7

    def test_flush(self, sub_store):
        sub_store.apply({"a": 0})
        sub_store.flush()
        assert sub_store.ops("a") == 0


class TestSharding:
    def test_counters_route_consistently_across_shards(self):
        store = PublisherVersionStore(make_kv(5))
        for i in range(50):
            store.register_operation([], [f"obj/{i}"])
        # Every dep readable back with correct value.
        for i in range(50):
            assert store.current(f"obj/{i}") == (1, 1)
        # Multiple shards actually used.
        used = [s for s in store.kv.shards if s.dbsize() > 0]
        assert len(used) > 1

    def test_hashed_space_bounds_memory(self):
        store = PublisherVersionStore(make_kv(2), DependencyHasher(space=4))
        for i in range(500):
            store.register_operation([], [f"obj/{i}"])
        assert store.kv.total_keys() <= 4
