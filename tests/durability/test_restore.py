"""DurabilityManager restore: queues, ledgers, dedup, uid sequencing,
snapshot compaction and the unrecoverable fallback — each scenario
wounds one ecosystem and resurrects a second over the same data dir."""

from __future__ import annotations

import json

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.repair.digest import publisher_model_digest, subscriber_model_digest


def build_pipeline(data_dir, mode="causal", flow=None, queue_limit=None, **durability):
    """One pub -> sub pipeline with durability armed into ``data_dir``."""
    eco = Ecosystem(queue_limit=queue_limit) if queue_limit else Ecosystem()
    if flow is not None:
        eco.enable_flow(flow)
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode=mode)

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": mode},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    manager = eco.enable_durability(data_dir=str(data_dir), **durability)
    return eco, pub, sub, manager, PubDoc, SubDoc


def replicas_in_sync(pub, sub):
    spec = next(iter(sub.subscriber.specs.values()))
    mine = subscriber_model_digest(sub, spec)
    theirs = publisher_model_digest(pub, "Doc", sorted(spec.fields))
    return mine.root == theirs.root


class TestRestorePipeline:
    def test_drained_run_restores_to_equal_replicas(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            docs = [PubDoc.create(name=f"doc-{i}", value=i) for i in range(6)]
        with pub_a.controller():
            docs[0].value = 100
            docs[0].save()
        sub_a.subscriber.drain()
        # No close, no snapshot: the process just stops existing.

        eco_b, pub_b, sub_b, mgr_b, _, SubDoc = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert not report.unrecoverable
        assert report.replayed > 0
        assert report.requeued == 0  # everything was acked pre-crash
        sub_b.subscriber.drain()
        assert replicas_in_sync(pub_b, sub_b)
        rows = SubDoc.__mapper__._do_where({}, None, None)
        assert len(rows) == 6
        assert {row["value"] for row in rows} == {100, 1, 2, 3, 4, 5}

    def test_unacked_backlog_is_requeued_and_converges(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            for i in range(5):
                PubDoc.create(name=f"doc-{i}", value=i)
        # Crash with the whole backlog pending: nothing drained.

        eco_b, pub_b, sub_b, mgr_b, _, _ = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert report.requeued == 5
        assert len(sub_b.subscriber.queue) == 5
        sub_b.subscriber.drain()
        assert replicas_in_sync(pub_b, sub_b)

    def test_applied_uids_deduplicate_replayed_tail(self, tmp_path):
        """apply logged, ack crash-lost: the requeued message must be
        recognised as already applied, not applied twice."""
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            doc = PubDoc.create(name="doc", value=1)
        sub_a.subscriber.drain()
        # Forge the crash window: drop the final ack record from the log.
        mgr_a.close()
        path = mgr_a.wal.segment_path(1)
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        assert '"t": "ack"' in lines[-1] or '"t":"ack"' in json.dumps(
            json.loads(lines[-1])["rec"], separators=(",", ":")
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:-1])

        eco_b, pub_b, sub_b, mgr_b, _, SubDoc = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert report.requeued == 1  # no ack on record: still pending
        sub_b.subscriber.drain()
        rows = SubDoc.__mapper__._do_where({}, None, None)
        assert len(rows) == 1 and rows[0]["value"] == 1
        assert replicas_in_sync(pub_b, sub_b)

    def test_restored_uid_sequence_does_not_collide(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            for i in range(4):
                PubDoc.create(name=f"doc-{i}", value=i)
        sub_a.subscriber.drain()

        eco_b, pub_b, sub_b, mgr_b, PubDocB, _ = build_pipeline(tmp_path)
        mgr_b.restore()
        seen = set(sub_b.subscriber._applied_uids)
        with pub_b.controller():
            PubDocB.create(name="fresh", value=9)
        fresh_uid = sub_b.subscriber.queue._items[0].uid
        assert fresh_uid not in seen
        sub_b.subscriber.drain()
        assert replicas_in_sync(pub_b, sub_b)

    def test_decommissioned_queue_restores_decommissioned(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, queue_limit=3
        )
        with pub_a.controller():
            for i in range(8):  # sails past the kill cliff
                PubDoc.create(name=f"doc-{i}", value=i)
        assert eco_a.broker.queue_for("sub").decommissioned

        eco_b, pub_b, sub_b, mgr_b, _, _ = build_pipeline(
            tmp_path, queue_limit=3
        )
        mgr_b.restore()
        assert eco_b.broker.queue_for("sub").decommissioned

    def test_snapshot_compacts_and_bounds_replay(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, segment_records=8
        )
        with pub_a.controller():
            for i in range(10):
                PubDoc.create(name=f"doc-{i}", value=i)
        sub_a.subscriber.drain()
        segments_before = mgr_a.wal.segment_ids()
        snapshot_id = mgr_a.snapshot()
        assert snapshot_id == 1
        # Segments wholly below the pin are reclaimed.
        assert mgr_a.wal.segment_ids() == [segments_before[-1]]
        with pub_a.controller():
            PubDoc.create(name="post-snap", value=99)
        sub_a.subscriber.drain()

        eco_b, pub_b, sub_b, mgr_b, _, SubDoc = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert report.snapshot_id == 1
        # Only the post-snapshot tail replays, not all 11 writes.
        assert 0 < report.replayed < 11
        sub_b.subscriber.drain()
        assert replicas_in_sync(pub_b, sub_b)
        assert len(SubDoc.__mapper__._do_where({}, None, None)) == 11

    def test_auto_snapshot_cadence(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, snapshot_every=6
        )
        with pub_a.controller():
            for i in range(12):
                PubDoc.create(name=f"doc-{i}", value=i)
        assert mgr_a.snapshots.ids(), "cadence never took a snapshot"

    def test_unrecoverable_log_keeps_snapshot_and_reports(self, tmp_path):
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            for i in range(4):
                PubDoc.create(name=f"doc-{i}", value=i)
        sub_a.subscriber.drain()
        mgr_a.close()
        path = mgr_a.wal.segment_path(1)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        lines[2] = lines[2].replace('"t"', '"x"', 1)  # mid-log corruption
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)

        eco_b, pub_b, sub_b, mgr_b, _, _ = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert report.unrecoverable
        assert report.error
        assert report.stale_services == ["pub", "sub"]
        assert eco_b.metrics.value("durability.unrecoverable") == 1


class TestRestoreWithFlow:
    def test_coalesced_survivor_round_trips(self, tmp_path):
        from repro.runtime.flow import FlowConfig

        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, flow=FlowConfig(batch_max=4)
        )
        with pub_a.controller():
            doc = PubDoc.create(name="doc", value=0)
        with pub_a.controller():
            doc.value = 7
            doc.save()  # adjacent: merges into the queued create
        assert eco_a.metrics.value("flow.sub.coalesced") == 1
        assert len(sub_a.subscriber.queue) == 1

        from repro.runtime.flow import FlowConfig as FC

        eco_b, pub_b, sub_b, mgr_b, _, SubDoc = build_pipeline(
            tmp_path, flow=FC(batch_max=4)
        )
        report = mgr_b.restore()
        assert report.requeued == 1  # the merged survivor, not two
        sub_b.subscriber.drain()
        rows = SubDoc.__mapper__._do_where({}, None, None)
        assert len(rows) == 1 and rows[0]["value"] == 7
        assert replicas_in_sync(pub_b, sub_b)

    def test_shed_deficit_ledger_round_trips(self, tmp_path):
        from repro.runtime.flow import FlowConfig

        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, mode="weak", flow=FlowConfig(batch_max=4), queue_limit=6
        )
        # Flood with distinct creates (not coalescible) and never drain:
        # credits run out, and weak publishes past the watermark shed.
        for i in range(20):
            with pub_a.controller():
                PubDoc.create(name=f"flood-{i}", value=i)
        assert eco_a.metrics.value("flow.sub.shed") > 0
        ledger_a = sub_a.subscriber.queue.flow.shed_ledger()
        assert ledger_a

        eco_b, pub_b, sub_b, mgr_b, _, _ = build_pipeline(
            tmp_path, mode="weak", flow=FlowConfig(batch_max=4), queue_limit=6
        )
        mgr_b.restore()
        assert sub_b.subscriber.queue.flow.shed_ledger() == ledger_a
