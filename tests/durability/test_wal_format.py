"""Golden tests for the durability on-disk formats.

The WAL record envelope and the snapshot manifest are restart
contracts: a process that crashes is recovered by a *future* process
reading what this one wrote, so the exact serialized shapes are pinned
here as literal dicts (mirroring tests/broker/test_wire_format.py for
the wire formats). A field rename shows up as a diff in this file, not
as a recovery failure months later.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.durability.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotStore,
    build_manifest,
)
from repro.durability.wal import (
    WAL_WIRE_VERSION,
    decode_record,
    encode_record,
    record_crc,
)
from repro.errors import DurabilityError, WALCorrupt


class TestWALEnvelopeGolden:
    def test_envelope_exact_shape(self):
        rec = {"t": "ack", "q": "sub", "uid": "pub:7"}
        assert json.loads(encode_record(rec)) == {
            "v": 1,
            "crc": record_crc(rec),
            "rec": {"t": "ack", "q": "sub", "uid": "pub:7"},
        }

    def test_crc_is_over_canonical_record_json(self):
        # Sorted keys, no whitespace: writer and replayer must derive
        # the same bytes for the same record regardless of dict order.
        assert record_crc({"b": 2, "a": 1}) == (
            zlib.crc32(b'{"a":1,"b":2}') & 0xFFFFFFFF
        )
        assert record_crc({"a": 1, "b": 2}) == record_crc({"b": 2, "a": 1})

    def test_round_trip(self):
        rec = {"t": "pub", "q": "sub", "m": {"uid": "pub:1", "app": "pub"}}
        assert decode_record(encode_record(rec)) == rec

    def test_newer_wire_version_is_refused(self):
        envelope = json.loads(
            encode_record({"t": "ack", "q": "sub", "uid": "pub:7"})
        )
        envelope["v"] = WAL_WIRE_VERSION + 1
        with pytest.raises(WALCorrupt, match="newer"):
            decode_record(json.dumps(envelope))

    def test_flipped_bit_in_record_body_fails_crc(self):
        envelope = json.loads(
            encode_record({"t": "ack", "q": "sub", "uid": "pub:7"})
        )
        envelope["rec"]["uid"] = "pub:8"
        with pytest.raises(WALCorrupt, match="CRC"):
            decode_record(json.dumps(envelope))

    def test_garbage_lines_are_corrupt(self):
        with pytest.raises(WALCorrupt):
            decode_record('{"v": 1, "crc"')
        with pytest.raises(WALCorrupt):
            decode_record("[1, 2, 3]")


class TestPipelineRecordGolden:
    """The records the live pipeline actually writes, read back raw off
    disk — the hooks, not just the codec."""

    def _one_write(self, tmp_path):
        from repro.core import Ecosystem
        from repro.databases.document import MongoLike
        from repro.databases.relational import PostgresLike
        from repro.orm import Field, Model

        eco = Ecosystem()
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name"], name="Doc")
        class PubDoc(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Doc")
        class SubDoc(Model):
            name = Field(str)

        manager = eco.enable_durability(data_dir=str(tmp_path))
        with pub.controller():
            PubDoc.create(name="ada")
        sub.subscriber.drain()
        manager.close()
        path = manager.wal.segment_path(1)
        with open(path, "r", encoding="utf-8") as fh:
            return [decode_record(line.strip()) for line in fh if line.strip()]

    def test_out_pub_apply_ack_records_on_disk(self, tmp_path):
        records = self._one_write(tmp_path)
        by_type = {}
        for rec in records:
            by_type.setdefault(rec["t"], rec)
        out = by_type["out"]
        assert set(out) == {"t", "app", "m", "vs"}
        assert out["app"] == "pub"
        # The embedded payload is the golden wire format, trace dropped.
        assert out["m"]["wire_version"] == 3
        assert "trace" not in out["m"]
        assert all(
            len(pair) == 2 for pair in out["vs"].values()
        ), "vs maps hashed key -> [ops, version]"
        assert set(by_type["pub"]) == {"t", "q", "m"}
        assert by_type["pub"]["q"] == "sub"
        apply_rec = by_type["apply"]
        assert set(apply_rec) == {"t", "svc", "uid", "m"}
        assert apply_rec["svc"] == "sub"
        ack = by_type["ack"]
        assert set(ack) == {"t", "q", "uid"}
        assert ack["uid"] == apply_rec["uid"]

    def test_flow_and_rotation_records_on_disk(self, tmp_path):
        """The coal / shed / defer record shapes, written through the
        real hooks and read back raw off disk. ``coal`` carries the
        absorbed uids (replay drops them from pending) and ``defer``
        pins the rotation a restored queue must reproduce."""
        from repro.broker.message import Message
        from repro.core import Ecosystem
        from repro.databases.document import MongoLike
        from repro.databases.relational import PostgresLike
        from repro.orm import Field, Model
        from repro.runtime.flow import FlowConfig
        from repro.runtime.flow.coalesce import merge_into

        eco = Ecosystem()
        eco.enable_flow(FlowConfig(capacity=8))
        pub = eco.service("pub", database=MongoLike("pub-db"))

        @pub.model(publish=["name"], name="Doc")
        class PubDoc(Model):
            name = Field(str)

        sub = eco.service("sub", database=PostgresLike("sub-db"))

        @sub.model(subscribe={"from": "pub", "fields": ["name"]}, name="Doc")
        class SubDoc(Model):
            name = Field(str)

        manager = eco.enable_durability(data_dir=str(tmp_path))
        flow = sub.subscriber.queue.flow
        survivor = Message(
            app="pub", operations=[{"operation": "update", "types": ["Doc"],
                                    "id": 1, "attributes": {"name": "a"}}],
            dependencies={"h1": 1}, published_at=0.0, uid="pub:1",
        )
        absorbed = Message(
            app="pub", operations=[{"operation": "update", "types": ["Doc"],
                                    "id": 1, "attributes": {"name": "b"}}],
            dependencies={"h1": 2}, published_at=0.0, uid="pub:2",
        )
        merge_into(survivor, absorbed)
        manager.log_coal("sub", survivor)
        flow._record_shed(absorbed)
        manager.log_shed("sub", absorbed, flow)
        manager.log_defer("sub", survivor)
        manager.close()
        path = manager.wal.segment_path(1)
        with open(path, "r", encoding="utf-8") as fh:
            records = [decode_record(line.strip()) for line in fh if line.strip()]
        by_type = {rec["t"]: rec for rec in records}
        coal = by_type["coal"]
        assert set(coal) == {"t", "q", "uid", "m", "absorbed"}
        assert coal["uid"] == "pub:1"
        assert coal["absorbed"] == ["pub:2"]
        assert coal["m"]["coalesced_uids"] == ["pub:2"]
        shed = by_type["shed"]
        assert set(shed) == {"t", "q", "app", "ledger"}
        assert shed["app"] == "pub"
        assert shed["ledger"] == {"h1": 1}
        defer = by_type["defer"]
        assert defer == {"t": "defer", "q": "sub", "uid": "pub:1"}


class TestSnapshotManifestGolden:
    def test_manifest_exact_shape(self):
        assert build_manifest(3, (2, 17)) == {
            "snapshot_version": 1,
            "id": 3,
            "wal": {"segment": 2, "offset": 17},
        }

    def test_store_writes_manifest_plus_state(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        snapshot_id, path = store.write({"queues": {}}, (1, 5))
        assert snapshot_id == 1
        with open(path, "r", encoding="utf-8") as fh:
            assert json.load(fh) == {
                "manifest": {
                    "snapshot_version": 1,
                    "id": 1,
                    "wal": {"segment": 1, "offset": 5},
                },
                "queues": {},
            }

    def test_newer_snapshot_version_is_refused(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        _, path = store.write({}, (1, 0))
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["manifest"]["snapshot_version"] = SNAPSHOT_VERSION + 1
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        with pytest.raises(DurabilityError, match="newer"):
            store.load_latest()

    def test_state_must_not_carry_its_own_manifest(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        with pytest.raises(DurabilityError, match="manifest"):
            store.write({"manifest": {}}, (1, 0))

    def test_invalid_snapshot_skipped_for_older_good_one(self, tmp_path):
        class Recorder:
            def __init__(self):
                self.anomalies = []

            def anomaly(self, kind, **data):
                self.anomalies.append((kind, data))

        recorder = Recorder()
        store = SnapshotStore(str(tmp_path), recorder=recorder)
        store.write({"marker": "old"}, (1, 1))
        _, newest = store.write({"marker": "new"}, (1, 9))
        with open(newest, "w", encoding="utf-8") as fh:
            fh.write("{half a snapsh")  # disk corruption, not a crash
        payload = store.load_latest()
        assert payload["marker"] == "old"
        assert recorder.anomalies[0][0] == "durability.snapshot_invalid"
