"""The kill -9 recovery demo, end to end.

Two real worker processes, each WALing to its own directory; one is
SIGKILLed mid-traffic; a restart over the same data dir must restore it
from snapshot + WAL replay and end with every cross-process Merkle
audit clean. This is the acceptance test for the durability subsystem's
headline claim.
"""

from __future__ import annotations

import os
import shutil

from repro.durability.demo import recover_healthy, run_recover_demo


def test_kill9_shard_restores_and_audits_clean(tmp_path):
    outcome = run_recover_demo(
        operations=12, timeout=60.0, data_dir=str(tmp_path)
    )
    crash = outcome["crash"]
    assert crash["killed"], "the victim shard was never SIGKILLed"

    shards = outcome["restart"]["shards"]
    victim = crash["victim"]
    restored = shards[victim]["stats"]["restored"]
    assert not restored["unrecoverable"]
    assert restored["replayed"] > 0, "restart replayed no WAL records"
    assert restored["requeued"] > 0, "no backlog survived the kill"
    for shard in shards.values():
        for audit in shard["verify"]["audits"].values():
            assert audit["in_sync"], audit

    assert recover_healthy(outcome)

    # The per-shard data dirs hold the documented layout.
    for shard_name in shards:
        assert os.path.isdir(os.path.join(str(tmp_path), shard_name, "wal"))
    shutil.rmtree(str(tmp_path), ignore_errors=True)
