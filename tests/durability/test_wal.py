"""SegmentedWAL unit tests: rotation, fsync policies, torn tails,
corruption, crash injection and compaction."""

from __future__ import annotations

import os

import pytest

from repro.durability.wal import (
    CrashInjector,
    SegmentedWAL,
    SimulatedCrash,
    encode_record,
)
from repro.errors import DurabilityError, WALCorrupt


class Recorder:
    def __init__(self):
        self.anomalies = []

    def anomaly(self, kind, **data):
        self.anomalies.append((kind, data))


def records(wal, start=None):
    return [rec for _, rec in wal.replay(start=start)]


class TestAppendReplay:
    def test_round_trip_in_order(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path))
        for i in range(5):
            wal.append({"t": "ack", "q": "sub", "uid": f"pub:{i}"})
        assert [rec["uid"] for rec in records(wal)] == [
            f"pub:{i}" for i in range(5)
        ]

    def test_positions_are_segment_and_offset(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), segment_records=3)
        positions = [wal.append({"t": "ack", "q": "q", "uid": str(i)})
                     for i in range(5)]
        assert positions == [(1, 0), (1, 1), (1, 2), (2, 0), (2, 1)]
        assert wal.position() == (2, 2)

    def test_replay_from_position_skips_prefix(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), segment_records=3)
        for i in range(7):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        tail = records(wal, start=(2, 1))
        assert [rec["uid"] for rec in tail] == ["4", "5", "6"]

    def test_reopen_continues_last_segment(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), segment_records=4)
        for i in range(6):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        wal.close()
        again = SegmentedWAL(str(tmp_path), segment_records=4)
        assert again.position() == (2, 2)
        again.append({"t": "ack", "q": "q", "uid": "6"})
        assert [rec["uid"] for rec in records(again)] == [
            str(i) for i in range(7)
        ]

    def test_rotation_creates_segment_files(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), segment_records=2)
        for i in range(5):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        wal.close()
        assert wal.segment_ids() == [1, 2, 3]

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync"):
            SegmentedWAL(str(tmp_path), fsync="sometimes")


class TestFsyncPolicies:
    def test_off_reaches_the_file_immediately(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), fsync="off")
        wal.append({"t": "ack", "q": "q", "uid": "0"})
        # A second handle (a future process) sees the record without
        # any sync: write + flush moved the bytes into the kernel.
        other = SegmentedWAL(str(tmp_path), fsync="off")
        assert len(records(other)) == 1

    def test_interval_buffers_until_group_max(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), fsync="interval", group_max=3)
        wal.append({"t": "ack", "q": "q", "uid": "0"})
        wal.append({"t": "ack", "q": "q", "uid": "1"})
        path = wal.segment_path(1)
        assert not os.path.exists(path) or os.path.getsize(path) == 0
        wal.append({"t": "ack", "q": "q", "uid": "2"})  # group commit
        assert os.path.getsize(path) > 0
        assert len(records(SegmentedWAL(str(tmp_path)))) == 3

    def test_sync_flushes_partial_group(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), fsync="interval", group_max=100)
        wal.append({"t": "ack", "q": "q", "uid": "0"})
        wal.sync()
        assert len(records(SegmentedWAL(str(tmp_path)))) == 1

    def test_drop_buffered_tail_is_the_loss_window(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), fsync="interval", group_max=3)
        for i in range(3):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})  # committed
        wal.append({"t": "ack", "q": "q", "uid": "3"})  # buffered only
        wal.append({"t": "ack", "q": "q", "uid": "4"})  # buffered only
        assert wal.drop_buffered_tail() == 2
        assert wal.position() == (1, 3)
        assert [rec["uid"] for rec in records(wal)] == ["0", "1", "2"]

    def test_always_fsyncs_every_record(self, tmp_path):
        from repro.runtime.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        wal = SegmentedWAL(str(tmp_path), fsync="always", metrics=metrics)
        for i in range(4):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        assert metrics.value("durability.wal.fsyncs") == 4
        assert metrics.value("durability.wal.appends") == 4


class TestTornTailAndCorruption:
    def _write(self, tmp_path, count=3, recorder=None):
        wal = SegmentedWAL(str(tmp_path), recorder=recorder)
        for i in range(count):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        wal.close()
        return wal

    def test_torn_final_record_truncated_with_anomaly(self, tmp_path):
        recorder = Recorder()
        wal = self._write(tmp_path, recorder=recorder)
        path = wal.segment_path(1)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "crc": 123, "rec": {"t": "a')  # torn write
        assert [rec["uid"] for rec in records(wal)] == ["0", "1", "2"]
        kinds = [kind for kind, _ in recorder.anomalies]
        assert "durability.torn_tail" in kinds
        # The partial line is gone from the file, so a *second* replay
        # is clean and the next append lands at the truncated offset.
        assert len(records(wal)) == 3
        assert wal.append({"t": "ack", "q": "q", "uid": "3"}) == (1, 3)

    def test_mid_log_corruption_raises_wal_corrupt(self, tmp_path):
        wal = self._write(tmp_path)
        path = wal.segment_path(1)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        lines[1] = lines[1].replace('"uid"', '"uXd"', 1)  # breaks the CRC
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(WALCorrupt):
            list(wal.replay())

    def test_corrupt_tail_of_non_final_segment_raises(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), segment_records=2)
        for i in range(4):  # two full segments
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        wal.close()
        with open(wal.segment_path(1), "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        # Only the final record of the *final* segment is forgivable.
        with pytest.raises(WALCorrupt):
            list(wal.replay())

    def test_newer_wire_version_on_disk_raises(self, tmp_path):
        wal = self._write(tmp_path, count=1)
        line = encode_record({"t": "ack", "q": "q", "uid": "future"})
        bumped = line.replace('"v":1', '"v":999')
        with open(wal.segment_path(1), "r+", encoding="utf-8") as fh:
            fh.seek(0)
            content = fh.read()
            fh.seek(0)
            fh.write(bumped + "\n" + content)
        with pytest.raises(WALCorrupt, match="newer"):
            list(wal.replay())


class TestCrashInjector:
    def test_unknown_point_rejected(self):
        with pytest.raises(DurabilityError):
            CrashInjector("mid-lunch")

    def test_fires_after_n_reaches_then_never_again(self):
        injector = CrashInjector("after-append", after_records=2)
        injector.fire("after-append")
        with pytest.raises(SimulatedCrash):
            injector.fire("after-append")
        injector.fire("after-append")  # spent: no re-fire
        assert injector.fired

    def test_other_points_do_not_count(self):
        injector = CrashInjector("before-ack", after_records=1)
        injector.fire("after-append")
        injector.fire("before-fsync")
        assert not injector.fired
        with pytest.raises(SimulatedCrash):
            injector.fire("before-ack")

    def test_wal_append_crash_point(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path))
        wal.injector = CrashInjector("after-append", after_records=2)
        wal.append({"t": "ack", "q": "q", "uid": "0"})
        with pytest.raises(SimulatedCrash):
            wal.append({"t": "ack", "q": "q", "uid": "1"})
        # after-append fires *after* the write: both records are on disk.
        assert len(records(SegmentedWAL(str(tmp_path)))) == 2

    def test_before_fsync_crash_loses_the_group(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), fsync="interval", group_max=2)
        wal.injector = CrashInjector("before-fsync", after_records=1)
        wal.append({"t": "ack", "q": "q", "uid": "0"})
        with pytest.raises(SimulatedCrash):
            wal.append({"t": "ack", "q": "q", "uid": "1"})
        assert wal.drop_buffered_tail() == 2
        assert records(SegmentedWAL(str(tmp_path))) == []


class TestCompaction:
    def test_compact_below_reclaims_whole_segments(self, tmp_path):
        wal = SegmentedWAL(str(tmp_path), segment_records=2)
        for i in range(6):
            wal.append({"t": "ack", "q": "q", "uid": str(i)})
        wal.close()
        assert wal.compact_below(3) == [1, 2]
        assert wal.segment_ids() == [3]
        assert [rec["uid"] for rec in records(wal)] == ["4", "5"]
