"""Regression tests for three restore-path bugs found by inspection.

1. ``coal`` records now carry the absorbed uids, and replay drops them
   from pending — an absorbed message whose ``pub`` record is also on
   the log must not be re-injected on restore (its dependency
   increments already ride inside the survivor; re-delivery wedges
   causal delivery on versions nobody will ever bump again).
2. ``log_shed`` appends *inside* ``flow._shed_lock`` — snapshotting the
   ledger under the lock but appending after releasing it lets a
   concurrent ledger writer append first, and last-writer-wins replay
   then restores the stale ledger.
3. ``defer`` rotations are logged — restore used to rebuild the queue
   in original publish order, resurrecting the chain-head-buried
   ordering the rotation had already fixed.

Each test fails with its fix reverted.
"""

from __future__ import annotations

import threading

from repro.broker.message import Message
from repro.core import Ecosystem
from repro.core.dependencies import dep_name
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.repair.digest import publisher_model_digest, subscriber_model_digest
from repro.runtime.flow import FlowConfig
from repro.runtime.flow.coalesce import merge_into


def build_pipeline(data_dir, mode="causal", flow=None):
    eco = Ecosystem()
    if flow is not None:
        eco.enable_flow(flow)
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode=mode)

    @pub.model(publish=["name", "value"], name="Doc")
    class PubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "value"], "mode": mode},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        value = Field(int, default=0)

    manager = eco.enable_durability(data_dir=str(data_dir))
    return eco, pub, sub, manager, PubDoc, SubDoc


def replicas_in_sync(pub, sub):
    spec = next(iter(sub.subscriber.specs.values()))
    mine = subscriber_model_digest(sub, spec)
    theirs = publisher_model_digest(pub, "Doc", sorted(spec.fields))
    return mine.root == theirs.root


class TestCoalescedAbsorbedReplay:
    def test_absorbed_pub_record_is_not_reinjected(self, tmp_path):
        """Forge the WAL shape the fix defends against: an absorbed
        message with its *own* ``pub`` record, merged into a survivor
        that was then acked. Replay must honour the ``coal`` record's
        absorbed list — without it the absorbed message is requeued on
        every restore, and its dependency versions (emitted after the
        survivor's publisher-side bumps) can never be satisfied: a
        permanent dep-wait wedge under causal delivery."""
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        with pub_a.controller():
            doc = PubDoc.create(name="doc", value=0)
        sub_a.subscriber.drain()

        hashed = eco_a.hasher.hash(dep_name("pub", "docs", doc.id))

        def update_op(value):
            return {
                "operation": "update",
                "types": ["Doc"],
                "id": doc.id,
                "attributes": {"name": "doc", "value": value},
            }

        survivor = Message(
            app="pub", operations=[update_op(1)], dependencies={hashed: 1},
            published_at=0.0,
        )
        absorbed = Message(
            app="pub", operations=[update_op(9)], dependencies={hashed: 2},
            published_at=0.0,
        )
        mgr_a.log_pub("sub", survivor)
        mgr_a.log_pub("sub", absorbed)
        merge_into(survivor, absorbed)
        mgr_a.log_coal("sub", survivor)
        mgr_a.log_ack("sub", survivor)
        mgr_a.wal.sync()
        # Crash: the process stops existing.

        eco_b, pub_b, sub_b, mgr_b, _, _ = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert not report.unrecoverable
        assert report.requeued == 0, (
            "absorbed message was re-injected from its surviving pub record"
        )
        assert len(sub_b.subscriber.queue) == 0
        assert sub_b.subscriber.drain() == 0  # no re-delivery
        assert replicas_in_sync(pub_b, sub_b)

    def test_organic_coalesce_ack_restore_digest_equality(self, tmp_path):
        """End to end over the real flow pipeline: publish, coalesce,
        drain (ack), crash, restore — replicas digest-equal and nothing
        is re-delivered."""
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, mode="weak", flow=FlowConfig(capacity=64)
        )
        with pub_a.controller():
            doc = PubDoc.create(name="doc", value=0)
        with pub_a.controller():
            doc.value = 1
            doc.save()
        with pub_a.controller():
            doc.value = 2
            doc.save()  # coalesces into the queued value=1 update
        assert eco_a.metrics.value("flow.sub.coalesced") >= 1
        sub_a.subscriber.drain()
        mgr_a.wal.sync()

        eco_b, pub_b, sub_b, mgr_b, _, SubDoc = build_pipeline(
            tmp_path, mode="weak", flow=FlowConfig(capacity=64)
        )
        report = mgr_b.restore()
        assert not report.unrecoverable
        assert report.requeued == 0
        assert sub_b.subscriber.drain() == 0  # no re-delivery
        assert replicas_in_sync(pub_b, sub_b)
        assert SubDoc.__mapper__.find(doc.id)["value"] == 2


class _ProbedShedLock:
    """Drop-in for ``QueueFlow._shed_lock`` that parks one designated
    thread after its Nth release, opening the exact window the fix
    closes: ledger snapshotted, lock gone, append still pending."""

    def __init__(self, victim_exit_no):
        self._lock = threading.Lock()
        self.victim = None
        self._exits = 0
        self.victim_exit_no = victim_exit_no
        self.released = threading.Event()
        self.resume = threading.Event()

    def __enter__(self):
        self._lock.acquire()
        return self

    def __exit__(self, *exc):
        self._lock.release()
        if threading.get_ident() == self.victim:
            self._exits += 1
            if self._exits == self.victim_exit_no:
                self.released.set()
                assert self.resume.wait(timeout=5)
        return False


class TestShedLedgerAppendOrdering:
    def test_interleaved_sheds_replay_the_complete_ledger(self, tmp_path):
        """Two threads shed for the same app; the first is parked right
        after it leaves the shed-lock critical section. With the append
        inside the lock its record is already on the log by then, so
        the second shed's complete ledger lands last and replay (last
        writer wins) restores both deficits. With the append outside
        the lock the parked thread writes its stale snapshot *after*
        the complete one — replay silently drops the second deficit."""
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(
            tmp_path, mode="weak", flow=FlowConfig(capacity=64)
        )
        queue = sub_a.subscriber.queue
        flow = queue.flow
        dep_a = eco_a.hasher.hash(dep_name("pub", "docs", "a"))
        dep_b = eco_a.hasher.hash(dep_name("pub", "docs", "b"))
        shed_a = Message(
            app="pub", operations=[], dependencies={dep_a: 1}, published_at=0.0
        )
        shed_b = Message(
            app="pub", operations=[], dependencies={dep_b: 1}, published_at=0.0
        )
        # One pending message keeps the queue alive through restore (the
        # shed ledger is re-adopted while re-injecting survivors).
        pending = Message(
            app="pub", operations=[], dependencies={}, published_at=0.0
        )
        mgr_a.log_pub("sub", pending)

        probe = _ProbedShedLock(victim_exit_no=2)
        flow._shed_lock = probe

        def first_shed():
            probe.victim = threading.get_ident()
            flow._record_shed(shed_a)  # probe exit #1
            mgr_a.log_shed("sub", shed_a, flow)  # exit #2: park here

        thread = threading.Thread(target=first_shed)
        thread.start()
        assert probe.released.wait(timeout=5)
        # Interleaved writer: records its deficit and appends while the
        # first shed is parked between snapshot and (reverted) append.
        flow._record_shed(shed_b)
        mgr_a.log_shed("sub", shed_b, flow)
        probe.resume.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        mgr_a.wal.sync()

        eco_b, pub_b, sub_b, mgr_b, _, _ = build_pipeline(
            tmp_path, mode="weak", flow=FlowConfig(capacity=64)
        )
        report = mgr_b.restore()
        assert not report.unrecoverable
        ledger = sub_b.subscriber.queue.flow.shed_ledger().get("pub", {})
        assert ledger.get(dep_a) == 1
        assert ledger.get(dep_b) == 1, (
            "stale shed-ledger snapshot appended after the complete one; "
            "replay restored a ledger missing the second shed's deficit"
        )


class TestDeferRotationReplay:
    def _chain_messages(self, eco, doc_ids):
        """A causal chain over distinct objects: message i writes doc i
        and requires doc i-1's counter at 1 (bumped when message i-1
        applies)."""
        hashes = [
            eco.hasher.hash(dep_name("pub", "docs", doc_id))
            for doc_id in doc_ids
        ]
        messages = []
        for i, doc_id in enumerate(doc_ids):
            deps = {hashes[i]: 0}
            if i > 0:
                deps[hashes[i - 1]] = 1
            messages.append(
                Message(
                    app="pub",
                    operations=[{
                        "operation": "create",
                        "types": ["Doc"],
                        "id": doc_id,
                        "attributes": {"name": f"d{i}", "value": i},
                    }],
                    dependencies=deps,
                    published_at=0.0,
                )
            )
        return messages

    def test_restart_mid_rotation_drains_within_one_revolution(self, tmp_path):
        """A 40-deep causal chain published head-last (the chain head
        buried at the back — the worker-livelock ordering), rotated by
        defer until the head surfaced, then killed before any apply.
        The restored queue must preserve the rotation: every message
        pops exactly once. Without the ``defer`` records restore falls
        back to publish order, re-burying the head — the drain needs a
        whole extra revolution of re-defers."""
        eco_a, pub_a, sub_a, mgr_a, PubDoc, _ = build_pipeline(tmp_path)
        doc_ids = list(range(1, 41))
        head, *rest = self._chain_messages(eco_a, doc_ids)
        queue = sub_a.subscriber.queue
        for message in rest:
            queue.publish(message)
        queue.publish(head)  # buried: 38 dependents sit in front of it
        # The rotation the worker pools perform on dependency stalls:
        # every buried dependent pops, cannot apply, rotates to the
        # back; the head surfaces within one revolution. Killed right
        # after the rotation, before anything applied or acked.
        for _ in range(len(rest)):
            message = queue.pop(timeout=0)
            assert not sub_a.subscriber.process_message(message)
            queue.defer(message)
        mgr_a.wal.sync()

        eco_b, pub_b, sub_b, mgr_b, _, SubDoc = build_pipeline(tmp_path)
        report = mgr_b.restore()
        assert not report.unrecoverable
        assert report.requeued == 40
        restored = sub_b.subscriber.queue
        pops = 0
        while len(restored):
            message = restored.pop(timeout=0)
            pops += 1
            assert pops <= 120, "restored queue does not converge"
            if sub_b.subscriber.process_message(message):
                restored.ack(message)
            else:
                restored.defer(message)
        assert pops == 40, (
            f"{pops} pops to drain 40 messages: restore re-buried the "
            "chain head instead of preserving the defer rotation"
        )
        for i, doc_id in enumerate(doc_ids):
            row = SubDoc.__mapper__.find(doc_id)
            assert row is not None and row["value"] == i
