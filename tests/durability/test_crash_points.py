"""Crash-point conformance: the directed scenarios, as tier-1 tests.

Each scenario wounds a durable pipeline at one WAL crash point
(in-process SimulatedCrash, or a genuine self-SIGKILL in a child
process) and asserts a restore over the same data dir converges the
replicas. The scenarios themselves live in the conformance harness so
``python -m repro conformance`` runs them too; these tests pin them
into the tier-1 suite.
"""

from __future__ import annotations

import pytest

from repro.runtime.conformance.scenarios import (
    durability_crash_point_scenario,
    durability_kill_restart_scenario,
)


@pytest.mark.parametrize("point", ["after-append", "before-fsync", "before-ack"])
def test_crash_point_restores_convergent(point):
    violations = durability_crash_point_scenario(point)
    assert violations == [], [str(v) for v in violations]


def test_genuine_sigkill_then_restart_converges():
    violations = durability_kill_restart_scenario()
    assert violations == [], [str(v) for v in violations]
