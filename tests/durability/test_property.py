"""Property test: crash-and-restore at every WAL record boundary.

A seeded random workload (publish / update / ack-by-drain / shed /
coalesce / defer-rotation) writes a WAL; then, for *every* prefix length k of that log,
a fresh ecosystem restores exactly k records, snapshots at that
boundary, and a third ecosystem restores snapshot-plus-tail. The
invariant is ARIES-lite's contract: *snapshot at any boundary + tail
replay ≡ pure log replay* — byte-equal durable state no matter where
the crash landed. At the full boundary the restored pipeline must also
drain (and shed-repair) to Merkle digest equality between the replicas
(``repro.repair.digest``).
"""

from __future__ import annotations

import copy
import random
import shutil

import pytest

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model
from repro.repair.digest import publisher_model_digest, subscriber_model_digest
from repro.runtime.flow import FlowConfig

QUEUE_LIMIT = 10


def build_pipeline(data_dir):
    eco = Ecosystem(queue_limit=QUEUE_LIMIT)
    eco.enable_flow(FlowConfig(batch_max=4))
    pub = eco.service("pub", database=MongoLike("pub-db"), delivery_mode="weak")

    @pub.model(publish=["name", "score"], name="Doc")
    class Doc(Model):
        name = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["name", "score"], "mode": "weak"},
        name="Doc",
    )
    class SubDoc(Model):
        name = Field(str)
        score = Field(int, default=0)

    manager = eco.enable_durability(data_dir=str(data_dir))
    return eco, pub, sub, manager, Doc


def run_workload(pub, sub, doc_cls, rng, operations=24):
    """Randomized publish/update/drain against a flow-controlled queue:
    adjacent updates coalesce, floods past the watermark shed, defer
    rotations reorder the backlog, drains ack and apply."""
    docs = []
    for _ in range(operations):
        op = rng.random()
        if op < 0.4 or not docs:
            with pub.controller():
                docs.append(
                    doc_cls.create(name=f"doc-{len(docs)}", score=0)
                )
        elif op < 0.7:
            doc = rng.choice(docs)
            with pub.controller():
                doc.score += rng.randrange(1, 10)
                doc.save()
        elif op < 0.85:
            # The worker pools' stall rotation: pop the head, put it at
            # the back — a ``defer`` record the restore must replay, or
            # snapshot-boundary state diverges from pure-replay order.
            queue = sub.subscriber.queue
            message = queue.pop(timeout=0)
            if message is not None:
                queue.defer(message)
        else:
            sub.subscriber.drain()
    return docs


def normalized_state(manager):
    """Durable state with scheduling-dependent order scrubbed: the
    applied-uid dedup window compares as a set."""
    state = copy.deepcopy(manager._capture_state())
    for svc_state in state["services"].values():
        svc_state["applied_uids"] = sorted(svc_state["applied_uids"])
    return state


def wal_record_count(manager):
    return sum(1 for _ in manager.wal.replay())


def replicas_digest_equal(pub, sub):
    spec = next(iter(sub.subscriber.specs.values()))
    mine = subscriber_model_digest(sub, spec)
    theirs = publisher_model_digest(pub, "Doc", sorted(spec.fields))
    return mine.root == theirs.root


@pytest.mark.parametrize("seed", [11, 29])
def test_snapshot_at_every_boundary_equals_pure_replay(tmp_path, seed):
    pristine = tmp_path / "pristine"
    rng = random.Random(seed)
    eco_a, pub_a, sub_a, mgr_a, Doc = build_pipeline(pristine)
    run_workload(pub_a, sub_a, Doc, rng)
    mgr_a.wal.sync()
    total = wal_record_count(mgr_a)
    assert total > 10, "workload produced too small a log to be interesting"
    # Abandoned, not closed: eco A just crashed.

    # Reference: pure full log replay, no snapshot involved.
    ref_dir = tmp_path / "reference"
    shutil.copytree(pristine, ref_dir)
    eco_r, pub_r, sub_r, mgr_r, _ = build_pipeline(ref_dir)
    ref_report = mgr_r.restore()
    assert not ref_report.unrecoverable
    assert ref_report.replayed == total
    reference = normalized_state(mgr_r)

    for k in range(total + 1):
        work = tmp_path / f"boundary-{k}"
        shutil.copytree(pristine, work)
        # Crash boundary: restore exactly k records, checkpoint there.
        eco_b, pub_b, sub_b, mgr_b, _ = build_pipeline(work)
        report_b = mgr_b.restore(replay_limit=k)
        assert not report_b.unrecoverable
        assert report_b.replayed == min(k, total)
        assert report_b.position is not None
        mgr_b.snapshot(pin=report_b.position)
        mgr_b.close()
        # Restart: snapshot at boundary k + the remaining tail.
        eco_c, pub_c, sub_c, mgr_c, _ = build_pipeline(work)
        report_c = mgr_c.restore()
        assert not report_c.unrecoverable
        assert report_c.snapshot_id is not None
        assert report_c.replayed <= total - k + 1  # pin overlap at most 1
        assert normalized_state(mgr_c) == reference, (
            f"seed {seed}: snapshot at record boundary {k} + tail replay "
            "diverged from pure log replay"
        )
        mgr_c.close()
        shutil.rmtree(work, ignore_errors=True)

    # The full-boundary pipeline must also *converge*: drain the
    # requeued backlog, heal intentional shed losses, digest-equal.
    sub_r.subscriber.drain()
    if not replicas_digest_equal(pub_r, sub_r):
        report = sub_r.audit_replication()
        assert sub_r.repair_replication(report=report).verified_in_sync
    assert replicas_digest_equal(pub_r, sub_r)
