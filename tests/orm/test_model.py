"""Unit tests for the Model base class (lifecycle, callbacks, guards)."""

import pytest

from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import ORMError, ReadOnlyAttributeError, RecordNotFound
from repro.orm import (
    Field,
    Model,
    VirtualField,
    after_create,
    after_destroy,
    after_save,
    after_update,
    before_create,
    before_destroy,
    before_save,
    before_update,
    bind_model,
)


@pytest.fixture
def user_cls():
    class User(Model):
        name = Field(str)
        age = Field(int)
        tags = Field(list, default=list)

    bind_model(User, PostgresLike("db"))
    return User


class TestLifecycle:
    def test_create_assigns_id(self, user_cls):
        user = user_cls.create(name="ada", age=36)
        assert user.id == 1
        assert not user.new_record

    def test_save_new_then_update(self, user_cls):
        user = user_cls(name="ada")
        assert user.new_record
        user.save()
        user.age = 36
        user.save()
        assert user_cls.find(user.id).age == 36

    def test_update_helper(self, user_cls):
        user = user_cls.create(name="a")
        user.update(name="b", age=1)
        reloaded = user_cls.find(user.id)
        assert (reloaded.name, reloaded.age) == ("b", 1)

    def test_destroy(self, user_cls):
        user = user_cls.create(name="a")
        user.destroy()
        with pytest.raises(RecordNotFound):
            user_cls.find(user.id)

    def test_destroy_unsaved_rejected(self, user_cls):
        with pytest.raises(ORMError):
            user_cls(name="a").destroy()

    def test_reload(self, user_cls):
        user = user_cls.create(name="a")
        stale = user_cls.find(user.id)
        user.update(name="b")
        assert stale.reload().name == "b"

    def test_reload_gone_record(self, user_cls):
        user = user_cls.create(name="a")
        user_cls.find(user.id).destroy()
        with pytest.raises(RecordNotFound):
            user.reload()

    def test_defaults(self, user_cls):
        user = user_cls.create(name="a")
        assert user.tags == []
        other = user_cls.create(name="b")
        assert user.tags is not other.tags

    def test_changed_tracking(self, user_cls):
        user = user_cls(name="a")
        assert "name" in user.changed
        user.save()
        assert user.changed == set()
        user.age = 3
        assert user.changed == {"age"}

    def test_unknown_attribute_rejected(self, user_cls):
        user = user_cls(name="a")
        with pytest.raises(ORMError):
            user.nope = 1
        with pytest.raises(ORMError):
            user_cls(nope=1)


class TestQueries:
    def test_find_by_and_where(self, user_cls):
        user_cls.create(name="a", age=1)
        user_cls.create(name="b", age=2)
        user_cls.create(name="b", age=3)
        assert user_cls.find_by(name="a").age == 1
        assert user_cls.find_by(name="zz") is None
        assert len(user_cls.where(name="b")) == 2
        assert user_cls.count() == 3
        assert user_cls.count(name="b") == 2
        assert user_cls.first().name == "a"
        assert len(user_cls.all()) == 3

    def test_where_order_and_limit(self, user_cls):
        for age in (3, 1, 2):
            user_cls.create(name="x", age=age)
        users = user_cls.where(_order_by=("age", "desc"), _limit=2)
        assert [u.age for u in users] == [3, 2]

    def test_find_or_initialize(self, user_cls):
        existing = user_cls.create(name="a")
        found = user_cls.find_or_initialize(existing.id)
        assert not found.new_record
        fresh = user_cls.find_or_initialize(999)
        assert fresh.new_record and fresh.id == 999

    def test_equality_by_identity(self, user_cls):
        a = user_cls.create(name="a")
        same = user_cls.find(a.id)
        assert a == same
        assert a != user_cls.create(name="b")
        assert user_cls(name="x") != user_cls(name="x")  # unsaved: no id


class TestCallbacks:
    def test_all_callbacks_fire_in_order(self):
        events = []

        class Audited(Model):
            name = Field(str)

            @before_save
            def bs(self):
                events.append("before_save")

            @after_save
            def as_(self):
                events.append("after_save")

            @before_create
            def bc(self):
                events.append("before_create")

            @after_create
            def ac(self):
                events.append("after_create")

            @before_update
            def bu(self):
                events.append("before_update")

            @after_update
            def au(self):
                events.append("after_update")

            @before_destroy
            def bd(self):
                events.append("before_destroy")

            @after_destroy
            def ad(self):
                events.append("after_destroy")

        bind_model(Audited, MongoLike("db"))
        record = Audited.create(name="a")
        assert events == ["before_save", "before_create", "after_create", "after_save"]
        events.clear()
        record.update(name="b")
        assert events == ["before_save", "before_update", "after_update", "after_save"]
        events.clear()
        record.destroy()
        assert events == ["before_destroy", "after_destroy"]

    def test_before_create_can_mutate(self):
        class Slugged(Model):
            title = Field(str)
            slug = Field(str)

            @before_create
            def derive_slug(self):
                self.slug = self.title.lower().replace(" ", "-")

        bind_model(Slugged, PostgresLike("db"))
        record = Slugged.create(title="Hello World")
        assert Slugged.find(record.id).slug == "hello-world"

    def test_callbacks_inherited(self):
        events = []

        class Base(Model):
            name = Field(str)

            @after_create
            def log(self):
                events.append(type(self).__name__)

        class Child(Base):
            pass

        bind_model(Child, MongoLike("db"))
        Child.create(name="x")
        assert events == ["Child"]

    def test_from_row_fires_no_callbacks(self):
        events = []

        class Watched(Model):
            name = Field(str)

            @after_create
            def log(self):
                events.append("create")

        bind_model(Watched, MongoLike("db"))
        Watched.create(name="a")
        events.clear()
        Watched.find_by(name="a")
        assert events == []


class TestTypeChain:
    def test_single_level(self, user_cls):
        assert user_cls.type_chain() == ["User"]

    def test_polymorphic_chain(self):
        class Animal(Model):
            name = Field(str)

        class Dog(Animal):
            pass

        bind_model(Dog, MongoLike("db"))
        assert Dog.type_chain() == ["Dog", "Animal"]


class TestReadOnlyGuard:
    def test_readonly_fields_rejected(self, user_cls):
        user_cls._readonly_fields = frozenset({"name"})
        try:
            user = user_cls.find_or_initialize(1)
            with pytest.raises(ReadOnlyAttributeError):
                user.name = "x"
            # The Synapse subscriber path can still write.
            with user_cls._suspend_readonly_guard():
                user.name = "x"
            assert user.name == "x"
        finally:
            user_cls._readonly_fields = frozenset()


class TestVirtualAttributes:
    def test_getter_setter_by_convention(self):
        class Profile(Model):
            raw = Field(str)
            shout = VirtualField()

            def shout_get(self):
                return (self.raw or "").upper()

            def shout_set(self, value):
                self.raw = value.lower()

        bind_model(Profile, MongoLike("db"))
        p = Profile(raw="hi")
        assert p.shout == "HI"
        p.shout = "YELL"
        assert p.raw == "yell"

    def test_missing_getter_raises(self):
        class Broken(Model):
            v = VirtualField()

        bind_model(Broken, MongoLike("db"))
        with pytest.raises(AttributeError):
            _ = Broken().v
        with pytest.raises(AttributeError):
            Broken().v = 1
