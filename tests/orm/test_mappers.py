"""Mapper tests: identical CRUD semantics across all five engine families."""

import pytest

from repro.databases.columnar import CassandraLike
from repro.databases.document import MongoLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import MySQLLike, PostgresLike
from repro.databases.search import ElasticsearchLike, Match
from repro.orm import Field, Model, bind_model
from repro.orm.mapper import ReadEvent, WriteEvent, WriteIntent


ENGINE_FACTORIES = [
    lambda: PostgresLike("pg"),
    lambda: MySQLLike("my"),
    lambda: MongoLike("mongo"),
    lambda: CassandraLike("cass"),
    lambda: ElasticsearchLike("es"),
    lambda: Neo4jLike("neo"),
]
ENGINE_IDS = ["postgresql", "mysql", "mongodb", "cassandra", "elasticsearch", "neo4j"]


@pytest.fixture(params=ENGINE_FACTORIES, ids=ENGINE_IDS)
def db(request):
    return request.param()


def make_model(db):
    class Article(Model):
        title = Field(str)
        views = Field(int)

    bind_model(Article, db)
    return Article


class TestUniformCRUD:
    """The common object API of §2, exercised on every engine family."""

    def test_create_find(self, db):
        Article = make_model(db)
        a = Article.create(title="hello", views=1)
        assert a.id is not None
        found = Article.find(a.id)
        assert (found.title, found.views) == ("hello", 1)

    def test_update(self, db):
        Article = make_model(db)
        a = Article.create(title="hello", views=1)
        a.update(views=2)
        assert Article.find(a.id).views == 2

    def test_destroy(self, db):
        Article = make_model(db)
        a = Article.create(title="hello", views=1)
        b = Article.create(title="other", views=2)
        a.destroy()
        assert Article.count() == 1
        assert Article.find(b.id).title == "other"

    def test_where_and_count(self, db):
        Article = make_model(db)
        Article.create(title="x", views=1)
        Article.create(title="x", views=2)
        Article.create(title="y", views=3)
        assert len(Article.where(title="x")) == 2
        assert Article.count(title="y") == 1

    def test_where_order_limit(self, db):
        Article = make_model(db)
        for views in (3, 1, 2):
            Article.create(title="t", views=views)
        top = Article.where(_order_by=("views", "desc"), _limit=1)
        assert top[0].views == 3

    def test_explicit_id_roundtrip(self, db):
        Article = make_model(db)
        a = Article(title="pinned", views=0)
        a.id = 42
        a.save()
        assert Article.find(42).title == "pinned"


class RecordingInterceptor:
    def __init__(self):
        self.writes = []
        self.reads = []

    def write(self, intent: WriteIntent, perform):
        row = perform()
        self.writes.append(WriteEvent(intent.kind, intent.model_cls, row))
        return row

    def read(self, event: ReadEvent):
        self.reads.append(event)


class TestInterception:
    def test_writes_and_reads_intercepted(self, db):
        Article = make_model(db)
        interceptor = RecordingInterceptor()
        Article.__mapper__.interceptor = interceptor

        a = Article.create(title="hello", views=1)
        a.update(views=2)
        Article.find(a.id)
        Article.where(title="hello")
        a.destroy()

        kinds = [w.kind for w in interceptor.writes]
        assert kinds == ["create", "update", "delete"]
        # The written rows carry the full final state including the id —
        # the marshalling source for Synapse (§4.1).
        assert interceptor.writes[0].row["id"] == a.id
        assert interceptor.writes[1].row["views"] == 2
        assert interceptor.writes[2].row["id"] == a.id
        # find + where each registered read dependencies on returned rows.
        assert len(interceptor.reads) == 2
        assert interceptor.reads[0].rows[0]["id"] == a.id

    def test_count_is_not_a_read_dependency(self, db):
        Article = make_model(db)
        interceptor = RecordingInterceptor()
        Article.__mapper__.interceptor = interceptor
        Article.create(title="a", views=0)
        interceptor.reads.clear()
        Article.count()
        assert interceptor.reads == []


class TestEngineSpecifics:
    def test_mysql_readback_matches_returning(self):
        """The no-RETURNING read-back protocol yields identical rows."""
        pg_articles = make_model(PostgresLike("pg"))
        my_articles = make_model(MySQLLike("my"))
        a = pg_articles.create(title="t", views=1)
        b = my_articles.create(title="t", views=1)
        assert a.to_attributes() == b.to_attributes()

    def test_search_mapper_supports_fulltext(self):
        db = ElasticsearchLike("es")

        class Post(Model):
            __analyzers__ = {"body": "simple"}
            body = Field(str)

        bind_model(Post, db)
        Post.create(body="Cats are GREAT")
        Post.create(body="dogs are fine")
        hits = db.search("posts", Match("body", "cats"))
        assert len(hits) == 1

    def test_graph_mapper_nodes_carry_label(self):
        db = Neo4jLike("neo")
        Article = make_model(db)
        a = Article.create(title="t", views=0)
        assert db.find_nodes("Article", {"title": "t"})[0]["id"] == a.id

    def test_cassandra_update_is_upsert_merge(self):
        db = CassandraLike("cass")
        Article = make_model(db)
        a = Article.create(title="t", views=1)
        a.update(views=2)
        row = db.get_by_id("articles", a.id)
        assert row["title"] == "t" and row["views"] == 2

    def test_document_mapper_translates_ids(self):
        db = MongoLike("m")
        Article = make_model(db)
        a = Article.create(title="t", views=1)
        doc = db.find_one("articles", {"title": "t"})
        assert doc["_id"] == a.id
        assert "id" not in doc
