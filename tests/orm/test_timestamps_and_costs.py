"""Automatic timestamps and the engines' virtual cost model."""

import pytest

from repro.clock import VirtualClock
from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model, bind_model


class TestAutomaticTimestamps:
    def make(self, clock=None):
        eco = Ecosystem(clock=clock)
        svc = eco.service("svc", database=MongoLike("m"))

        @svc.model()
        class Note(Model):
            body = Field(str)
            created_at = Field(float)
            updated_at = Field(float)

        return Note

    def test_created_and_updated_set_on_create(self):
        clock = VirtualClock(start=100.0)
        Note = self.make(clock)
        note = Note.create(body="x")
        assert note.created_at == 100.0
        assert note.updated_at == 100.0

    def test_updated_moves_created_stays(self):
        clock = VirtualClock(start=100.0)
        Note = self.make(clock)
        note = Note.create(body="x")
        clock.advance(50)
        note.update(body="y")
        assert note.created_at == 100.0
        assert note.updated_at == 150.0

    def test_explicit_created_at_respected(self):
        Note = self.make(VirtualClock(start=5.0))
        note = Note.create(body="x", created_at=1.0)
        assert note.created_at == 1.0

    def test_models_without_timestamp_fields_unaffected(self):
        class Bare(Model):
            body = Field(str)

        bind_model(Bare, MongoLike("m2"))
        bare = Bare.create(body="x")
        assert "created_at" not in bare.to_attributes()

    def test_standalone_model_uses_wall_clock(self):
        class Stamped(Model):
            created_at = Field(float)
            updated_at = Field(float)

        bind_model(Stamped, MongoLike("m3"))
        stamped = Stamped.create()
        assert stamped.created_at is not None and stamped.created_at > 0


class TestEngineCostModel:
    def test_write_and_read_costs_consume_virtual_time(self):
        clock = VirtualClock()
        db = PostgresLike("pg", clock=clock, write_cost=0.01, read_cost=0.002)
        from repro.databases.relational import Column, TableSchema, Text

        db.create_table(TableSchema("t", [Column("x", Text())]))
        db.insert("t", {"x": "a"})
        assert clock.now() == pytest.approx(0.01)
        db.select("t")
        assert clock.now() == pytest.approx(0.012)

    def test_stats_snapshot_and_reset(self):
        db = MongoLike("m")
        db.insert_one("c", {"a": 1})
        db.find("c")
        snap = db.stats.snapshot()
        assert snap["writes"] == 1
        assert snap["reads"] == 1
        db.stats.reset()
        assert db.stats.snapshot()["writes"] == 0
