"""Association tests across same-service models (possibly different engines)."""

import pytest

from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.errors import ORMError
from repro.orm import BelongsTo, Field, HasMany, Model, bind_model
from repro.orm.associations import snake_case


def build_blog(db=None, registry=None):
    registry = registry if registry is not None else {}
    db = db or PostgresLike("blog")

    class User(Model):
        name = Field(str)
        posts = HasMany("Post", foreign_key="author_id")

    class Post(Model):
        body = Field(str)
        author = BelongsTo("User")
        comments = HasMany("Comment")

    class Comment(Model):
        body = Field(str)
        post = BelongsTo("Post")
        author = BelongsTo("User")

    for cls in (User, Post, Comment):
        bind_model(cls, db, registry=registry)
    return User, Post, Comment


class TestSnakeCase:
    def test_basic(self):
        assert snake_case("User") == "user"
        assert snake_case("FriendShip") == "friend_ship"
        assert snake_case("ACLEntry") == "a_c_l_entry"


class TestBelongsTo:
    def test_foreign_key_field_created(self):
        User, Post, Comment = build_blog()
        assert "author_id" in Post.persisted_fields()

    def test_assign_and_resolve(self):
        User, Post, Comment = build_blog()
        ada = User.create(name="ada")
        post = Post(body="hi")
        post.author = ada
        post.save()
        assert post.author_id == ada.id
        assert Post.find(post.id).author.name == "ada"

    def test_assign_by_fk(self):
        User, Post, Comment = build_blog()
        ada = User.create(name="ada")
        post = Post.create(body="hi", author_id=ada.id)
        assert post.author == ada

    def test_none_when_unset(self):
        User, Post, Comment = build_blog()
        assert Post.create(body="hi").author is None

    def test_assign_none_clears(self):
        User, Post, Comment = build_blog()
        post = Post.create(body="hi", author_id=User.create(name="a").id)
        post.author = None
        assert post.author_id is None

    def test_unregistered_target_raises(self):
        class Orphan(Model):
            parent = BelongsTo("Missing")

        bind_model(Orphan, MongoLike("db"))
        orphan = Orphan()
        orphan.parent_id = 1
        with pytest.raises(ORMError):
            _ = orphan.parent


class TestHasMany:
    def test_children_resolved(self):
        User, Post, Comment = build_blog()
        ada = User.create(name="ada")
        p1 = Post.create(body="one", author_id=ada.id)
        Post.create(body="two", author_id=ada.id)
        Post.create(body="other", author_id=User.create(name="bob").id)
        assert {p.body for p in ada.posts} == {"one", "two"}
        Comment.create(body="c", post_id=p1.id, author_id=ada.id)
        assert len(p1.comments) == 1

    def test_default_foreign_key_from_owner_name(self):
        User, Post, Comment = build_blog()
        # Comment's HasMany owner is Post -> post_id
        assert "post_id" in Comment.persisted_fields()

    def test_unsaved_owner_has_no_children(self):
        User, Post, Comment = build_blog()
        assert User(name="x").posts == []


class TestCrossEngineAssociations:
    def test_models_on_different_engines_in_one_registry(self):
        registry = {}
        pg = PostgresLike("pg")
        mongo = MongoLike("mongo")

        class User(Model):
            name = Field(str)

        class Activity(Model):
            kind = Field(str)
            user = BelongsTo("User")

        bind_model(User, pg, registry=registry)
        bind_model(Activity, mongo, registry=registry)
        ada = User.create(name="ada")
        act = Activity.create(kind="login", user_id=ada.id)
        assert act.user.name == "ada"
