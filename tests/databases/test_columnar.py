"""Unit tests for the columnar (Cassandra-like) engine."""

import pytest

from repro.databases.columnar import CassandraLike, ColumnFamily
from repro.errors import SchemaError, UnknownTableError


@pytest.fixture
def db():
    database = CassandraLike("cass", flush_threshold=4)
    database.create_table(ColumnFamily("users"))
    return database


class TestBasics:
    def test_put_get(self, db):
        db.put("users", {"id": 1, "name": "a"})
        assert db.get_by_id("users", 1) == {"id": 1, "name": "a"}

    def test_put_assigns_id_when_missing(self, db):
        key = db.put("users", {"name": "a"})
        assert db.get("users", key)["name"] == "a"

    def test_upsert_merges_columns(self, db):
        db.put("users", {"id": 1, "name": "a"})
        db.put("users", {"id": 1, "age": 3})
        assert db.get_by_id("users", 1) == {"id": 1, "name": "a", "age": 3}

    def test_newest_write_wins(self, db):
        db.put("users", {"id": 1, "name": "a"})
        db.put("users", {"id": 1, "name": "b"})
        assert db.get_by_id("users", 1)["name"] == "b"

    def test_delete_tombstones(self, db):
        db.put("users", {"id": 1, "name": "a"})
        db.delete("users", (1,))
        assert db.get_by_id("users", 1) is None

    def test_write_after_delete_resurrects(self, db):
        db.put("users", {"id": 1, "name": "a"})
        db.delete("users", (1,))
        db.put("users", {"id": 1, "name": "b"})
        assert db.get_by_id("users", 1) == {"id": 1, "name": "b"}

    def test_missing_table(self, db):
        with pytest.raises(UnknownTableError):
            db.get("nope", (1,))

    def test_duplicate_family_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(ColumnFamily("users"))


class TestLSM:
    def test_flush_and_read_through_sstables(self, db):
        for i in range(20):
            db.put("users", {"id": i, "name": f"u{i}"})
        stats = db.storage_stats("users")
        assert stats["flushes"] >= 1
        # Every row remains visible post-flush.
        assert db.count("users") == 20
        assert db.get_by_id("users", 3)["name"] == "u3"

    def test_compaction_bounds_sstables(self, db):
        for i in range(200):
            db.put("users", {"id": i % 10, "v": i})
        stats = db.storage_stats("users")
        assert stats["compactions"] >= 1
        assert stats["sstables"] <= 5
        # Latest value per key survives compaction.
        assert db.get_by_id("users", 9)["v"] == 199

    def test_tombstone_survives_flush(self, db):
        db.put("users", {"id": 1, "name": "a"})
        db.delete("users", (1,))
        for i in range(10, 40):
            db.put("users", {"id": i})
        assert db.get_by_id("users", 1) is None


class TestClusteringAndScan:
    def test_clustering_rows(self):
        db = CassandraLike("c")
        db.create_table(ColumnFamily("events", partition_key="user_id", clustering_key="seq"))
        db.put("events", {"user_id": 1, "seq": 2, "what": "b"})
        db.put("events", {"user_id": 1, "seq": 1, "what": "a"})
        db.put("events", {"user_id": 2, "seq": 1, "what": "x"})
        rows = db.scan_partition("events", 1)
        assert [r["what"] for r in rows] == ["a", "b"]

    def test_scan_excludes_deleted(self, db):
        db.put("users", {"id": 1})
        db.put("users", {"id": 2})
        db.delete("users", (1,))
        assert [r["id"] for r in db.scan("users")] == [2]


class TestBatches:
    def test_logged_batch_applies_atomically(self, db):
        db.batch(
            [
                ("put", "users", {"id": 1, "name": "a"}),
                ("put", "users", {"id": 2, "name": "b"}),
            ]
        )
        assert db.count("users") == 2

    def test_batch_delete(self, db):
        db.put("users", {"id": 1})
        db.batch([("delete", "users", (1,)), ("put", "users", {"id": 2})])
        assert [r["id"] for r in db.scan("users")] == [2]

    def test_batch_rejects_unknown_mutation(self, db):
        with pytest.raises(SchemaError):
            db.batch([("truncate", "users", None)])

    def test_no_returning(self, db):
        assert db.supports_returning is False
