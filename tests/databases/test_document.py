"""Unit tests for the document engine and its filter language."""

import pytest

from repro.databases.document import MongoLike, TokuMXLike, matches_filter
from repro.databases.document.filters import apply_update, get_path, set_path
from repro.errors import DuplicateKeyError, UnsupportedOperationError


@pytest.fixture
def db():
    return MongoLike("mongo")


class TestFilters:
    def test_equality_and_dot_paths(self):
        doc = {"a": 1, "b": {"c": 2}}
        assert matches_filter(doc, {"a": 1})
        assert matches_filter(doc, {"b.c": 2})
        assert not matches_filter(doc, {"b.c": 3})
        assert not matches_filter(doc, {"missing": 1})
        assert matches_filter(doc, {"missing": None})

    def test_comparison_operators(self):
        doc = {"n": 5, "s": "hello"}
        assert matches_filter(doc, {"n": {"$gt": 4}})
        assert matches_filter(doc, {"n": {"$gte": 5, "$lte": 5}})
        assert not matches_filter(doc, {"n": {"$lt": 5}})
        assert matches_filter(doc, {"n": {"$ne": 4}})
        assert matches_filter(doc, {"n": {"$in": [5, 6]}})
        assert matches_filter(doc, {"n": {"$nin": [1, 2]}})
        assert matches_filter(doc, {"s": {"$regex": "^hel"}})

    def test_exists(self):
        doc = {"a": 1}
        assert matches_filter(doc, {"a": {"$exists": True}})
        assert matches_filter(doc, {"b": {"$exists": False}})
        assert not matches_filter(doc, {"b": {"$exists": True}})

    def test_array_membership_semantics(self):
        doc = {"tags": ["cats", "dogs"]}
        assert matches_filter(doc, {"tags": "cats"})
        assert matches_filter(doc, {"tags": {"$in": ["dogs", "fish"]}})
        assert matches_filter(doc, {"tags": {"$all": ["cats", "dogs"]}})
        assert not matches_filter(doc, {"tags": {"$all": ["cats", "fish"]}})
        assert matches_filter(doc, {"tags": {"$size": 2}})

    def test_logical_operators(self):
        doc = {"a": 1, "b": 2}
        assert matches_filter(doc, {"$or": [{"a": 9}, {"b": 2}]})
        assert matches_filter(doc, {"$and": [{"a": 1}, {"b": 2}]})
        assert matches_filter(doc, {"$nor": [{"a": 9}, {"b": 9}]})
        assert not matches_filter(doc, {"$or": [{"a": 9}, {"b": 9}]})

    def test_mixed_type_ordering_never_matches(self):
        assert not matches_filter({"a": "x"}, {"a": {"$gt": 1}})


class TestPathHelpers:
    def test_get_set_nested(self):
        doc = {}
        set_path(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}
        assert get_path(doc, "a.b.c") == 1

    def test_get_array_index(self):
        assert get_path({"xs": [10, 20]}, "xs.1") == 20


class TestUpdates:
    def test_replacement_preserves_id(self):
        out = apply_update({"_id": 1, "a": 1}, {"b": 2})
        assert out == {"_id": 1, "b": 2}

    def test_set_unset_inc(self):
        doc = {"_id": 1, "a": 1, "b": {"c": 3}}
        out = apply_update(doc, {"$set": {"b.c": 9}, "$unset": {"a": 1}, "$inc": {"n": 2}})
        assert out["b"]["c"] == 9
        assert "a" not in out
        assert out["n"] == 2
        # original untouched
        assert doc["b"]["c"] == 3

    def test_push_pull_add_to_set(self):
        doc = {"_id": 1, "tags": ["a"]}
        out = apply_update(doc, {"$push": {"tags": "b"}})
        assert out["tags"] == ["a", "b"]
        out = apply_update(out, {"$pull": {"tags": "a"}})
        assert out["tags"] == ["b"]
        out = apply_update(out, {"$addToSet": {"tags": "b"}})
        assert out["tags"] == ["b"]


class TestEngine:
    def test_insert_assigns_ids(self, db):
        d1 = db.insert_one("users", {"name": "a"})
        d2 = db.insert_one("users", {"name": "b"})
        assert (d1["_id"], d2["_id"]) == (1, 2)

    def test_insert_duplicate_id_rejected(self, db):
        db.insert_one("users", {"_id": 1})
        with pytest.raises(DuplicateKeyError):
            db.insert_one("users", {"_id": 1})

    def test_schemaless_documents(self, db):
        db.insert_one("users", {"name": "a", "interests": ["cats", "dogs"]})
        db.insert_one("users", {"name": "b", "address": {"city": "nyc"}})
        assert db.count("users") == 2
        assert db.find_one("users", {"address.city": "nyc"})["name"] == "b"

    def test_find_sort_limit_projection(self, db):
        for age in [3, 1, 2]:
            db.insert_one("users", {"age": age, "x": "y"})
        docs = db.find("users", sort=("age", -1), limit=2)
        assert [d["age"] for d in docs] == [3, 2]
        docs = db.find("users", projection=["age"])
        assert set(docs[0]) == {"_id", "age"}

    def test_update_one_returns_new_doc(self, db):
        db.insert_one("users", {"name": "a", "n": 1})
        out = db.update_one("users", {"name": "a"}, {"$inc": {"n": 1}})
        assert out["n"] == 2
        assert db.update_one("users", {"name": "zzz"}, {"$set": {"n": 0}}) is None

    def test_update_many(self, db):
        db.insert_one("users", {"g": 1})
        db.insert_one("users", {"g": 1})
        out = db.update_many("users", {"g": 1}, {"$set": {"seen": True}})
        assert len(out) == 2
        assert all(d["seen"] for d in db.find("users"))

    def test_delete(self, db):
        db.insert_one("users", {"name": "a"})
        removed = db.delete_one("users", {"name": "a"})
        assert removed["name"] == "a"
        assert db.count("users") == 0
        assert db.delete_one("users", {"name": "a"}) is None

    def test_documents_are_isolated_copies(self, db):
        db.insert_one("users", {"tags": ["a"]})
        doc = db.find_one("users")
        doc["tags"].append("b")
        assert db.find_one("users")["tags"] == ["a"]

    def test_index_point_lookup(self, db):
        db.create_index("users", "name")
        db.insert_one("users", {"name": "a"})
        db.insert_one("users", {"name": "b"})
        db.stats.reset()
        assert db.find_one("users", {"name": "b"})["name"] == "b"
        assert db.stats.index_lookups == 1
        assert db.stats.scans == 0

    def test_index_created_after_data(self, db):
        db.insert_one("users", {"name": "a"})
        db.create_index("users", "name")
        db.stats.reset()
        assert db.find("users", {"name": "a"})
        assert db.stats.index_lookups == 1

    def test_id_lookup_uses_pk(self, db):
        doc = db.insert_one("users", {"name": "a"})
        db.stats.reset()
        assert db.get("users", doc["_id"])["name"] == "a"
        assert db.stats.scans == 0


class TestTransactions:
    def test_mongo_rejects_transactions(self, db):
        with pytest.raises(UnsupportedOperationError):
            db.begin()

    def test_tokumx_commit_and_rollback(self):
        db = TokuMXLike("toku")
        with db.begin():
            db.insert_one("users", {"name": "a"})
        assert db.count("users") == 1
        with pytest.raises(RuntimeError):
            with db.begin():
                db.insert_one("users", {"name": "b"})
                db.update_one("users", {"name": "a"}, {"$set": {"name": "z"}})
                raise RuntimeError("boom")
        assert db.count("users") == 1
        assert db.find_one("users")["name"] == "a"
