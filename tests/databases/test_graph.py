"""Unit tests for the graph (Neo4j-like) engine."""

import pytest

from repro.databases.graph import Neo4jLike
from repro.errors import DatabaseError


@pytest.fixture
def db():
    return Neo4jLike("neo")


def build_social(db):
    """1-2-3 chain of friends plus likes."""
    for i in range(1, 5):
        db.create_node("User", {"id": i, "name": f"u{i}"})
    for pid in (101, 102, 103):
        db.create_node("Product", {"id": pid})
    db.create_edge(1, "friend", 2, directed=False)
    db.create_edge(2, "friend", 3, directed=False)
    db.create_edge(2, "likes", 101)
    db.create_edge(3, "likes", 102)
    db.create_edge(3, "likes", 101)
    db.create_edge(1, "likes", 103)


class TestNodes:
    def test_create_and_get(self, db):
        node = db.create_node("User", {"name": "ada"})
        assert db.get_node(node["id"])["name"] == "ada"

    def test_explicit_id_advances_sequence(self, db):
        db.create_node("User", {"id": 10})
        node = db.create_node("User", {})
        assert node["id"] == 11

    def test_duplicate_node_rejected(self, db):
        db.create_node("User", {"id": 1})
        with pytest.raises(DatabaseError):
            db.create_node("User", {"id": 1})

    def test_update_node(self, db):
        node = db.create_node("User", {"name": "a"})
        db.update_node(node["id"], {"name": "b"})
        assert db.get_node(node["id"])["name"] == "b"

    def test_find_nodes_by_label_and_props(self, db):
        db.create_node("User", {"name": "a", "city": "nyc"})
        db.create_node("User", {"name": "b", "city": "sf"})
        db.create_node("Product", {"name": "a"})
        assert len(db.find_nodes("User")) == 2
        assert db.find_nodes("User", {"city": "sf"})[0]["name"] == "b"

    def test_property_index_used(self, db):
        db.create_property_index("User", "city")
        db.create_node("User", {"city": "nyc"})
        db.create_node("User", {"city": "sf"})
        db.stats.reset()
        assert len(db.find_nodes("User", {"city": "nyc"})) == 1
        assert db.stats.index_lookups == 1
        assert db.stats.scans == 0

    def test_index_tracks_updates(self, db):
        db.create_property_index("User", "city")
        node = db.create_node("User", {"city": "nyc"})
        db.update_node(node["id"], {"city": "sf"})
        assert db.find_nodes("User", {"city": "sf"})
        assert not db.find_nodes("User", {"city": "nyc"})

    def test_delete_node_detaches_edges(self, db):
        a = db.create_node("User", {})
        b = db.create_node("User", {})
        db.create_edge(a["id"], "friend", b["id"], directed=False)
        db.delete_node(b["id"])
        assert db.neighbours(a["id"], "friend") == set()
        assert db.count_edges() == 0


class TestEdges:
    def test_directed_edge(self, db):
        a = db.create_node("User", {})
        b = db.create_node("User", {})
        db.create_edge(a["id"], "follows", b["id"])
        assert db.has_edge(a["id"], "follows", b["id"])
        assert not db.has_edge(b["id"], "follows", a["id"])

    def test_undirected_edge(self, db):
        a = db.create_node("User", {})
        b = db.create_node("User", {})
        db.create_edge(a["id"], "friend", b["id"], directed=False)
        assert db.has_edge(a["id"], "friend", b["id"])
        assert db.has_edge(b["id"], "friend", a["id"])

    def test_delete_edge(self, db):
        a = db.create_node("User", {})
        b = db.create_node("User", {})
        db.create_edge(a["id"], "friend", b["id"], directed=False)
        db.delete_edge(a["id"], "friend", b["id"], directed=False)
        assert not db.has_edge(a["id"], "friend", b["id"])
        assert not db.has_edge(b["id"], "friend", a["id"])

    def test_edge_to_missing_node_rejected(self, db):
        a = db.create_node("User", {})
        with pytest.raises(DatabaseError):
            db.create_edge(a["id"], "friend", 999)

    def test_edge_properties(self, db):
        a = db.create_node("User", {})
        b = db.create_node("User", {})
        db.create_edge(a["id"], "friend", b["id"], properties={"since": 2020})
        assert db.edge_properties(a["id"], "friend", b["id"]) == {"since": 2020}


class TestTraversal:
    def test_bfs_depths(self, db):
        build_social(db)
        depths = db.traverse(1, "friend", max_depth=2)
        assert depths == {2: 1, 3: 2}

    def test_bfs_depth_limit(self, db):
        build_social(db)
        assert db.traverse(1, "friend", max_depth=1) == {2: 1}

    def test_shortest_path(self, db):
        build_social(db)
        assert db.shortest_path(1, 3, "friend") == [1, 2, 3]
        assert db.shortest_path(1, 4, "friend") is None
        assert db.shortest_path(1, 1, "friend") == [1]

    def test_recommendation_ranks_by_endorsements(self, db):
        build_social(db)
        # User 1's network (2 and 3) likes 101 twice, 102 once; 103 is
        # already liked by user 1 and must be excluded.
        recs = db.recommend(1, "friend", "likes", depth=2)
        assert recs == [(101, 2), (102, 1)]

    def test_cycle_terminates(self, db):
        a = db.create_node("User", {})
        b = db.create_node("User", {})
        db.create_edge(a["id"], "friend", b["id"], directed=False)
        depths = db.traverse(a["id"], "friend", max_depth=10)
        assert depths == {b["id"]: 1}
