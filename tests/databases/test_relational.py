"""Unit tests for the relational engine."""

import pytest

from repro.databases.relational import (
    ALWAYS,
    Col,
    Column,
    Index,
    Integer,
    Json,
    MySQLLike,
    PostgresLike,
    TableSchema,
    Text,
)
from repro.errors import (
    DuplicateKeyError,
    SchemaError,
    TransactionError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
    UnsupportedOperationError,
)


@pytest.fixture
def db():
    database = PostgresLike("testdb")
    database.create_table(
        TableSchema(
            "users",
            [
                Column("name", Text(), nullable=False),
                Column("age", Integer()),
                Column("tags", Json(), default=list),
            ],
            indexes=[Index("users_name", ["name"])],
        )
    )
    return database


class TestDDL:
    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(TableSchema("users", []))

    def test_drop_table(self, db):
        db.drop_table("users")
        assert not db.has_table("users")
        with pytest.raises(UnknownTableError):
            db.select("users")

    def test_add_column_backfills_default(self, db):
        db.insert("users", {"name": "ada"})
        db.add_column("users", Column("city", Text(), default="nyc"))
        rows = db.select("users")
        assert rows[0]["city"] == "nyc"

    def test_drop_column_removes_data_and_dependent_indexes(self, db):
        db.insert("users", {"name": "ada"})
        db.drop_column("users", "name")
        assert "name" not in db.select("users")[0]
        assert "users_name" not in db.table_schema("users").indexes

    def test_cannot_drop_primary_key(self, db):
        with pytest.raises(SchemaError):
            db.drop_column("users", "id")

    def test_create_index_rebuilds_from_existing_rows(self, db):
        db.insert("users", {"name": "ada", "age": 30})
        db.create_index("users", Index("users_age", ["age"]))
        rows = db.select("users", where=Col("age") == 30)
        assert len(rows) == 1
        assert db.stats.index_lookups >= 1


class TestCRUD:
    def test_insert_assigns_sequential_ids(self, db):
        r1 = db.insert("users", {"name": "a"}, returning=True)
        r2 = db.insert("users", {"name": "b"}, returning=True)
        assert (r1["id"], r2["id"]) == (1, 2)

    def test_insert_honours_explicit_id_and_advances_sequence(self, db):
        db.insert("users", {"id": 10, "name": "a"})
        row = db.insert("users", {"name": "b"}, returning=True)
        assert row["id"] == 11

    def test_insert_duplicate_pk_rejected(self, db):
        db.insert("users", {"id": 1, "name": "a"})
        with pytest.raises(DuplicateKeyError):
            db.insert("users", {"id": 1, "name": "b"})

    def test_insert_validates_types(self, db):
        with pytest.raises(TypeMismatchError):
            db.insert("users", {"name": "a", "age": "not-a-number"})

    def test_insert_rejects_unknown_columns(self, db):
        with pytest.raises(UnknownColumnError):
            db.insert("users", {"name": "a", "nope": 1})

    def test_not_null_enforced(self, db):
        with pytest.raises(TypeMismatchError):
            db.insert("users", {"age": 3})

    def test_callable_default_per_row(self, db):
        a = db.insert("users", {"name": "a"}, returning=True)
        b = db.insert("users", {"name": "b"}, returning=True)
        a["tags"].append("x")
        assert b["tags"] == []

    def test_update_with_returning(self, db):
        db.insert("users", {"name": "a", "age": 1})
        updated = db.update("users", Col("name") == "a", {"age": 2}, returning=True)
        assert updated[0]["age"] == 2

    def test_update_without_returning_counts(self, db):
        db.insert("users", {"name": "a"})
        db.insert("users", {"name": "a"})
        assert db.update("users", Col("name") == "a", {"age": 5}) == 2

    def test_update_cannot_change_pk(self, db):
        db.insert("users", {"name": "a"})
        db.update("users", ALWAYS, {"id": 99, "age": 2}, returning=False)
        assert db.select("users")[0]["id"] == 1

    def test_delete(self, db):
        db.insert("users", {"name": "a"})
        deleted = db.delete("users", Col("name") == "a", returning=True)
        assert deleted[0]["name"] == "a"
        assert db.count("users") == 0

    def test_get_point_lookup(self, db):
        row = db.insert("users", {"name": "a"}, returning=True)
        assert db.get("users", row["id"])["name"] == "a"
        assert db.get("users", 999) is None

    def test_rows_returned_are_copies(self, db):
        db.insert("users", {"name": "a"})
        row = db.select("users")[0]
        row["name"] = "mutated"
        assert db.select("users")[0]["name"] == "a"


class TestQueries:
    def test_where_expressions(self, db):
        for name, age in [("a", 10), ("b", 20), ("c", 30)]:
            db.insert("users", {"name": name, "age": age})
        assert len(db.select("users", where=Col("age") > 15)) == 2
        assert len(db.select("users", where=(Col("age") > 5) & (Col("age") < 25))) == 2
        assert len(db.select("users", where=(Col("name") == "a") | (Col("name") == "c"))) == 2
        assert len(db.select("users", where=~(Col("name") == "a"))) == 2
        assert len(db.select("users", where=Col("name").in_(["a", "b"]))) == 2
        assert len(db.select("users", where=Col("name").like("%a%"))) == 1

    def test_null_semantics(self, db):
        db.insert("users", {"name": "a", "age": None})
        db.insert("users", {"name": "b", "age": 5})
        assert len(db.select("users", where=Col("age").is_null())) == 1
        # NULL never satisfies an ordering comparison.
        assert len(db.select("users", where=Col("age") > 0)) == 1

    def test_order_limit_offset(self, db):
        for age in [30, 10, 20]:
            db.insert("users", {"name": "u", "age": age})
        rows = db.select("users", order_by=("age", "desc"), limit=2)
        assert [r["age"] for r in rows] == [30, 20]
        rows = db.select("users", order_by=("age", "asc"), offset=1)
        assert [r["age"] for r in rows] == [20, 30]

    def test_projection_keeps_pk(self, db):
        db.insert("users", {"name": "a", "age": 1})
        rows = db.select("users", columns=["name"])
        assert set(rows[0]) == {"id", "name"}

    def test_index_used_for_equality(self, db):
        db.insert("users", {"name": "a"})
        db.stats.reset()
        db.select("users", where=Col("name") == "a")
        assert db.stats.index_lookups == 1
        assert db.stats.scans == 0

    def test_scan_used_without_index(self, db):
        db.insert("users", {"name": "a", "age": 3})
        db.stats.reset()
        db.select("users", where=Col("age") == 3)
        assert db.stats.scans == 1

    def test_pk_lookup_in_where(self, db):
        row = db.insert("users", {"name": "a"}, returning=True)
        db.stats.reset()
        rows = db.select("users", where=Col("id") == row["id"])
        assert len(rows) == 1
        assert db.stats.scans == 0

    def test_join(self, db):
        db.create_table(
            TableSchema("posts", [Column("author_id", Integer()), Column("body", Text())])
        )
        u = db.insert("users", {"name": "ada"}, returning=True)
        db.insert("posts", {"author_id": u["id"], "body": "hi"})
        db.insert("posts", {"author_id": 999, "body": "orphan"})
        pairs = db.join("users", "posts", on=("id", "author_id"))
        assert len(pairs) == 1
        assert pairs[0][1]["body"] == "hi"

    def test_unique_index(self, db):
        db.create_index("users", Index("uniq_name", ["name"], unique=True))
        db.insert("users", {"name": "a"})
        with pytest.raises(DuplicateKeyError):
            db.insert("users", {"name": "a"})


class TestTransactions:
    def test_commit_applies(self, db):
        with db.begin():
            db.insert("users", {"name": "a"})
        assert db.count("users") == 1

    def test_rollback_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.begin():
                db.insert("users", {"name": "a"})
                raise RuntimeError("boom")
        assert db.count("users") == 0

    def test_rollback_restores_updates_and_deletes(self, db):
        db.insert("users", {"name": "a", "age": 1})
        db.insert("users", {"name": "b", "age": 2})
        txn = db.begin()
        db.update("users", Col("name") == "a", {"age": 99})
        db.delete("users", Col("name") == "b")
        txn.rollback()
        rows = {r["name"]: r["age"] for r in db.select("users")}
        assert rows == {"a": 1, "b": 2}

    def test_written_rows_recorded_in_order(self, db):
        txn = db.begin()
        db.insert("users", {"name": "a"})
        db.update("users", Col("name") == "a", {"age": 5})
        assert [w["op"] for w in txn.written] == ["insert", "update"]
        txn.commit()

    def test_prepare_hook_failure_aborts(self, db):
        txn = db.begin()
        db.insert("users", {"name": "a"})
        txn.on_prepare.append(lambda t: (_ for _ in ()).throw(RuntimeError("nope")))
        with pytest.raises(RuntimeError):
            txn.commit()
        assert db.count("users") == 0

    def test_commit_hooks_fire_after_commit(self, db):
        fired = []
        txn = db.begin()
        db.insert("users", {"name": "a"})
        txn.on_commit.append(lambda t: fired.append(db.count("users")))
        txn.commit()
        assert fired == [1]

    def test_nested_transactions_rejected(self, db):
        with db.begin():
            with pytest.raises(TransactionError):
                db.begin()

    def test_double_commit_rejected(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()


class TestVariants:
    def test_mysql_has_no_returning(self):
        db = MySQLLike("m")
        db.create_table(TableSchema("t", [Column("x", Integer())]))
        with pytest.raises(UnsupportedOperationError):
            db.insert("t", {"x": 1}, returning=True)
        db.insert("t", {"x": 1})
        assert db.count("t") == 1

    def test_engine_families(self):
        assert PostgresLike("p").supports_returning
        assert not MySQLLike("m").supports_returning
