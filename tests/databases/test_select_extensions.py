"""SELECT extensions: DISTINCT, multi-column ORDER BY, the query log."""

import pytest

from repro.databases.relational import (
    Col,
    Column,
    Integer,
    PostgresLike,
    TableSchema,
    Text,
)
from repro.errors import UnsupportedOperationError


@pytest.fixture
def db():
    database = PostgresLike("pg")
    database.create_table(
        TableSchema("people", [Column("city", Text()), Column("age", Integer())])
    )
    for city, age in [("nyc", 30), ("nyc", 20), ("sf", 30), ("sf", 20),
                      ("nyc", 20)]:
        database.insert("people", {"city": city, "age": age})
    return database


class TestDistinct:
    def test_distinct_on_projection(self, db):
        rows = db.select("people", columns=["city"], distinct=True)
        assert sorted(r["city"] for r in rows) == ["nyc", "sf"]

    def test_distinct_multi_column(self, db):
        rows = db.select("people", columns=["city", "age"], distinct=True)
        assert len(rows) == 4  # (nyc,20) deduped

    def test_distinct_requires_projection(self, db):
        with pytest.raises(UnsupportedOperationError):
            db.select("people", distinct=True)


class TestMultiColumnOrdering:
    def test_two_key_sort(self, db):
        rows = db.select(
            "people", order_by=[("city", "asc"), ("age", "desc")]
        )
        key = [(r["city"], r["age"]) for r in rows]
        assert key == [("nyc", 30), ("nyc", 20), ("nyc", 20),
                       ("sf", 30), ("sf", 20)]

    def test_single_tuple_still_works(self, db):
        rows = db.select("people", order_by=("age", "asc"))
        assert [r["age"] for r in rows] == [20, 20, 20, 30, 30]


class TestQueryLog:
    def test_disabled_by_default(self, db):
        db.select("people")
        assert db.query_log is None

    def test_records_reads_and_writes(self, db):
        db.enable_query_log()
        db.select("people", where=Col("city") == "nyc")
        db.insert("people", {"city": "la", "age": 1})
        db.update("people", Col("city") == "la", {"age": 2})
        db.delete("people", Col("city") == "la")
        ops = [entry[0] for entry in db.query_log]
        assert ops == ["select", "insert", "update", "delete"]
        assert "nyc" in db.query_log[0][1]

    def test_ring_buffer_bounded(self, db):
        db.enable_query_log(capacity=3)
        for _ in range(10):
            db.select("people")
        assert len(db.query_log) == 3
