"""Edge-case coverage across engines: mixed-type sorting, projections,
analyzer management, graph updates, missing-target operations."""

import pytest

from repro.databases.document import MongoLike, TokuMXLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import (
    Col,
    Column,
    Integer,
    PostgresLike,
    TableSchema,
    Text,
)
from repro.databases.search import ElasticsearchLike, Term
from repro.errors import SchemaError, UnknownTableError


class TestDocumentEdges:
    def test_sort_with_mixed_types_is_total(self):
        db = MongoLike("m")
        for value in [3, "b", None, 1.5, True, {"x": 1}]:
            db.insert_one("c", {"v": value})
        docs = db.find("c", sort=("v", 1))
        assert len(docs) == 6  # no TypeError; deterministic order

    def test_update_many_inside_transaction_rolls_back(self):
        db = TokuMXLike("t")
        db.insert_one("c", {"g": 1, "n": 0})
        db.insert_one("c", {"g": 1, "n": 0})
        with pytest.raises(RuntimeError):
            with db.begin():
                db.update_many("c", {"g": 1}, {"$set": {"n": 9}})
                raise RuntimeError("boom")
        assert all(d["n"] == 0 for d in db.find("c"))

    def test_delete_many(self):
        db = MongoLike("m")
        for i in range(4):
            db.insert_one("c", {"n": i})
        removed = db.delete_many("c", {"n": {"$lt": 2}})
        assert len(removed) == 2
        assert db.count("c") == 2

    def test_collection_management(self):
        db = MongoLike("m")
        db.insert_one("a", {})
        db.insert_one("b", {})
        assert db.collection_names() == ["a", "b"]
        db.drop_collection("a")
        assert db.collection_names() == ["b"]


class TestSearchEdges:
    def test_set_analyzer_after_creation(self):
        db = ElasticsearchLike("e")
        db.create_index("docs")
        db.set_analyzer("docs", "tag", "keyword")
        db.index_doc("docs", {"tag": "New York"})
        assert db.search("docs", Term("tag", "New York"))

    def test_set_unknown_analyzer_rejected(self):
        db = ElasticsearchLike("e")
        db.create_index("docs")
        with pytest.raises(SchemaError):
            db.set_analyzer("docs", "tag", "martian")

    def test_delete_missing_doc_is_noop(self):
        db = ElasticsearchLike("e")
        db.create_index("docs")
        assert db.delete_doc("docs", 99) is None

    def test_index_names_and_missing_index(self):
        db = ElasticsearchLike("e")
        db.create_index("one")
        assert db.index_names() == ["one"]
        with pytest.raises(UnknownTableError):
            db.delete_doc("ghost", 1)


class TestRelationalEdges:
    def test_select_from_missing_table(self):
        db = PostgresLike("p")
        with pytest.raises(UnknownTableError):
            db.select("nope")

    def test_offset_beyond_data(self):
        db = PostgresLike("p")
        db.create_table(TableSchema("t", [Column("x", Integer())]))
        db.insert("t", {"x": 1})
        assert db.select("t", offset=10) == []

    def test_update_missing_rows_returns_zero(self):
        db = PostgresLike("p")
        db.create_table(TableSchema("t", [Column("x", Integer())]))
        assert db.update("t", Col("x") == 99, {"x": 1}) == 0
        assert db.delete("t", Col("x") == 99) == 0

    def test_drop_index(self):
        from repro.databases.relational import Index

        db = PostgresLike("p")
        db.create_table(
            TableSchema("t", [Column("x", Text())],
                        indexes=[Index("ix", ["x"])])
        )
        db.insert("t", {"x": "a"})
        db.drop_index("t", "ix")
        db.stats.reset()
        assert db.select("t", where=Col("x") == "a")
        assert db.stats.scans == 1  # back to scanning


class TestGraphEdges:
    def test_get_missing_node(self):
        db = Neo4jLike("g")
        assert db.get_node(99) is None
        assert db.delete_node(99) is None

    def test_count_edges_by_type(self):
        db = Neo4jLike("g")
        a = db.create_node("N", {})
        b = db.create_node("N", {})
        db.create_edge(a["id"], "x", b["id"])
        db.create_edge(a["id"], "y", b["id"])
        assert db.count_edges("x") == 1
        assert db.count_edges() == 2

    def test_find_nodes_empty_label(self):
        db = Neo4jLike("g")
        assert db.find_nodes("Ghost") == []
        assert db.count_nodes("Ghost") == 0
        assert db.count_nodes() == 0
