"""Unit tests for the Redis-like KV store."""

import threading

import pytest

from repro.databases.kv import RedisLike
from repro.errors import FaultInjected


@pytest.fixture
def kv():
    return RedisLike("redis")


class TestBasicOps:
    def test_get_set_delete(self, kv):
        kv.set("k", "v")
        assert kv.get("k") == "v"
        assert kv.delete("k")
        assert kv.get("k") is None
        assert not kv.delete("k")

    def test_incr(self, kv):
        assert kv.incr("n") == 1
        assert kv.incr("n", 5) == 6

    def test_exists(self, kv):
        assert not kv.exists("k")
        kv.set("k", 0)
        assert kv.exists("k")

    def test_keys_prefix(self, kv):
        kv.set("a:1", 1)
        kv.set("a:2", 1)
        kv.set("b:1", 1)
        assert kv.keys("a:") == ["a:1", "a:2"]

    def test_flushall_and_dbsize(self, kv):
        kv.set("k", 1)
        assert kv.dbsize() == 1
        kv.flushall()
        assert kv.dbsize() == 0


class TestHashes:
    def test_hset_hget(self, kv):
        kv.hset("h", "f", 1)
        assert kv.hget("h", "f") == 1
        assert kv.hget("h", "nope") is None
        assert kv.hget("nope", "f") is None

    def test_hgetall(self, kv):
        kv.hset("h", "a", 1)
        kv.hset("h", "b", 2)
        assert kv.hgetall("h") == {"a": 1, "b": 2}

    def test_hincrby(self, kv):
        assert kv.hincrby("h", "n") == 1
        assert kv.hincrby("h", "n", 3) == 4


class TestScripts:
    def test_script_atomicity_under_threads(self, kv):
        def bump(store):
            value = store.get("counter") or 0
            store.set("counter", value + 1)
            return value + 1

        def worker():
            for _ in range(200):
                kv.eval(bump)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert kv.get("counter") == 800
        assert kv.script_calls == 800

    def test_script_returns_value(self, kv):
        kv.set("x", 41)
        assert kv.eval(lambda s: s.get("x") + 1) == 42


class TestFailureModel:
    def test_crash_wipes_and_refuses(self, kv):
        kv.set("k", 1)
        kv.crash()
        assert kv.is_down
        with pytest.raises(FaultInjected):
            kv.get("k")
        with pytest.raises(FaultInjected):
            kv.set("k", 2)

    def test_restart_comes_back_empty(self, kv):
        kv.set("k", 1)
        kv.crash()
        kv.restart()
        assert kv.get("k") is None
        kv.set("k", 2)
        assert kv.get("k") == 2
