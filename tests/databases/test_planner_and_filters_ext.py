"""Composite-index planning and $elemMatch filter extensions."""

import pytest

from repro.databases.document import MongoLike, matches_filter
from repro.databases.relational import (
    Col,
    Column,
    Index,
    Integer,
    PostgresLike,
    TableSchema,
    Text,
)


class TestCompositeIndexPlanning:
    @pytest.fixture
    def db(self):
        database = PostgresLike("pg")
        database.create_table(
            TableSchema(
                "events",
                [
                    Column("tenant", Text()),
                    Column("kind", Text()),
                    Column("n", Integer()),
                ],
                indexes=[
                    Index("by_tenant", ["tenant"]),
                    Index("by_tenant_kind", ["tenant", "kind"]),
                ],
            )
        )
        for tenant in ("acme", "globex"):
            for kind in ("click", "view"):
                for n in range(3):
                    database.insert(
                        "events", {"tenant": tenant, "kind": kind, "n": n}
                    )
        return database

    def test_widest_index_chosen(self, db):
        plan = db.explain("events", (Col("tenant") == "acme") & (Col("kind") == "click"))
        assert plan["index"] == "by_tenant_kind"
        assert plan["columns"] == ["tenant", "kind"]

    def test_falls_back_to_narrower_index(self, db):
        plan = db.explain("events", Col("tenant") == "acme")
        assert plan["index"] == "by_tenant"

    def test_composite_results_match_scan(self, db):
        where = (Col("tenant") == "acme") & (Col("kind") == "click")
        db.stats.reset()
        indexed = db.select("events", where=where)
        assert db.stats.index_lookups == 1 and db.stats.scans == 0
        expected = [
            r for r in db.select("events")
            if r["tenant"] == "acme" and r["kind"] == "click"
        ]
        assert indexed == expected
        assert len(indexed) == 3

    def test_partial_composite_match_not_usable(self, db):
        # Only "kind" has an equality: by_tenant_kind cannot serve it.
        plan = db.explain("events", Col("kind") == "click")
        assert plan["access"] == "full_scan"

    def test_index_maintained_through_updates(self, db):
        db.update("events", (Col("tenant") == "acme") & (Col("kind") == "click"),
                  {"kind": "tap"})
        where = (Col("tenant") == "acme") & (Col("kind") == "tap")
        assert len(db.select("events", where=where)) == 3
        old = (Col("tenant") == "acme") & (Col("kind") == "click")
        assert db.select("events", where=old) == []


class TestElemMatch:
    def test_elem_match_on_subdocuments(self):
        doc = {"items": [{"sku": "a", "qty": 1}, {"sku": "b", "qty": 5}]}
        assert matches_filter(doc, {"items": {"$elemMatch": {"qty": {"$gt": 3}}}})
        assert matches_filter(
            doc, {"items": {"$elemMatch": {"sku": "b", "qty": {"$gte": 5}}}}
        )
        # No single element satisfies both conditions together.
        assert not matches_filter(
            doc, {"items": {"$elemMatch": {"sku": "a", "qty": {"$gt": 3}}}}
        )

    def test_elem_match_on_scalars(self):
        doc = {"scores": [1, 7, 3]}
        assert matches_filter(doc, {"scores": {"$elemMatch": {"$gt": 5}}})
        assert not matches_filter(doc, {"scores": {"$elemMatch": {"$gt": 9}}})

    def test_elem_match_on_non_array(self):
        assert not matches_filter({"x": 3}, {"x": {"$elemMatch": {"$gt": 1}}})

    def test_engine_integration(self):
        db = MongoLike("m")
        db.insert_one("orders", {"items": [{"sku": "a", "qty": 1}]})
        db.insert_one("orders", {"items": [{"sku": "a", "qty": 9}]})
        hits = db.find("orders", {"items": {"$elemMatch": {"qty": {"$gt": 5}}}})
        assert len(hits) == 1
