"""Unit tests for the search (Elasticsearch-like) engine."""

import pytest

from repro.databases.search import (
    Bool,
    ElasticsearchLike,
    Match,
    MatchAll,
    Range,
    Term,
    analyze,
)
from repro.errors import SchemaError


@pytest.fixture
def db():
    database = ElasticsearchLike("es")
    database.create_index("posts", analyzers={"body": "standard", "tag": "keyword"})
    return database


class TestAnalysis:
    def test_simple_analyzer(self):
        assert analyze("Hello, World-42!", "simple") == ["hello", "world"]

    def test_standard_analyzer_drops_stopwords(self):
        assert analyze("The quick fox and the dog", "standard") == ["quick", "fox", "dog"]

    def test_whitespace_preserves_case(self):
        assert analyze("Hello World", "whitespace") == ["Hello", "World"]

    def test_keyword_single_token(self):
        assert analyze("New York", "keyword") == ["New York"]
        assert analyze("", "keyword") == []

    def test_unknown_analyzer(self):
        with pytest.raises(ValueError):
            analyze("x", "nope")


class TestIndexing:
    def test_index_assigns_ids(self, db):
        d1 = db.index_doc("posts", {"body": "hello"})
        d2 = db.index_doc("posts", {"body": "world"})
        assert (d1["_id"], d2["_id"]) == (1, 2)

    def test_reindex_replaces(self, db):
        db.index_doc("posts", {"_id": 1, "body": "cats are great"})
        db.index_doc("posts", {"_id": 1, "body": "dogs are great"})
        assert db.count("posts") == 1
        assert not db.search("posts", Match("body", "cats"))
        assert db.search("posts", Match("body", "dogs"))

    def test_delete_unindexes(self, db):
        doc = db.index_doc("posts", {"body": "hello"})
        db.delete_doc("posts", doc["_id"])
        assert db.count("posts") == 0
        assert not db.search("posts", Match("body", "hello"))

    def test_duplicate_index_creation_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_index("posts")


class TestQueries:
    def test_match_uses_field_analyzer(self, db):
        db.index_doc("posts", {"body": "The CATS are sleeping"})
        hits = db.search("posts", Match("body", "cats"))
        assert len(hits) == 1

    def test_keyword_field_is_exact(self, db):
        db.index_doc("posts", {"tag": "New York"})
        assert db.search("posts", Term("tag", "New York"))
        assert not db.search("posts", Term("tag", "new york"))

    def test_tf_idf_ranks_rarer_and_denser_higher(self, db):
        db.index_doc("posts", {"_id": 1, "body": "cats cats cats"})
        db.index_doc("posts", {"_id": 2, "body": "cats and dogs"})
        db.index_doc("posts", {"_id": 3, "body": "only dogs here"})
        hits = db.search("posts", Match("body", "cats"))
        assert [h[0]["_id"] for h in hits] == [1, 2]
        assert hits[0][1] > hits[1][1]

    def test_bool_must_should_must_not(self, db):
        db.index_doc("posts", {"_id": 1, "body": "cats dogs"})
        db.index_doc("posts", {"_id": 2, "body": "cats fish"})
        db.index_doc("posts", {"_id": 3, "body": "dogs fish"})
        hits = db.search(
            "posts",
            Bool(must=[Match("body", "cats")], must_not=[Match("body", "fish")]),
        )
        assert [h[0]["_id"] for h in hits] == [1]
        hits = db.search(
            "posts",
            Bool(should=[Match("body", "cats"), Match("body", "dogs")]),
        )
        assert {h[0]["_id"] for h in hits} == {1, 2, 3}

    def test_range_query(self, db):
        db.index_doc("posts", {"_id": 1, "price": 5})
        db.index_doc("posts", {"_id": 2, "price": 15})
        db.index_doc("posts", {"_id": 3, "price": "n/a"})
        hits = db.search("posts", Range("price", gte=10))
        assert [h[0]["_id"] for h in hits] == [2]

    def test_match_all_and_size(self, db):
        for i in range(5):
            db.index_doc("posts", {"body": f"post {i}"})
        assert len(db.search("posts", MatchAll(), size=3)) == 3
        assert db.count("posts") == 5


class TestAggregations:
    def test_terms_counts_list_elements(self, db):
        db.index_doc("posts", {"interests": ["cats", "dogs"]})
        db.index_doc("posts", {"interests": ["cats"]})
        buckets = db.aggregate("posts", "terms", "interests")
        assert buckets[0] == {"key": "cats", "doc_count": 2}

    def test_stats(self, db):
        for price in [10, 20, 30]:
            db.index_doc("posts", {"price": price})
        stats = db.aggregate("posts", "stats", "price")
        assert stats == {"count": 3, "min": 10, "max": 30, "avg": 20.0, "sum": 60}

    def test_stats_empty(self, db):
        assert db.aggregate("posts", "stats", "price")["count"] == 0

    def test_histogram(self, db):
        for v in [1, 2, 11, 12, 25]:
            db.index_doc("posts", {"v": v})
        buckets = db.aggregate("posts", "histogram", "v", interval=10)
        assert buckets == [
            {"key": 0, "doc_count": 2},
            {"key": 10, "doc_count": 2},
            {"key": 20, "doc_count": 1},
        ]

    def test_aggregate_over_query_subset(self, db):
        db.index_doc("posts", {"body": "cats", "price": 1})
        db.index_doc("posts", {"body": "dogs", "price": 9})
        stats = db.aggregate("posts", "stats", "price", query=Match("body", "cats"))
        assert stats["count"] == 1 and stats["sum"] == 1
