"""Direct unit tests for engine internals: expression trees, LSM
structures, the inverted index, analysis helpers."""


from repro.databases.columnar.memtable import Memtable, SSTable, compact, merge_row
from repro.databases.relational.expression import (
    ALWAYS,
    And,
    Col,
    Eq,
    In,
    IsNull,
    Like,
    Not,
    where_from_dict,
)
from repro.databases.search.inverted_index import InvertedIndex


class TestExpressions:
    def test_always(self):
        assert ALWAYS.matches({})
        assert ALWAYS.equality_candidates() == []

    def test_equality_candidates_from_and(self):
        expr = (Col("a") == 1) & (Col("b") == 2) & (Col("c") > 3)
        assert ("a", 1) in expr.equality_candidates()
        assert ("b", 2) in expr.equality_candidates()
        assert all(c != ("c", 3) for c in expr.equality_candidates())

    def test_or_has_no_equality_candidates(self):
        expr = (Col("a") == 1) | (Col("b") == 2)
        assert expr.equality_candidates() == []

    def test_columns_enumeration(self):
        expr = ((Col("a") == 1) | (Col("b") == 2)) & ~(Col("c") > 3)
        assert set(expr.columns()) == {"a", "b", "c"}

    def test_comparisons_with_none_never_match(self):
        for expr in [Col("x") > 1, Col("x") < 1, Col("x") >= 1, Col("x") <= 1]:
            assert not expr.matches({"x": None})
            assert not expr.matches({})

    def test_mixed_type_comparison_never_matches(self):
        assert not (Col("x") > 1).matches({"x": "string"})
        assert not (Col("x") < "a").matches({"x": 5})

    def test_like_escapes_regex_metacharacters(self):
        like = Like("x", "(today)")
        assert like.matches({"x": "(today)"})
        assert not like.matches({"x": "Xtoday)"})  # parens are literal
        assert not Like("x", "a.c").matches({"x": "abc"})  # dot is literal
        assert Like("x", "a%z").matches({"x": "a...z"})
        assert Like("x", "a_c").matches({"x": "abc"})
        assert not Like("x", "a_c").matches({"x": "abbc"})

    def test_is_null_and_not(self):
        assert IsNull("x").matches({})
        assert IsNull("x").matches({"x": None})
        assert Not(IsNull("x")).matches({"x": 1})

    def test_in_with_duplicates(self):
        expr = In("x", [1, 1, 2])
        assert expr.matches({"x": 2})
        assert not expr.matches({"x": 3})

    def test_where_from_dict(self):
        assert where_from_dict(None) is ALWAYS
        assert where_from_dict({}) is ALWAYS
        single = where_from_dict({"a": 1})
        assert isinstance(single, Eq)
        multi = where_from_dict({"a": 1, "b": [1, 2]})
        assert isinstance(multi, And)
        assert multi.matches({"a": 1, "b": 2})
        assert not multi.matches({"a": 1, "b": 3})

    def test_repr_smoke(self):
        text = repr((Col("a") == 1) & ~(Col("b") > 2))
        assert "a" in text and "NOT" in text


class TestMemtableAndSSTables:
    def test_newest_timestamp_wins_per_cell(self):
        memtable = Memtable()
        memtable.put(("k",), {"a": 1, "b": 1}, timestamp=1)
        memtable.put(("k",), {"a": 2}, timestamp=2)
        row = merge_row(("k",), [memtable])
        assert row == {"a": 2, "b": 1}

    def test_tombstone_shadows_older_cells_only(self):
        memtable = Memtable()
        memtable.put(("k",), {"a": 1}, timestamp=1)
        memtable.delete(("k",), timestamp=2)
        assert merge_row(("k",), [memtable]) is None
        memtable.put(("k",), {"a": 3}, timestamp=3)
        assert merge_row(("k",), [memtable]) == {"a": 3}

    def test_merge_across_sources_newest_first(self):
        old = Memtable()
        old.put(("k",), {"a": 1, "b": 1}, timestamp=1)
        sstable = SSTable.from_memtable(old)
        fresh = Memtable()
        fresh.put(("k",), {"a": 9}, timestamp=5)
        assert merge_row(("k",), [fresh, sstable]) == {"a": 9, "b": 1}

    def test_compact_drops_shadowed_cells(self):
        m1 = Memtable()
        m1.put(("k",), {"a": 1}, timestamp=1)
        m2 = Memtable()
        m2.delete(("k",), timestamp=2)
        m3 = Memtable()
        m3.put(("k",), {"a": 3}, timestamp=3)
        merged = compact([SSTable.from_memtable(m) for m in (m1, m2, m3)])
        assert merged.cells[("k",)]["a"] == (3, 3)
        assert merged.tombstones[("k",)] == 2
        # Fully-shadowed rows vanish.
        m4 = Memtable()
        m4.put(("gone",), {"a": 1}, timestamp=1)
        m5 = Memtable()
        m5.delete(("gone",), timestamp=9)
        merged = compact([SSTable.from_memtable(m) for m in (m4, m5)])
        assert ("gone",) not in merged.cells

    def test_approximate_size(self):
        memtable = Memtable()
        memtable.put(("a",), {"x": 1}, 1)
        memtable.delete(("b",), 2)
        assert memtable.approximate_size() == 2


class TestInvertedIndex:
    def test_term_and_document_frequency(self):
        index = InvertedIndex()
        index.add(1, ["cat", "cat", "dog"])
        index.add(2, ["dog"])
        assert index.term_frequency("cat", 1) == 2
        assert index.term_frequency("cat", 2) == 0
        assert index.document_frequency("dog") == 2
        assert index.doc_ids("cat") == {1}
        assert len(index) == 2

    def test_remove_cleans_empty_postings(self):
        index = InvertedIndex()
        index.add(1, ["solo"])
        index.add(2, ["shared"])
        index.remove(1)
        assert index.document_frequency("solo") == 0
        assert len(index) == 1
        assert index.doc_lengths == {2: 1}

    def test_doc_lengths(self):
        index = InvertedIndex()
        index.add(7, ["a", "b", "c"])
        assert index.doc_lengths[7] == 3
