"""Fault-injection determinism: every fault RNG takes an explicit seed.

Chaos tests that seed from global state cannot be replayed; the audit
rule is that probabilistic faults without an explicit seed are an error,
and that the same seed always yields the same fault sequence.
"""

import pytest

from repro.databases.base import FaultPlan
from repro.databases.document import MongoLike
from repro.errors import FaultInjected


def fault_pattern(plan: FaultPlan, draws: int = 64) -> list:
    pattern = []
    for _ in range(draws):
        try:
            plan.check_write()
            pattern.append(False)
        except FaultInjected:
            pattern.append(True)
    return pattern


class TestSeededFaults:
    def test_probability_without_seed_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="explicit seed"):
            plan.set_fault_probabilities(write=0.5)

    def test_read_probability_without_seed_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="explicit seed"):
            plan.set_fault_probabilities(read=0.1)

    def test_same_seed_same_fault_sequence(self):
        a = FaultPlan().set_fault_probabilities(write=0.3, seed=99)
        b = FaultPlan().set_fault_probabilities(write=0.3, seed=99)
        assert fault_pattern(a) == fault_pattern(b)

    def test_different_seeds_diverge(self):
        a = FaultPlan().set_fault_probabilities(write=0.5, seed=1)
        b = FaultPlan().set_fault_probabilities(write=0.5, seed=2)
        assert fault_pattern(a) != fault_pattern(b)

    def test_seed_then_probabilities(self):
        plan = FaultPlan().seed(5)
        plan.set_fault_probabilities(write=0.4)  # seed already installed
        assert any(fault_pattern(plan))

    def test_zero_probability_needs_no_seed(self):
        plan = FaultPlan().set_fault_probabilities(write=0.0, read=0.0)
        plan.check_write()
        plan.check_read()

    def test_read_faults_deterministic(self):
        def read_pattern(plan):
            out = []
            for _ in range(64):
                try:
                    plan.check_read()
                    out.append(False)
                except FaultInjected:
                    out.append(True)
            return out

        a = FaultPlan().set_fault_probabilities(read=0.3, seed=11)
        b = FaultPlan().set_fault_probabilities(read=0.3, seed=11)
        assert read_pattern(a) == read_pattern(b)
        assert any(read_pattern(FaultPlan().set_fault_probabilities(
            read=0.9, seed=3)))

    def test_deterministic_counters_unaffected(self):
        """The existing fail_next/skip_next counters need no RNG."""
        plan = FaultPlan(fail_next_writes=1, skip_next_writes=1)
        plan.check_write()  # skipped
        with pytest.raises(FaultInjected):
            plan.check_write()
        plan.check_write()  # plan exhausted

    def test_engine_level_seeded_faults(self):
        """A real engine wired with a seeded plan fails reproducibly."""
        def run(seed):
            db = MongoLike(f"m-{seed}")
            db.faults.set_fault_probabilities(write=0.5, seed=seed)
            outcomes = []
            for i in range(32):
                try:
                    db.insert_one("users", {"name": f"u{i}"})
                    outcomes.append("ok")
                except FaultInjected:
                    outcomes.append("fault")
            return outcomes

        assert run(42) == run(42)
        assert run(42) != run(43)
