"""Analytics extensions: SQL GROUP BY, Mongo pipelines, search prefix/
phrase queries, graph link features."""

import pytest

from repro.databases.document import MongoLike
from repro.databases.graph import Neo4jLike
from repro.databases.relational import (
    Col,
    Column,
    Index,
    Integer,
    PostgresLike,
    TableSchema,
    Text,
)
from repro.databases.search import ElasticsearchLike
from repro.databases.search.query import Phrase, Prefix
from repro.errors import DatabaseError, UnsupportedOperationError


class TestRelationalAggregation:
    @pytest.fixture
    def db(self):
        database = PostgresLike("pg")
        database.create_table(
            TableSchema(
                "orders",
                [Column("region", Text()), Column("total", Integer())],
                indexes=[Index("by_region", ["region"])],
            )
        )
        for region, total in [("us", 10), ("us", 20), ("eu", 5), ("eu", None)]:
            database.insert("orders", {"region": region, "total": total})
        return database

    def test_group_by_with_aggregates(self, db):
        rows = db.aggregate(
            "orders",
            group_by="region",
            aggregates={
                "n": ("count", "*"),
                "n_totals": ("count", "total"),
                "sum": ("sum", "total"),
                "avg": ("avg", "total"),
                "max": ("max", "total"),
            },
        )
        by_region = {r["region"]: r for r in rows}
        assert by_region["us"] == {"region": "us", "n": 2, "n_totals": 2,
                                   "sum": 30, "avg": 15.0, "max": 20}
        assert by_region["eu"]["n"] == 2
        assert by_region["eu"]["n_totals"] == 1
        assert by_region["eu"]["sum"] == 5

    def test_global_aggregate_with_where(self, db):
        rows = db.aggregate("orders", aggregates={"total": ("sum", "total")},
                            where=Col("region") == "us")
        assert rows == [{"total": 30}]

    def test_empty_group(self, db):
        rows = db.aggregate("orders", group_by="region",
                            aggregates={"m": ("min", "total")},
                            where=Col("region") == "nowhere")
        assert rows == []

    def test_unknown_aggregate_rejected(self, db):
        with pytest.raises(UnsupportedOperationError):
            db.aggregate("orders", aggregates={"x": ("median", "total")})

    def test_explain_paths(self, db):
        assert db.explain("orders", Col("id") == 3)["access"] == "primary_key"
        plan = db.explain("orders", Col("region") == "us")
        assert plan == {"access": "index_lookup", "index": "by_region",
                        "columns": ["region"]}
        assert db.explain("orders", Col("total") > 5)["access"] == "full_scan"


class TestDocumentPipeline:
    @pytest.fixture
    def db(self):
        database = MongoLike("m")
        docs = [
            {"kind": "click", "n": 3, "tags": ["a", "b"]},
            {"kind": "click", "n": 1, "tags": ["a"]},
            {"kind": "search", "n": 10, "tags": []},
        ]
        for doc in docs:
            database.insert_one("events", doc)
        return database

    def test_match_group_sort(self, db):
        out = db.aggregate("events", [
            {"$match": {"n": {"$gt": 0}}},
            {"$group": {"_id": "$kind", "count": {"$sum": 1},
                        "total": {"$sum": "$n"}}},
            {"$sort": {"total": -1}},
        ])
        assert out == [
            {"_id": "search", "count": 1, "total": 10},
            {"_id": "click", "count": 2, "total": 4},
        ]

    def test_unwind(self, db):
        out = db.aggregate("events", [
            {"$unwind": "$tags"},
            {"$group": {"_id": "$tags", "count": {"$sum": 1}}},
            {"$sort": {"count": -1, "_id": 1}},
        ])
        assert out[0] == {"_id": "a", "count": 2}

    def test_limit(self, db):
        assert len(db.aggregate("events", [{"$limit": 2}])) == 2

    def test_group_avg_min_max(self, db):
        out = db.aggregate("events", [
            {"$group": {"_id": None, "avg": {"$avg": "$n"},
                        "min": {"$min": "$n"}, "max": {"$max": "$n"}}},
        ])
        assert out == [{"_id": None, "avg": pytest.approx(14 / 3),
                        "min": 1, "max": 10}]

    def test_bad_stage_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.aggregate("events", [{"$lookup": {}}])
        with pytest.raises(DatabaseError):
            db.aggregate("events", [{"$match": {}, "$limit": 1}])

    def test_distinct(self, db):
        assert db.distinct("events", "kind") == ["click", "search"]
        assert db.distinct("events", "tags") == ["a", "b"]
        assert db.distinct("events", "kind", {"n": {"$gt": 5}}) == ["search"]


class TestSearchExtensions:
    @pytest.fixture
    def db(self):
        database = ElasticsearchLike("es")
        database.create_index("products")
        database.index_doc("products", {"_id": 1, "name": "coffee grinder deluxe"})
        database.index_doc("products", {"_id": 2, "name": "coffee maker"})
        database.index_doc("products", {"_id": 3, "name": "tea kettle"})
        return database

    def test_prefix_query(self, db):
        hits = db.search("products", Prefix("name", "coff"))
        assert {h[0]["_id"] for h in hits} == {1, 2}
        assert db.search("products", Prefix("name", "zzz")) == []

    def test_phrase_requires_all_tokens(self, db):
        hits = db.search("products", Phrase("name", "coffee grinder"))
        assert [h[0]["_id"] for h in hits] == [1]
        assert db.search("products", Phrase("name", "coffee kettle")) == []
        assert db.search("products", Phrase("name", "")) == []


class TestGraphLinkFeatures:
    def test_degree_and_common_neighbours(self):
        db = Neo4jLike("g")
        for i in range(1, 6):
            db.create_node("User", {"id": i})
        db.create_edge(1, "friend", 3, directed=False)
        db.create_edge(1, "friend", 4, directed=False)
        db.create_edge(2, "friend", 3, directed=False)
        db.create_edge(2, "friend", 5, directed=False)
        assert db.degree(1, "friend") == 2
        assert db.degree(3, "friend", direction="in") == 2
        assert db.common_neighbours(1, 2, "friend") == {3}
        assert db.common_neighbours(4, 5, "friend") == set()
