"""Unit tests for the message broker and subscriber queues."""

import pytest

from repro.broker import Broker, Message, SubscriberQueue
from repro.errors import BrokerError, QueueDecommissioned


def make_message(app="pub", op_id=1, deps=None):
    return Message(
        app=app,
        operations=[{"operation": "create", "types": ["User"], "id": op_id,
                     "attributes": {"name": "x"}}],
        dependencies=deps or {},
        published_at=0.0,
    )


class TestMessage:
    def test_json_roundtrip(self):
        msg = make_message(deps={"u1": 3})
        clone = Message.from_json(msg.to_json())
        assert clone.app == "pub"
        assert clone.dependencies == {"u1": 3}
        assert clone.operations[0]["attributes"] == {"name": "x"}
        assert clone.generation == 1

    def test_copy_is_independent(self):
        msg = make_message()
        clone = msg.copy()
        clone.operations[0]["attributes"]["name"] = "mutated"
        assert msg.operations[0]["attributes"]["name"] == "x"

    def test_non_serialisable_payload_rejected(self):
        with pytest.raises(TypeError):
            make_message(op_id=object()).to_json()


class TestQueue:
    def test_fifo_pop_ack(self):
        q = SubscriberQueue("sub")
        for i in range(3):
            q.publish(make_message(op_id=i))
        seen = []
        while True:
            msg = q.pop()
            if msg is None:
                break
            seen.append(msg.operations[0]["id"])
            q.ack(msg)
        assert seen == [0, 1, 2]
        assert q.total_acked == 3

    def test_pop_empty_returns_none(self):
        assert SubscriberQueue("sub").pop() is None

    def test_nack_redelivers_at_front(self):
        q = SubscriberQueue("sub")
        q.publish(make_message(op_id=1))
        q.publish(make_message(op_id=2))
        first = q.pop()
        q.nack(first)
        again = q.pop()
        assert again.operations[0]["id"] == 1
        assert again.delivery_count == 2

    def test_ack_unknown_rejected(self):
        q = SubscriberQueue("sub")
        q.publish(make_message())
        msg = q.pop()
        q.ack(msg)
        with pytest.raises(BrokerError):
            q.ack(msg)

    def test_requeue_unacked(self):
        q = SubscriberQueue("sub")
        q.publish(make_message(op_id=1))
        q.publish(make_message(op_id=2))
        q.pop()
        q.pop()
        assert q.requeue_unacked() == 2
        assert q.pop().operations[0]["id"] == 1

    def test_decommission_on_overflow(self):
        q = SubscriberQueue("sub", max_size=2)
        for i in range(3):
            q.publish(make_message(op_id=i))
        assert q.decommissioned
        assert len(q) == 0
        with pytest.raises(QueueDecommissioned):
            q.pop()
        # Further publishes are dropped silently.
        q.publish(make_message(op_id=9))
        assert len(q) == 0

    def test_recommission(self):
        q = SubscriberQueue("sub", max_size=1)
        q.publish(make_message(op_id=1))
        q.publish(make_message(op_id=2))
        assert q.decommissioned
        q.recommission()
        q.publish(make_message(op_id=3))
        assert q.pop().operations[0]["id"] == 3


class TestBrokerRouting:
    def test_fanout_to_bound_subscribers(self):
        broker = Broker()
        q1 = broker.bind("sub1", "pub")
        q2 = broker.bind("sub2", "pub")
        broker.bind("sub3", "other")
        broker.publish(make_message(app="pub"))
        assert len(q1) == 1 and len(q2) == 1
        assert len(broker.queue_for("sub3")) == 0

    def test_subscriber_receives_from_multiple_publishers(self):
        broker = Broker()
        q = broker.bind("sub", "pub1")
        broker.bind("sub", "pub2")
        broker.publish(make_message(app="pub1"))
        broker.publish(make_message(app="pub2"))
        assert len(q) == 2

    def test_copies_are_isolated_between_queues(self):
        broker = Broker()
        q1 = broker.bind("sub1", "pub")
        q2 = broker.bind("sub2", "pub")
        broker.publish(make_message(app="pub"))
        m1 = q1.pop()
        m1.operations[0]["attributes"]["name"] = "mutated"
        assert q2.pop().operations[0]["attributes"]["name"] == "x"

    def test_backlog_and_subscribers_of(self):
        broker = Broker()
        broker.bind("sub1", "pub")
        broker.bind("sub2", "pub")
        broker.publish(make_message(app="pub"))
        assert broker.backlog() == {"sub1": 1, "sub2": 1}
        assert broker.subscribers_of("pub") == ["sub1", "sub2"]


class TestPublisherMetadata:
    def test_publication_registry(self):
        broker = Broker()
        broker.register_publication("pub", "User", ["name"], "causal")
        broker.register_publication("pub", "User", ["email"], "causal")
        assert broker.published_fields("pub", "User") == ["email", "name"]
        assert broker.publisher_mode("pub") == "causal"
        assert broker.published_models("pub") == ["User"]
        assert broker.published_fields("pub", "Nope") is None

    def test_validate_binding(self):
        broker = Broker()
        with pytest.raises(BrokerError):
            broker.validate_binding("sub", "ghost")
        broker.register_publication("ghost", "User", ["name"], "weak")
        broker.validate_binding("sub", "ghost")


class TestFaultInjection:
    def test_drop_next(self):
        broker = Broker()
        q = broker.bind("sub", "pub")
        broker.drop_next(1)
        broker.publish(make_message(app="pub"))
        broker.publish(make_message(app="pub"))
        assert len(q) == 1
        assert broker.dropped_messages == 1

    def test_loss_probability_deterministic_with_seed(self):
        broker = Broker(seed=42)
        q = broker.bind("sub", "pub")
        broker.loss_probability = 0.5
        for i in range(100):
            broker.publish(make_message(app="pub", op_id=i))
        assert 20 < len(q) < 80
        assert len(q) + broker.dropped_messages == 100
