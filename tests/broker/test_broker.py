"""Unit tests for the message broker and subscriber queues."""

import pytest

from repro.broker import Broker, Message, SubscriberQueue
from repro.errors import BrokerError, QueueDecommissioned


def make_message(app="pub", op_id=1, deps=None):
    return Message(
        app=app,
        operations=[{"operation": "create", "types": ["User"], "id": op_id,
                     "attributes": {"name": "x"}}],
        dependencies=deps or {},
        published_at=0.0,
    )


class TestMessage:
    def test_json_roundtrip(self):
        msg = make_message(deps={"u1": 3})
        clone = Message.from_json(msg.to_json())
        assert clone.app == "pub"
        assert clone.dependencies == {"u1": 3}
        assert clone.operations[0]["attributes"] == {"name": "x"}
        assert clone.generation == 1

    def test_copy_is_independent(self):
        msg = make_message()
        clone = msg.copy()
        clone.operations[0]["attributes"]["name"] = "mutated"
        assert msg.operations[0]["attributes"]["name"] == "x"

    def test_non_serialisable_payload_rejected(self):
        with pytest.raises(TypeError):
            make_message(op_id=object()).to_json()


class TestQueue:
    def test_fifo_pop_ack(self):
        q = SubscriberQueue("sub")
        for i in range(3):
            q.publish(make_message(op_id=i))
        seen = []
        while True:
            msg = q.pop()
            if msg is None:
                break
            seen.append(msg.operations[0]["id"])
            q.ack(msg)
        assert seen == [0, 1, 2]
        assert q.total_acked == 3

    def test_pop_empty_returns_none(self):
        assert SubscriberQueue("sub").pop() is None

    def test_nack_redelivers_at_front(self):
        q = SubscriberQueue("sub")
        q.publish(make_message(op_id=1))
        q.publish(make_message(op_id=2))
        first = q.pop()
        q.nack(first)
        again = q.pop()
        assert again.operations[0]["id"] == 1
        assert again.delivery_count == 2

    def test_ack_unknown_rejected(self):
        q = SubscriberQueue("sub")
        q.publish(make_message())
        msg = q.pop()
        q.ack(msg)
        with pytest.raises(BrokerError):
            q.ack(msg)

    def test_requeue_unacked(self):
        q = SubscriberQueue("sub")
        q.publish(make_message(op_id=1))
        q.publish(make_message(op_id=2))
        q.pop()
        q.pop()
        assert q.requeue_unacked() == 2
        assert q.pop().operations[0]["id"] == 1

    def test_decommission_on_overflow(self):
        q = SubscriberQueue("sub", max_size=2)
        for i in range(3):
            q.publish(make_message(op_id=i))
        assert q.decommissioned
        assert len(q) == 0
        with pytest.raises(QueueDecommissioned):
            q.pop()
        # Further publishes are dropped silently.
        q.publish(make_message(op_id=9))
        assert len(q) == 0

    def test_recommission(self):
        q = SubscriberQueue("sub", max_size=1)
        q.publish(make_message(op_id=1))
        q.publish(make_message(op_id=2))
        assert q.decommissioned
        q.recommission()
        q.publish(make_message(op_id=3))
        assert q.pop().operations[0]["id"] == 3


class TestBrokerRouting:
    def test_fanout_to_bound_subscribers(self):
        broker = Broker()
        q1 = broker.bind("sub1", "pub")
        q2 = broker.bind("sub2", "pub")
        broker.bind("sub3", "other")
        broker.publish(make_message(app="pub"))
        assert len(q1) == 1 and len(q2) == 1
        assert len(broker.queue_for("sub3")) == 0

    def test_subscriber_receives_from_multiple_publishers(self):
        broker = Broker()
        q = broker.bind("sub", "pub1")
        broker.bind("sub", "pub2")
        broker.publish(make_message(app="pub1"))
        broker.publish(make_message(app="pub2"))
        assert len(q) == 2

    def test_copies_are_isolated_between_queues(self):
        broker = Broker()
        q1 = broker.bind("sub1", "pub")
        q2 = broker.bind("sub2", "pub")
        broker.publish(make_message(app="pub"))
        m1 = q1.pop()
        m1.operations[0]["attributes"]["name"] = "mutated"
        assert q2.pop().operations[0]["attributes"]["name"] == "x"

    def test_backlog_and_subscribers_of(self):
        broker = Broker()
        broker.bind("sub1", "pub")
        broker.bind("sub2", "pub")
        broker.publish(make_message(app="pub"))
        assert broker.backlog() == {"sub1": 1, "sub2": 1}
        assert broker.subscribers_of("pub") == ["sub1", "sub2"]


class TestPublisherMetadata:
    def test_publication_registry(self):
        broker = Broker()
        broker.register_publication("pub", "User", ["name"], "causal")
        broker.register_publication("pub", "User", ["email"], "causal")
        assert broker.published_fields("pub", "User") == ["email", "name"]
        assert broker.publisher_mode("pub") == "causal"
        assert broker.published_models("pub") == ["User"]
        assert broker.published_fields("pub", "Nope") is None

    def test_validate_binding(self):
        broker = Broker()
        with pytest.raises(BrokerError):
            broker.validate_binding("sub", "ghost")
        broker.register_publication("ghost", "User", ["name"], "weak")
        broker.validate_binding("sub", "ghost")


class TestFaultInjection:
    def test_drop_next(self):
        broker = Broker()
        q = broker.bind("sub", "pub")
        broker.drop_next(1)
        broker.publish(make_message(app="pub"))
        broker.publish(make_message(app="pub"))
        assert len(q) == 1
        assert broker.dropped_messages == 1

    def test_loss_probability_deterministic_with_seed(self):
        broker = Broker(seed=42)
        q = broker.bind("sub", "pub")
        broker.loss_probability = 0.5
        for i in range(100):
            broker.publish(make_message(app="pub", op_id=i))
        assert 20 < len(q) < 80
        assert len(q) + broker.dropped_messages == 100


class TestQueueStats:
    def test_stats_track_queued_and_in_flight(self):
        queue = SubscriberQueue("sub")
        queue.publish(make_message(op_id=1))
        queue.publish(make_message(op_id=2))
        assert queue.stats() == {
            "queued": 2, "in_flight": 0, "published": 2, "acked": 0,
            "decommissioned": 0,
        }
        delivery = queue.pop()
        stats = queue.stats()
        assert (stats["queued"], stats["in_flight"]) == (1, 1)
        queue.ack(delivery)
        stats = queue.stats()
        assert (stats["in_flight"], stats["acked"]) == (0, 1)

    def test_broker_in_flight_view(self):
        broker = Broker()
        q = broker.bind("sub", "pub")
        broker.publish(make_message(app="pub"))
        assert broker.in_flight() == {"sub": 0}
        q.pop()
        assert broker.in_flight() == {"sub": 1}

    def test_broker_queue_stats_filter(self):
        broker = Broker()
        broker.bind("sub1", "pub")
        broker.bind("sub2", "pub")
        broker.publish(make_message(app="pub"))
        all_stats = broker.queue_stats()
        assert set(all_stats) == {"sub1", "sub2"}
        only = broker.queue_stats("sub1")
        assert set(only) == {"sub1"}
        assert only["sub1"]["queued"] == 1
        assert broker.queue_stats("nobody") == {}

    def test_stats_show_decommission(self):
        broker = Broker(default_queue_limit=2)
        broker.bind("sub", "pub")
        for i in range(3):
            broker.publish(make_message(app="pub", op_id=i))
        stats = broker.queue_stats("sub")["sub"]
        assert stats["decommissioned"] == 1
        assert stats["queued"] == 0  # backlog was dropped with the queue


class TestReseed:
    def test_reseed_reproduces_loss_sequence(self):
        """Chaos runs must be replayable from any point: after reseed,
        the same publishes see the same drops."""
        def run(broker):
            broker.loss_probability = 0.5
            q = broker.bind("sub", "pub") if "sub" not in broker.backlog() \
                else broker.queue_for("sub")
            survived = []
            for i in range(50):
                before = len(q)
                broker.publish(make_message(app="pub", op_id=i))
                survived.append(len(q) > before)
            return survived

        first = Broker(seed=7)
        pattern_a = run(first)
        first.reseed(7)
        pattern_b = run(first)
        assert pattern_a == pattern_b

    def test_reseed_differs_across_seeds(self):
        broker = Broker(seed=1)
        broker.loss_probability = 0.5
        broker.bind("sub", "pub")
        draws_a = [broker._should_drop() for _ in range(64)]
        broker.reseed(2)
        draws_b = [broker._should_drop() for _ in range(64)]
        broker.reseed(1)
        draws_c = [broker._should_drop() for _ in range(64)]
        assert draws_a == draws_c
        assert draws_a != draws_b
