"""Unit tests for the queue-level race fixes: in-flight visibility
(``peek_unacked``), tolerated ack/nack after decommission, and the
predicate re-check deadline loop in ``pop``."""

import threading
import time

import pytest

from repro.broker import Message, SubscriberQueue
from repro.errors import BrokerError, QueueDecommissioned


def make_message(app="pub", op_id=1):
    return Message(
        app=app,
        operations=[{"operation": "create", "types": ["User"], "id": op_id,
                     "attributes": {"name": "x"}}],
        dependencies={},
        published_at=0.0,
    )


class TestPeekUnacked:
    def test_popped_messages_visible_until_acked(self):
        queue = SubscriberQueue("q")
        first, second = make_message(op_id=1), make_message(op_id=2)
        queue.publish(first)
        queue.publish(second)
        assert queue.peek_unacked() == []
        got_first = queue.pop()
        got_second = queue.pop()
        assert [m.seq for m in queue.peek_unacked()] == [
            got_first.seq, got_second.seq
        ]
        assert queue.peek_all() == []  # invisible to the queued view
        queue.ack(got_first)
        assert [m.seq for m in queue.peek_unacked()] == [got_second.seq]
        queue.nack(got_second)
        assert queue.peek_unacked() == []
        assert [m.seq for m in queue.peek_all()] == [got_second.seq]

    def test_seq_order_regardless_of_pop_order(self):
        queue = SubscriberQueue("q")
        for i in range(3):
            queue.publish(make_message(op_id=i))
        popped = [queue.pop() for _ in range(3)]
        queue.nack(popped[0])
        queue.pop()  # re-pop the nacked head: highest delivery count
        assert [m.seq for m in queue.peek_unacked()] == sorted(
            m.seq for m in popped
        )


class TestDecommissionTolerance:
    def _decommissioned_with_inflight(self):
        queue = SubscriberQueue("q", max_size=2)
        queue.publish(make_message(op_id=1))
        inflight = queue.pop()
        # Overflow: the third queued item kills the queue and clears the
        # unacked table while `inflight` is still mid-message.
        for i in range(2, 6):
            queue.publish(make_message(op_id=i))
        assert queue.decommissioned
        return queue, inflight

    def test_ack_after_decommission_is_noop(self):
        queue, inflight = self._decommissioned_with_inflight()
        queue.ack(inflight)  # must not raise: worker survives to its next pop
        assert queue.stats()["acked"] == 0  # tolerated, not counted

    def test_nack_after_decommission_is_noop(self):
        queue, inflight = self._decommissioned_with_inflight()
        queue.nack(inflight)
        assert queue.stats()["queued"] == 0

    def test_next_pop_still_reports_decommission(self):
        queue, inflight = self._decommissioned_with_inflight()
        queue.ack(inflight)
        with pytest.raises(QueueDecommissioned):
            queue.pop()

    def test_ack_unknown_on_live_queue_still_rejected(self):
        queue = SubscriberQueue("q")
        queue.publish(make_message())
        message = queue.pop()
        queue.ack(message)
        with pytest.raises(BrokerError):
            queue.ack(message)  # double-ack on a healthy queue is a bug


class TestPopDeadlineLoop:
    def test_spurious_wakeup_does_not_end_the_wait(self):
        queue = SubscriberQueue("q")
        outcome = {}

        def consumer():
            outcome["message"] = queue.pop(timeout=1.0)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        # Several bare notifies (spurious wakeups / stolen notifies),
        # then a real publish well before the deadline.
        for _ in range(3):
            time.sleep(0.03)
            with queue._lock:
                queue._available.notify_all()
        queue.publish(make_message())
        thread.join(4.0)
        assert not thread.is_alive()
        assert outcome["message"] is not None

    def test_timeout_expires_against_one_deadline(self):
        queue = SubscriberQueue("q")
        start = time.monotonic()
        assert queue.pop(timeout=0.15) is None
        # The full patience was consumed in one deadline, not reset by
        # repeated waits.
        elapsed = time.monotonic() - start
        assert 0.14 <= elapsed < 2.0

    def test_zero_timeout_still_polls(self):
        queue = SubscriberQueue("q")
        assert queue.pop(timeout=0.0) is None
        queue.publish(make_message())
        assert queue.pop(timeout=0.0) is not None

    def test_notify_steal_between_two_consumers(self):
        queue = SubscriberQueue("q")
        results = []
        lock = threading.Lock()

        def consumer():
            message = queue.pop(timeout=2.0)
            with lock:
                results.append(message)

        threads = [threading.Thread(target=consumer, daemon=True)
                   for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        queue.publish(make_message(op_id=1))  # wakes both, one wins
        time.sleep(0.05)
        queue.publish(make_message(op_id=2))  # the loser must still get this
        for thread in threads:
            thread.join(8.0)
        assert len(results) == 2
        assert all(message is not None for message in results)
