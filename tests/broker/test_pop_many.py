"""``SubscriberQueue.pop_many``: batched pops in one lock round-trip,
and the notify-per-message wakeup discipline (the thundering-herd fix).
"""

import threading
import time

import pytest

from repro.broker import Message, SubscriberQueue
from repro.errors import QueueDecommissioned


def make_message(op_id=1):
    return Message(
        app="pub",
        operations=[{"operation": "create", "types": ["User"], "id": op_id,
                     "attributes": {"name": "x"}}],
        dependencies={},
        published_at=0.0,
    )


class TestPopMany:
    def test_empty_and_nonpositive(self):
        queue = SubscriberQueue("q")
        assert queue.pop_many(0) == []
        assert queue.pop_many(-3) == []
        assert queue.pop_many(5) == []  # timeout=0 polls

    def test_fifo_order_up_to_max_n(self):
        queue = SubscriberQueue("q")
        published = [make_message(op_id=i) for i in range(5)]
        for message in published:
            queue.publish(message)
        batch = queue.pop_many(3)
        assert [m.seq for m in batch] == [m.seq for m in published[:3]]
        assert len(queue) == 2
        rest = queue.pop_many(10)
        assert [m.seq for m in rest] == [m.seq for m in published[3:]]

    def test_per_delivery_bookkeeping_matches_pop(self):
        queue = SubscriberQueue("q")
        for i in range(3):
            queue.publish(make_message(op_id=i))
        batch = queue.pop_many(3)
        assert all(m.delivery_count == 1 for m in batch)
        assert all(m.dwell is not None for m in batch)
        assert [m.seq for m in queue.peek_unacked()] == [m.seq for m in batch]
        for message in batch:
            queue.ack(message)
        assert queue.stats()["acked"] == 3

    def test_nacked_message_leads_next_batch(self):
        queue = SubscriberQueue("q")
        for i in range(3):
            queue.publish(make_message(op_id=i))
        first, second, third = queue.pop_many(3)
        queue.nack(second)
        queue.nack(first)  # nack pushes to the front: first leads again
        batch = queue.pop_many(5)
        assert [m.seq for m in batch] == [first.seq, second.seq]
        assert batch[0].delivery_count == 2

    def test_blocks_for_first_message_only(self):
        queue = SubscriberQueue("q")
        results = []

        def popper():
            results.extend(queue.pop_many(8, timeout=2.0))

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        queue.publish(make_message(op_id=1))
        thread.join(timeout=2)
        assert not thread.is_alive()
        # Only what was queued at wake-up time — no second wait.
        assert len(results) == 1

    def test_timeout_expires_to_empty_batch(self):
        queue = SubscriberQueue("q")
        start = time.monotonic()
        assert queue.pop_many(4, timeout=0.05) == []
        assert time.monotonic() - start >= 0.04

    def test_decommissioned_raises(self):
        queue = SubscriberQueue("q", max_size=1)
        for i in range(3):  # overflow kills the queue
            queue.publish(make_message(op_id=i))
        assert queue.decommissioned
        with pytest.raises(QueueDecommissioned):
            queue.pop_many(4)

    def test_decommission_wakes_blocked_pop_many(self):
        # max_size=0: the very first publish overflows and kills the
        # queue, so the blocked popper cannot race for the message — it
        # must be woken by the kill's notify_all and raise.
        queue = SubscriberQueue("q", max_size=0)
        outcome = []

        def popper():
            try:
                queue.pop_many(4, timeout=5.0)
                outcome.append("returned")
            except QueueDecommissioned:
                outcome.append("decommissioned")

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        queue.publish(make_message(op_id=1))
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert outcome == ["decommissioned"]


class TestNotifyDiscipline:
    def test_each_publish_wakes_one_waiter(self):
        """N publishes must wake N blocked workers — publish notifies
        per message, so no waiter sleeps through its deadline while a
        message sits queued (and no herd stampedes for one message)."""
        queue = SubscriberQueue("q")
        got = []
        got_lock = threading.Lock()

        def popper():
            message = queue.pop(timeout=2.0)
            with got_lock:
                got.append(message)

        threads = [threading.Thread(target=popper) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        for i in range(3):
            queue.publish(make_message(op_id=i))
        for thread in threads:
            thread.join(timeout=3)
        assert not any(t.is_alive() for t in threads)
        assert all(m is not None for m in got)
        assert len({m.seq for m in got}) == 3  # one message each, no dupes

    def test_nack_wakes_a_waiter(self):
        queue = SubscriberQueue("q")
        queue.publish(make_message(op_id=1))
        held = queue.pop()
        results = []

        def popper():
            results.append(queue.pop(timeout=2.0))

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        queue.nack(held)
        thread.join(timeout=3)
        assert not thread.is_alive()
        assert results and results[0] is not None
        assert results[0].seq == held.seq
