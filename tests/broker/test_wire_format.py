"""Golden tests for the wire formats.

The data-plane message JSON and the control-plane envelope JSON are the
two contracts every process boundary depends on: these tests pin the
exact serialized shape, so an accidental field rename/retype shows up as
a diff here instead of as silent corruption between shards. On purpose,
expectations are written as literal dicts, not round trips through the
code being tested.
"""

from __future__ import annotations

import json

import pytest

from repro.broker.message import WIRE_VERSION, Message
from repro.errors import BrokerError, TransportError
from repro.runtime.transport import (
    CONTROL_WIRE_VERSION,
    ControlRequest,
    ControlResponse,
)


def make_message(**overrides):
    defaults = dict(
        app="pub",
        operations=[{
            "operation": "update",
            "types": ["User"],
            "id": 7,
            "attributes": {"name": "ada", "score": 3},
        }],
        dependencies={"pub/users/7": 4},
        published_at=123.5,
        generation=2,
        uid="pub:41",
    )
    defaults.update(overrides)
    return Message(**defaults)


class TestMessageGolden:
    def test_plain_message_exact_payload(self):
        payload = json.loads(make_message().to_json())
        assert payload == {
            "wire_version": 3,
            "uid": "pub:41",
            "app": "pub",
            "operations": [{
                "operation": "update",
                "types": ["User"],
                "id": 7,
                "attributes": {"name": "ada", "score": 3},
            }],
            "dependencies": {"pub/users/7": 4},
            "external_dependencies": {},
            "published_at": 123.5,
            "generation": 2,
            "bootstrap": False,
            "repair": False,
        }

    def test_flags_and_external_deps_serialize(self):
        payload = json.loads(make_message(
            bootstrap=True,
            repair=True,
            external_dependencies={"other/posts/1": 9},
        ).to_json())
        assert payload["bootstrap"] is True
        assert payload["repair"] is True
        assert payload["external_dependencies"] == {"other/posts/1": 9}

    def test_coalesce_metadata_exact_payload(self):
        message = make_message(
            coalesced_uids=["pub:39", "pub:40"],
            increments={"pub/users/7": 3},
        )
        payload = json.loads(message.to_json())
        assert payload["coalesced_uids"] == ["pub:39", "pub:40"]
        assert payload["increments"] == {"pub/users/7": 3}
        # Absent on plain messages: the keys are conditional, not null.
        plain = json.loads(make_message().to_json())
        assert "coalesced_uids" not in plain
        assert "increments" not in plain

    def test_round_trip_preserves_everything(self):
        message = make_message(
            bootstrap=True,
            repair=True,
            external_dependencies={"other/posts/1": 9},
            coalesced_uids=["pub:39"],
            increments={"pub/users/7": 2},
        )
        back = Message.from_json(message.to_json())
        assert back.uid == message.uid
        assert back.app == message.app
        assert back.operations == message.operations
        assert back.dependencies == message.dependencies
        assert back.external_dependencies == message.external_dependencies
        assert back.published_at == message.published_at
        assert back.generation == message.generation
        assert back.bootstrap and back.repair
        assert back.coalesced_uids == ["pub:39"]
        assert back.counter_increments() == {"pub/users/7": 2}

    def test_newer_wire_version_is_refused(self):
        data = json.loads(make_message().to_json())
        data["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(BrokerError, match="wire_version"):
            Message.from_json(json.dumps(data))

    def test_versionless_legacy_payload_still_parses(self):
        data = json.loads(make_message().to_json())
        del data["wire_version"]
        assert Message.from_json(json.dumps(data)).uid == "pub:41"

    def test_older_payloads_still_parse(self):
        # Receivers refuse only *newer* versions: a v1 sender (pre
        # trace-context shards) or v2 sender (pre CDC front-end) must
        # interoperate with a v3 receiver.
        for version in (1, 2):
            data = json.loads(make_message().to_json())
            data["wire_version"] = version
            assert Message.from_json(json.dumps(data)).uid == "pub:41"

    def test_cdc_field_is_conditional(self):
        # v3: CDC-ingested messages carry the outbox sequence; ORM-path
        # messages stay byte-identical to v2 modulo the version field.
        payload = json.loads(make_message(cdc=17).to_json())
        assert payload["cdc"] == 17
        back = Message.from_json(make_message(cdc=17).to_json())
        assert back.cdc == 17
        plain = json.loads(make_message().to_json())
        assert "cdc" not in plain
        assert Message.from_json(make_message().to_json()).cdc is None


class TestControlEnvelopeGolden:
    def test_request_exact_payload(self):
        request = ControlRequest(
            service="social0",
            op="model_digest",
            params={"model": "Post", "leaves": 64},
            request_id="cp-9",
        )
        assert json.loads(request.to_json()) == {
            "wire_version": 2,
            "request_id": "cp-9",
            "service": "social0",
            "op": "model_digest",
            "params": {"model": "Post", "leaves": 64},
        }

    def test_request_trace_context_is_conditional(self):
        # v2: a sampled caller attaches a trace context; plain requests
        # stay byte-identical to v1 modulo the version field.
        traced = ControlRequest(
            service="social0",
            op="ping",
            request_id="cp-10",
            trace={"trace_id": "pub:41", "sampled": True,
                   "parent": "broker.route", "origin": "shard0"},
        )
        payload = json.loads(traced.to_json())
        assert payload["trace"] == {
            "trace_id": "pub:41", "sampled": True,
            "parent": "broker.route", "origin": "shard0",
        }
        back = ControlRequest.from_json(traced.to_json())
        assert back.trace == payload["trace"]
        plain = ControlRequest("social0", "ping", request_id="cp-11")
        assert "trace" not in json.loads(plain.to_json())
        assert ControlRequest.from_json(plain.to_json()).trace is None

    def test_response_exact_payloads(self):
        ok = ControlResponse("cp-9", ok=True, result={"found": True})
        assert json.loads(ok.to_json()) == {
            "wire_version": 2,
            "request_id": "cp-9",
            "ok": True,
            "result": {"found": True},
            "error_type": "",
            "error_message": "",
        }
        err = ControlResponse.failure("cp-9", "UnknownService", "no go")
        assert json.loads(err.to_json()) == {
            "wire_version": 2,
            "request_id": "cp-9",
            "ok": False,
            "result": {},
            "error_type": "UnknownService",
            "error_message": "no go",
        }

    def test_newer_envelope_version_is_refused(self):
        data = json.loads(ControlRequest("s", "ping").to_json())
        data["wire_version"] = CONTROL_WIRE_VERSION + 1
        with pytest.raises(TransportError, match="wire_version"):
            ControlRequest.from_json(json.dumps(data))
        data = json.loads(ControlResponse("cp-1", ok=True).to_json())
        data["wire_version"] = CONTROL_WIRE_VERSION + 1
        with pytest.raises(TransportError, match="wire_version"):
            ControlResponse.from_json(json.dumps(data))
