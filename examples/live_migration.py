"""Zero-downtime database migration via replication (§6.5).

Reproduces Crowdtap's MongoDB -> TokuMX engine swap: stand up a clone
service on the new engine, bootstrap it from the original, keep both in
sync during a QA window, then flip traffic. Run with::

    python examples/live_migration.py
"""

from repro.core import Ecosystem
from repro.core.migration import LiveMigrator, replicate_service
from repro.databases.document import MongoLike, TokuMXLike
from repro.orm import Field, Model


def main() -> None:
    eco = Ecosystem()

    print("== the original main app, on MongoDB ==")
    main_app = eco.service("main-app", database=MongoLike("main-mongo"))

    @main_app.model(publish=["name", "points"])
    class Member(Model):
        name = Field(str)
        points = Field(int, default=0)

    @main_app.model(publish=["member_id", "kind"])
    class Action(Model):
        member_id = Field(int)
        kind = Field(str)

    members = [Member.create(name=f"member{i}", points=i * 10) for i in range(20)]
    for member in members[:5]:
        Action.create(member_id=member.id, kind="signup")
    print(f"  {Member.count()} members, {Action.count()} actions on MongoDB")

    print("\n== standing up the TokuMX clone (bootstrap) ==")
    clone = replicate_service(eco, "main-app", "main-app-tokumx",
                              TokuMXLike("main-toku"))
    CloneMember = clone.registry["Member"]
    print(f"  clone has {CloneMember.count()} members on "
          f"{clone.database.engine_family}")

    print("\n== QA window: both versions run, clone stays in sync ==")
    Member.create(name="new-during-qa", points=1)
    members[0].update(points=999)
    clone.subscriber.drain()
    print(f"  clone member count: {CloneMember.count()}")
    print(f"  clone sees updated points: {CloneMember.find(members[0].id).points}")

    print("\n== flip the load balancer: the clone is now the main app ==")
    print("  (the old MongoDB service can be retired at leisure)")

    print("\n== bonus: additive schema evolution on the live publisher ==")
    migrator = LiveMigrator(main_app)

    # A new feature needs the member's level; publish it without downtime.
    migrator.add_field(Member, "level", int, default=0)
    migrator.publish_new_attribute(Member, "level")
    print(f"  'level' now published: "
          f"{eco.broker.published_fields('main-app', 'Member')}")


if __name__ == "__main__":
    main()
