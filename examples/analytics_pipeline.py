"""A data-driven analytics + recommendation pipeline.

Shows the remaining Synapse abstractions working together:

- an *ephemeral* front-end publishes user actions without persisting
  them (§3.1);
- an Elasticsearch-like analytics service aggregates them in real time;
- an *observer* turns SQL friendship rows into Neo4j edges (Example 2)
  and a graph recommender runs friends-of-friends queries over them.

Run with::

    python examples/analytics_pipeline.py
"""

from repro.core import Ecosystem
from repro.databases.graph import Neo4jLike
from repro.databases.relational import PostgresLike
from repro.databases.search import ElasticsearchLike
from repro.orm import BelongsTo, Field, Model, after_create, after_destroy


def main() -> None:
    eco = Ecosystem()

    # ------------------------------------------------------------------
    # Ephemeral action stream -> search-engine analytics
    # ------------------------------------------------------------------
    frontend = eco.service("frontend")  # no database: pure event source

    @frontend.model(publish=["user_id", "kind", "target"], ephemeral=True)
    class UserAction(Model):
        user_id = Field(int)
        kind = Field(str)
        target = Field(str)

    analytics = eco.service("analytics", database=ElasticsearchLike("es"))

    @analytics.model(
        subscribe={"from": "frontend", "fields": ["user_id", "kind", "target"]},
        name="UserAction",
    )
    class IndexedAction(Model):
        user_id = Field(int)
        kind = Field(str)
        target = Field(str)

    # ------------------------------------------------------------------
    # SQL social graph -> Neo4j recommender via an observer
    # ------------------------------------------------------------------
    social = eco.service("social", database=PostgresLike("social-db"))

    @social.model(publish=["name"])
    class User(Model):
        name = Field(str)

    @social.model(publish=["user1_id", "user2_id"])
    class Friendship(Model):
        user1 = BelongsTo("User")
        user2 = BelongsTo("User")

    @social.model(publish=["user_id", "product"])
    class Like(Model):
        user_id = Field(int)
        product = Field(str)

    recommender = eco.service("recommender", database=Neo4jLike("neo"))
    graph = recommender.database

    @recommender.model(subscribe={"from": "social", "fields": ["name"]},
                       name="User")
    class GraphUser(Model):
        name = Field(str)

    @recommender.model(
        subscribe={"from": "social", "fields": ["user1_id", "user2_id"]},
        observer=True, name="Friendship",
    )
    class FriendshipObserver(Model):
        user1_id = Field(int)
        user2_id = Field(int)

        @after_create
        def add_edge(self):
            graph.create_edge(self.user1_id, "friend", self.user2_id,
                              directed=False)

        @after_destroy
        def drop_edge(self):
            graph.delete_edge(self.user1_id, "friend", self.user2_id,
                              directed=False)

    @recommender.model(
        subscribe={"from": "social", "fields": ["user_id", "product"]},
        observer=True, name="Like",
    )
    class LikeObserver(Model):
        user_id = Field(int)
        product = Field(str)

        @after_create
        def add_like(self):
            for node in graph.find_nodes("Product", {"name": self.product}):
                graph.create_edge(self.user_id, "likes", node["id"])
                return
            node = graph.create_node("Product", {"name": self.product})
            graph.create_edge(self.user_id, "likes", node["id"])

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    print("== social traffic on the SQL service ==")
    users = {name: User.create(name=name) for name in
             ["ada", "bob", "carol", "dave"]}
    Friendship.create(user1_id=users["ada"].id, user2_id=users["bob"].id)
    Friendship.create(user1_id=users["bob"].id, user2_id=users["carol"].id)
    Friendship.create(user1_id=users["carol"].id, user2_id=users["dave"].id)
    Like.create(user_id=users["bob"].id, product="espresso machine")
    Like.create(user_id=users["carol"].id, product="espresso machine")
    Like.create(user_id=users["carol"].id, product="cat tree")

    print("== click-stream from the DB-less frontend ==")
    for i in range(40):
        UserAction.create(user_id=(i % 4) + 1, kind="click" if i % 3 else "search",
                          target=f"page-{i % 5}")

    eco.drain_all()

    print("\n== analytics (Elasticsearch aggregations) ==")
    es = analytics.database
    for bucket in es.aggregate("user_actions", "terms", "kind"):
        print(f"  {bucket['key']}: {bucket['doc_count']} events")

    print("\n== graph recommendations for ada (friends-of-friends) ==")
    recs = graph.recommend(users["ada"].id, relation="friend", liked="likes",
                           depth=2)
    for product_id, endorsements in recs:
        node = graph.get_node(product_id)
        print(f"  {node['name']} (endorsed by {endorsements} in network)")

    print("\nephemeral + observer + search + graph: all four abstractions live")


if __name__ == "__main__":
    main()
