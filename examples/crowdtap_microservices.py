"""The Crowdtap production ecosystem (§5.1, Fig 10): a main app and eight
microservices with per-subscriber delivery modes. Run with::

    python examples/crowdtap_microservices.py
"""

from repro.apps.crowdtap import build_crowdtap_ecosystem
from repro.core.tools import describe_ecosystem


def main() -> None:
    ct = build_crowdtap_ecosystem()

    print(describe_ecosystem(ct.eco))

    print("== traffic ==")
    ada = ct.signup("ada", "ada@example.org")
    bob = ct.signup("bob", "bob@example.org")
    sony = ct.add_brand("Sony", "cameras, televisions and consoles")
    att = ct.add_brand("AT&T", "phone plans and home internet")
    ct.submit_action(ada, sony, "review", text="love this camera")
    ct.submit_action(bob, sony, "share", text="check out this deal")
    ct.submit_action(bob, att, "review", text="total spam do not buy")
    ct.crawl_profile(ada, likes=["photography", "coffee"])
    ct.sync()

    print("\n== mailer outbox (causal) ==")
    for mail in ct.outbox:
        print(f"  {mail}")

    print("\n== moderation verdicts (decorator) ==")
    for action in ct.ModeratedAction.all():
        print(f"  action {action.id} ({action.kind}): {action.status}")

    print("\n== analytics aggregation (weak, Elasticsearch) ==")
    print(f"  {ct.actions_per_kind()}")

    print("\n== brand search (weak, Elasticsearch) ==")
    print(f"  'cameras' -> {ct.search_brands('cameras')}")

    print("\n== targeting segments -> Spree (decorator chain) ==")
    print(f"  likes:photography -> {ct.members_in_segment('likes:photography')}")

    print("\n== engagement report (weak) ==")
    print(f"  {ct.engagement_report()}")


if __name__ == "__main__":
    main()
