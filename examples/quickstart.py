"""Quickstart: replicate a model between two heterogeneous databases.

A MongoDB-like publisher and a PostgreSQL-like subscriber share a User
model (the Fig 1 / Fig 4 pattern). Run with::

    python examples/quickstart.py
"""

from repro.core import Ecosystem
from repro.databases.document import MongoLike
from repro.databases.relational import PostgresLike
from repro.orm import Field, Model, after_create


def main() -> None:
    eco = Ecosystem()

    # -- Publisher service: its own app, its own MongoDB -------------------
    pub = eco.service("pub1", database=MongoLike("pub1-db"))

    @pub.model(publish=["name", "email"])
    class User(Model):
        name = Field(str)
        email = Field(str)
        password_digest = Field(str)  # never published

    # -- Subscriber service: separate app on a SQL engine ------------------
    sub = eco.service("sub1", database=PostgresLike("sub1-db"))

    @sub.model(subscribe={"from": "pub1", "fields": ["name", "email"]},
               name="User")
    class SubscribedUser(Model):
        name = Field(str)
        email = Field(str)

        @after_create
        def welcome(self):
            print(f"  [sub1] welcome email queued for {self.email}")

    # -- Publisher-side traffic --------------------------------------------
    print("creating users on the publisher (MongoDB)...")
    ada = User.create(name="Ada Lovelace", email="ada@example.org",
                      password_digest="x")
    User.create(name="Grace Hopper", email="grace@example.org",
                password_digest="y")

    print("draining the subscriber (PostgreSQL)...")
    applied = sub.subscriber.drain()
    print(f"  {applied} messages applied")

    rows = sub.database.select("users")
    print("subscriber's SQL rows:")
    for row in rows:
        print(f"  {row}")
    assert all("password_digest" not in row for row in rows)

    print("updating on the publisher...")
    ada.update(name="Ada King, Countess of Lovelace")
    sub.subscriber.drain()
    print(f"  subscriber now sees: {SubscribedUser.find(ada.id).name}")

    print("ok: two engines, one shared model, zero glue code")


if __name__ == "__main__":
    main()
