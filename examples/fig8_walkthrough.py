"""A live walkthrough of the paper's Fig 8: dependency tracking and
message generation for four controller executions, plus the resulting
subscriber ordering constraints. Run with::

    python examples/fig8_walkthrough.py
"""

from repro.core import Ecosystem
from repro.databases.relational import PostgresLike
from repro.orm import BelongsTo, Field, Model


def main() -> None:
    eco = Ecosystem()
    pub = eco.service("pub", database=PostgresLike("pub-db"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    @pub.model(publish=["author_id", "body"])
    class Post(Model):
        body = Field(str)
        author = BelongsTo("User")

    @pub.model(publish=["post_id", "author_id", "body"])
    class Comment(Model):
        body = Field(str)
        post = BelongsTo("Post")
        author = BelongsTo("User")

    probe = eco.broker.bind("probe", "pub")
    user1 = User.create(name="user1")
    user2 = User.create(name="user2")
    signups = [probe.pop(), probe.pop()]  # the two pre-existing users

    print("== the four controller executions of Fig 8(a) ==")
    with pub.controller(user=user1):
        post = Post.create(author_id=user1.id, body="helo")
    print("W1: user1 creates the post")
    with pub.controller(user=user2):
        seen = Post.find(post.id)
        Comment.create(post_id=seen.id, author_id=user2.id,
                       body="you have a typo")
    print("W2: user2 comments")
    with pub.controller(user=user1):
        seen = Post.find(post.id)
        Comment.create(post_id=seen.id, author_id=user1.id,
                       body="thanks for noticing")
    print("W3: user1 comments back")
    with pub.controller(user=user1):
        Post.find(post.id).update(body="hello")
    print("W4: user1 fixes the typo")

    print("\n== generated messages (Fig 8(b)) ==")
    messages = []
    for label in ("M1", "M2", "M3", "M4"):
        message = probe.pop()
        messages.append(message)
        op = message.operations[0]
        print(f"  {label}: {op['operation']} {op['types'][0]}#{op['id']}  "
              f"dependencies={message.dependencies}")

    print("\n== subscriber ordering (Fig 8(c)) ==")
    from repro.versionstore import ShardedKV, SubscriberVersionStore
    from repro.databases.kv import RedisLike

    store = SubscriberVersionStore(ShardedKV([RedisLike("s")]))
    for signup in signups:  # the subscriber has already seen the users
        store.apply(signup.dependencies)
    m1, m2, m3, m4 = messages
    print(f"  initially: M1 ready={store.satisfied(m1.dependencies)}, "
          f"M2 ready={store.satisfied(m2.dependencies)}, "
          f"M4 ready={store.satisfied(m4.dependencies)}")
    store.apply(m1.dependencies)
    print(f"  after M1:  M2 ready={store.satisfied(m2.dependencies)}, "
          f"M3 ready={store.satisfied(m3.dependencies)} (parallel!), "
          f"M4 ready={store.satisfied(m4.dependencies)}")
    store.apply(m2.dependencies)
    store.apply(m3.dependencies)
    print(f"  after M2+M3: M4 ready={store.satisfied(m4.dependencies)}")
    print("\nM1 -> {M2 ∥ M3} -> M4: exactly the Fig 8(c) graph")


if __name__ == "__main__":
    main()
