"""The §5.2 social product recommender (Fig 11), end to end.

Diaspora (social network) and Discourse (forum) publish posts; a
semantic analyzer decorates users with topics of interest; Spree uses
the decoration to recommend products; a mailer notifies friends of new
posts. Run with::

    python examples/social_ecosystem.py
"""

from repro.apps import build_social_ecosystem


def main() -> None:
    world = build_social_ecosystem()

    print("== signing up users on Diaspora ==")
    ada = world.diaspora.users_create("ada", "ada@example.org")
    bob = world.diaspora.users_create("bob", "bob@example.org")
    world.diaspora.friends_create(ada, bob)
    world.sync()

    print("== ada posts about her passions ==")
    world.diaspora.posts_create(
        ada, "nothing beats coffee in the morning, coffee is life"
    )
    world.diaspora.posts_create(
        ada, "my cats knocked over the coffee again... cats!"
    )
    topic = world.discourse.topics_create(ada.id, "music corner")
    world.discourse.posts_create(
        ada.id, topic, "learning guitar, any guitar tips for guitar beginners?"
    )
    world.sync()

    print("\n== mailer: friends were notified ==")
    for mail in world.mailer.outbox:
        print(f"  to={mail['to']}: {mail['body']}")

    print("\n== analyzer: decorated interests ==")
    interests = world.analyzer.User.find(ada.id).interests
    print(f"  ada's interests: {interests}")

    print("\n== spree: social product recommendations ==")
    for product in world.spree.recommend(ada.id):
        print(f"  {product.name} (${product.price}) — {product.description}")

    print("\n== spree: checkout ==")
    user = world.spree.User.find(ada.id)
    recs = world.spree.recommend(ada.id)
    order = world.spree.orders_create(user, [(recs[0], 1)])
    print(f"  order #{order.id} total ${order.total}")

    print("\nfive services, four database engines, one Synapse ecosystem")


if __name__ == "__main__":
    main()
