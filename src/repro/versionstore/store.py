"""Publisher and subscriber version stores (§4.2).

Publisher side, per dependency: two counters, ``ops`` (operations that
referenced the object) and ``version`` (set to ``ops`` on writes). For
each operation the publisher, holding locks on its write dependencies,
bumps the counters and emits ``version`` for read dependencies and
``version - 1`` for write dependencies (the exact Fig 8 arithmetic).

Subscriber side, per dependency: a single ``ops`` counter. A message is
processable once every dependency's stored counter is >= the version in
the message; after processing, the counter of every (non-external)
dependency is incremented.

All counter updates run as atomic scripts on Redis-like shards behind a
consistent-hash ring. Dependency names can be hashed into a fixed space
for O(1) memory — a 1-entry space degenerates to global ordering, the
ablation the paper points out.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.databases.kv import RedisLike
from repro.runtime.interleave import observe_point, yield_point
from repro.versionstore.hashring import HashRing, stable_hash


class DependencyHasher:
    """Maps full dependency names to version-store keys.

    ``space=None`` keeps names verbatim; an integer folds them into that
    many buckets (collisions serialise unrelated objects, trading
    parallelism for memory, §4.2).
    """

    def __init__(self, space: Optional[int] = None) -> None:
        if space is not None and space < 1:
            raise ValueError("hash space must be >= 1")
        self.space = space

    def hash(self, dep: str) -> str:
        if self.space is None:
            return dep
        return f"d{stable_hash(dep) % self.space}"


class ShardedKV:
    """Routes keys across Redis-like shards via a consistent-hash ring."""

    def __init__(self, shards: List[RedisLike], vnodes: int = 64) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        self._ring = HashRing(self.shards, vnodes=vnodes)

    def shard_for(self, key: str) -> RedisLike:
        return self._ring.node_for(key)

    def hget(self, key: str, field: str) -> Any:
        return self.shard_for(key).hget(key, field)

    def hset(self, key: str, field: str, value: Any) -> None:
        self.shard_for(key).hset(key, field, value)

    def eval_on(self, key: str, script) -> Any:
        return self.shard_for(key).eval(script)

    def entries(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        """All hashes under ``prefix`` across every shard (bootstrap bulk
        transfer, §4.4)."""
        out: Dict[str, Dict[str, Any]] = {}
        for shard in self.shards:
            for key in shard.keys(prefix):
                out[key] = shard.hgetall(key)
        return out

    def flushall(self) -> None:
        for shard in self.shards:
            shard.flushall()

    @property
    def any_down(self) -> bool:
        return any(shard.is_down for shard in self.shards)

    def total_keys(self) -> int:
        return sum(shard.dbsize() for shard in self.shards)


class _LockTable:
    """Per-dependency locks, acquired in sorted order (deadlock-free)."""

    def __init__(self) -> None:
        self._locks: Dict[str, threading.Lock] = {}
        self._guard = threading.Lock()

    def _lock_for(self, dep: str) -> threading.Lock:
        with self._guard:
            lock = self._locks.get(dep)
            if lock is None:
                lock = threading.Lock()
                self._locks[dep] = lock
            return lock

    def acquire(self, deps: Iterable[str]) -> List[threading.Lock]:
        held = []
        for dep in sorted(set(deps)):
            lock = self._lock_for(dep)
            lock.acquire()
            held.append(lock)
        return held

    @staticmethod
    def release(held: List[threading.Lock]) -> None:
        for lock in reversed(held):
            lock.release()


class PublisherVersionStore:
    """The publisher's two-counter store plus its lock table."""

    def __init__(
        self,
        kv: ShardedKV,
        hasher: Optional[DependencyHasher] = None,
        metrics: Optional[Any] = None,
        owner: str = "",
    ) -> None:
        self.kv = kv
        self.hasher = hasher or DependencyHasher()
        self.locks = _LockTable()
        # Counter bumps mirrored into the ecosystem metrics registry.
        self._bumps = (
            metrics.counter(f"versionstore.{owner or 'publisher'}.bumps")
            if metrics is not None
            else None
        )

    @staticmethod
    def _key(hashed_dep: str) -> str:
        return f"v:{hashed_dep}"

    # -- the §4.2 publisher algorithm steps --------------------------------

    def acquire_write_locks(self, deps: Iterable[str]) -> List[threading.Lock]:
        return self.locks.acquire(self.hasher.hash(d) for d in deps)

    def release_locks(self, held: List[threading.Lock]) -> None:
        self.locks.release(held)

    def bump(self, dep: str, is_write: bool) -> int:
        """Increment ``ops`` (and ``version`` for writes); return the
        version number to embed in the message."""
        if self._bumps is not None:
            self._bumps.increment()
        key = self._key(self.hasher.hash(dep))

        def script(store: RedisLike) -> int:
            ops = (store.hget(key, "ops") or 0) + 1
            store.hset(key, "ops", ops)
            if is_write:
                store.hset(key, "version", ops)
                return ops - 1
            return store.hget(key, "version") or 0

        return self.kv.eval_on(key, script)

    def register_operation(
        self, read_deps: Iterable[str], write_deps: Iterable[str]
    ) -> Dict[str, int]:
        """Bump every dependency; returns {hashed_dep: message_version}.

        Write-dep versions win when a name appears as both (hash
        collisions or explicit duplicates).
        """
        versions: Dict[str, int] = {}
        for dep in read_deps:
            hashed = self.hasher.hash(dep)
            if hashed not in versions:
                versions[hashed] = self.bump(dep, is_write=False)
        for dep in write_deps:
            versions[self.hasher.hash(dep)] = self.bump(dep, is_write=True)
        return versions

    # -- introspection / bootstrap -------------------------------------------

    def current(self, dep: str) -> Tuple[int, int]:
        key = self._key(self.hasher.hash(dep))
        return (self.kv.hget(key, "ops") or 0, self.kv.hget(key, "version") or 0)

    def snapshot(self) -> Dict[str, int]:
        """hashed_dep -> ops, the bulk payload of bootstrap step 1 (§4.4)."""
        out = {}
        for key, fields in self.kv.entries("v:").items():
            out[key[len("v:"):]] = fields.get("ops", 0)
        return out

    def watermark(self) -> int:
        """Total operations registered across every dependency — the
        publisher-side high-water mark an auditor compares against the
        subscriber's :meth:`SubscriberVersionStore.watermark`."""
        return sum(self.snapshot().values())

    def flush(self) -> None:
        self.kv.flushall()


class SubscriberVersionStore:
    """The subscriber's single-counter store."""

    def __init__(
        self, kv: ShardedKV, metrics: Optional[Any] = None, owner: str = ""
    ) -> None:
        self.kv = kv
        self._waiters = threading.Condition()
        self._applied = (
            metrics.counter(f"versionstore.{owner or 'subscriber'}.applied")
            if metrics is not None
            else None
        )

    @staticmethod
    def _key(hashed_dep: str) -> str:
        return f"s:{hashed_dep}"

    def ops(self, hashed_dep: str) -> int:
        return self.kv.hget(self._key(hashed_dep), "ops") or 0

    def snapshot(self) -> Dict[str, int]:
        """hashed_dep -> ops across every shard (audit watermarks)."""
        out: Dict[str, int] = {}
        for shard in self.kv.shards:
            for key in shard.keys("s:"):
                out[key[len("s:"):]] = shard.hget(key, "ops") or 0
        return out

    def watermark(self) -> int:
        """Total dependency increments seen by this subscriber."""
        return sum(self.snapshot().values())

    def deficits(self, publisher_snapshot: Dict[str, int]) -> Dict[str, int]:
        """Per-dependency counter deficits vs a publisher snapshot:
        only the dependencies this store is strictly behind on."""
        out: Dict[str, int] = {}
        for hashed_dep, ops in publisher_snapshot.items():
            behind = ops - self.ops(hashed_dep)
            if behind > 0:
                out[hashed_dep] = behind
        return out

    def lag_behind(
        self,
        publisher_snapshot: Dict[str, int],
        forgive: Optional[Dict[str, int]] = None,
    ) -> int:
        """Sum of per-dependency counter deficits vs a publisher
        snapshot: how many operation increments this store has not seen.
        Zero means every dependency is at (or past) the publisher's
        watermark; a persistent positive value with an empty queue is
        the §6.5 loss signature. ``forgive`` subtracts per-key deficits
        that are known to be deliberate — flow-control shedding tracked
        by ``QueueFlow.reconcile_shed`` — so backpressure does not read
        as loss."""
        return sum(
            max(0, behind - (forgive.get(dep, 0) if forgive else 0))
            for dep, behind in self.deficits(publisher_snapshot).items()
        )

    def satisfied(self, dependencies: Dict[str, int]) -> bool:
        return all(self.ops(dep) >= version for dep, version in dependencies.items())

    def missing(self, dependencies: Dict[str, int]) -> Dict[str, Tuple[int, int]]:
        """Unsatisfied deps -> (required, current); for diagnostics."""
        out = {}
        for dep, version in dependencies.items():
            current = self.ops(dep)
            if current < version:
                out[dep] = (version, current)
        return out

    def apply(self, dependencies: Iterable[str]) -> None:
        """Post-processing increment of every (non-external) dependency."""
        self.apply_counts({dep: 1 for dep in dependencies})

    def apply_counts(
        self, counts: Dict[str, int], record_only: bool = False
    ) -> None:
        """Post-processing bump of each dependency by ``counts[dep]``.

        Coalesced messages carry summed increments, and batched apply
        bumps per message inside the group-commit transaction —
        ``record_only=True`` downgrades the interleave events to
        observe-only because the caller holds the engine mutex there
        (a suspended scheduler step would deadlock the harness).
        """
        emit = observe_point if record_only else yield_point
        for dep, amount in counts.items():
            if amount <= 0:
                continue
            emit("counter.bump", dep=dep)
            if self._applied is not None:
                self._applied.increment(amount)
            key = self._key(dep)

            def script(
                store: RedisLike, key: str = key, amount: int = amount
            ) -> int:
                ops = (store.hget(key, "ops") or 0) + amount
                store.hset(key, "ops", ops)
                return ops

            value = self.kv.eval_on(key, script)
            emit("counter.bumped", dep=dep, value=value)
        with self._waiters:
            self._waiters.notify_all()

    # Weak-mode per-object freshness -----------------------------------------

    def is_stale(self, hashed_dep: str, message_version: int) -> bool:
        """Weak delivery: a message older than the applied state is
        discarded rather than waited for (§3.2)."""
        return message_version < self.ops(hashed_dep)

    def fast_forward(self, hashed_dep: str, message_version: int) -> None:
        """Weak delivery: jump the counter past a (possibly out-of-order)
        message that was just applied."""
        key = self._key(hashed_dep)

        def script(store: RedisLike) -> int:
            ops = max(store.hget(key, "ops") or 0, message_version + 1)
            store.hset(key, "ops", ops)
            return ops

        # Record-only: callers may hold the subscriber's per-object lock.
        value = self.kv.eval_on(key, script)
        observe_point("counter.fast_forward", dep=hashed_dep, value=value)
        with self._waiters:
            self._waiters.notify_all()

    # Blocking wait used by threaded subscriber workers --------------------------

    def wait_satisfied(self, dependencies: Dict[str, int], timeout: float) -> bool:
        end = time.monotonic() + timeout
        with self._waiters:
            while not self.satisfied(dependencies):
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._waiters.wait(min(remaining, 0.05))
        return True

    # Bootstrap ---------------------------------------------------------------

    def bulk_load(self, snapshot: Dict[str, int]) -> None:
        """Bootstrap step 1: adopt the publisher's ops counters (§4.4)."""
        for hashed_dep, ops in snapshot.items():
            key = self._key(hashed_dep)

            def script(store: RedisLike, key: str = key, ops: int = ops) -> None:
                current = store.hget(key, "ops") or 0
                store.hset(key, "ops", max(current, ops))

            self.kv.eval_on(key, script)
        with self._waiters:
            self._waiters.notify_all()

    def flush(self) -> None:
        yield_point("store.flush")
        self.kv.flushall()
        with self._waiters:
            self._waiters.notify_all()
