"""Version stores implementing the dependency-tracking algorithm of §4.2.

The publisher keeps two counters per dependency (``ops`` and ``version``)
and the subscriber one (``ops``). Stores run on Redis-like shards behind
a Dynamo-style consistent-hash ring, with an optional fixed-size
dependency hash space giving O(1) memory.
"""

from repro.versionstore.hashring import HashRing
from repro.versionstore.store import (
    DependencyHasher,
    PublisherVersionStore,
    ShardedKV,
    SubscriberVersionStore,
)

__all__ = [
    "HashRing",
    "ShardedKV",
    "DependencyHasher",
    "PublisherVersionStore",
    "SubscriberVersionStore",
]
