"""Consistent-hash ring (Dynamo-style) for sharding version stores."""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Tuple


def stable_hash(value: str) -> int:
    """Deterministic across processes/runs (unlike builtin ``hash``)."""
    return int.from_bytes(hashlib.md5(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Maps keys to nodes with virtual nodes for balance.

    Adding/removing a node only remaps the keys owned by its ring
    segments — the property that lets Synapse grow the version-store
    fleet without a global reshuffle.
    """

    def __init__(self, nodes: List[Any], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        self.vnodes = vnodes
        self._ring: List[Tuple[int, Any]] = []
        self._nodes: List[Any] = []
        for node in nodes:
            self.add_node(node)

    def add_node(self, node: Any) -> None:
        self._nodes.append(node)
        label = getattr(node, "name", str(node))
        for i in range(self.vnodes):
            point = stable_hash(f"{label}#{i}")
            bisect.insort(self._ring, (point, node))

    def remove_node(self, node: Any) -> None:
        self._nodes.remove(node)
        self._ring = [(p, n) for p, n in self._ring if n is not node]

    def node_for(self, key: str) -> Any:
        point = stable_hash(key)
        idx = bisect.bisect_right(self._ring, (point, object())) % len(self._ring)
        return self._ring[idx][1]

    @property
    def nodes(self) -> List[Any]:
        return list(self._nodes)

    def distribution(self, keys: List[str]) -> Dict[Any, int]:
        """How many of ``keys`` land on each node (for balance tests)."""
        counts: Dict[Any, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
