"""Generation numbers for publisher version-store recovery (§4.4).

The paper stores the generation in a reliable coordination service
(Chubby/ZooKeeper); :class:`GenerationAuthority` plays that role. When a
publisher's version store dies, the generation is incremented and
publishing resumes with fresh counters; subscribers flush their own
stores when the new generation reaches them.
"""

from __future__ import annotations

import threading


class GenerationAuthority:
    """Reliable, monotonic per-publisher generation counters."""

    def __init__(self) -> None:
        self._generations: dict = {}
        self._lock = threading.Lock()

    def current(self, app: str) -> int:
        with self._lock:
            return self._generations.get(app, 1)

    def increment(self, app: str) -> int:
        with self._lock:
            value = self._generations.get(app, 1) + 1
            self._generations[app] = value
            return value

    # -- durability (snapshot/restore) ---------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._generations)

    def restore_all(self, generations: dict) -> None:
        """Adopt restored generations, set-to-max per app: replaying a
        WAL tail over a snapshot may revisit older bumps, and a
        generation must never move backwards."""
        with self._lock:
            for app, value in generations.items():
                if value > self._generations.get(app, 1):
                    self._generations[app] = value
