"""Live schema migrations (§4.3) and replication-based DB migration (§6.5).

The rules the paper states:

1. publisher schema changes must be invisible to subscribers — before
   dropping a published column, shadow it with a virtual attribute;
2. the semantics (type) of a published attribute must never change —
   publish a new attribute instead;
3. when publisher and subscriber both gain an attribute, the publisher
   deploys first (enforced at subscription time), and a partial
   bootstrap back-fills the new data.

:class:`LiveMigrator` enforces 1-2 and automates the partial bootstrap of
3. :func:`replicate_service` implements Crowdtap's zero-downtime engine
swap (§6.5): stand up a clone service on a new DB, bootstrap it from the
original, keep it in sync, and switch the load balancer when ready.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.bootstrap import bootstrap_subscriber
from repro.errors import MigrationError
from repro.orm.fields import VirtualField


class LiveMigrator:
    """Schema-evolution helper for one publishing service."""

    def __init__(self, service: Any) -> None:
        self.service = service

    # -- rule 1: isolation -------------------------------------------------

    def drop_published_column(self, model_cls: type, name: str) -> None:
        """Refuse to silently drop a published attribute: a same-named
        virtual attribute must exist first (rule 1)."""
        fields = self.service.published_fields_for(model_cls) or []
        if name in fields and name not in model_cls._virtual_fields:
            raise MigrationError(
                f"{name!r} is published by {model_cls.__name__}; add a "
                "virtual attribute of the same name before dropping the "
                "column (§4.3 rule 1)"
            )
        db = self.service.database
        if hasattr(db, "drop_column"):
            db.drop_column(model_cls.table_name(), name)
        model_cls._fields.pop(name, None)

    def shadow_with_virtual(
        self, model_cls: type, name: str, getter: Callable, setter: Optional[Callable] = None
    ) -> None:
        """Install a virtual attribute shadowing (or replacing) a column."""
        virtual = VirtualField(getter=getter, setter=setter)
        virtual.name = name
        model_cls._virtual_fields[name] = virtual
        setattr(model_cls, name, virtual)

    # -- rule 2: published semantics are immutable -----------------------------

    def change_attribute_type(self, model_cls: type, name: str, new_type: type) -> None:
        fields = self.service.published_fields_for(model_cls) or []
        if name in fields:
            raise MigrationError(
                f"cannot change the type of published attribute "
                f"{model_cls.__name__}.{name}; publish a new attribute "
                "instead (§4.3 rule 2)"
            )
        field = model_cls._fields.get(name)
        if field is None:
            raise MigrationError(f"{model_cls.__name__} has no field {name!r}")
        field.py_type = new_type

    # -- rule 3: additive evolution ------------------------------------------

    def add_field(self, model_cls: type, name: str, py_type: Optional[type] = None,
                  default: Any = None) -> None:
        """Add a new persisted attribute to a live model (plus the column
        on schema-ful engines)."""
        from repro.orm.fields import Field as ORMField

        if name in model_cls._fields:
            raise MigrationError(f"{model_cls.__name__} already has {name!r}")
        field = ORMField(py_type, default=default)
        field.name = name
        model_cls._fields[name] = field
        setattr(model_cls, name, field)
        db = self.service.database
        if db is not None and hasattr(db, "add_column"):
            from repro.orm.engine_mappers import _column_type_for
            from repro.databases.relational.schema import Column

            db.add_column(
                model_cls.table_name(),
                Column(name, _column_type_for(py_type), default=default),
            )

    def publish_new_attribute(self, model_cls: type, name: str) -> None:
        """Extend a live publication with a new attribute."""
        if name not in model_cls._fields and name not in model_cls._virtual_fields:
            raise MigrationError(f"{model_cls.__name__} has no attribute {name!r}")
        fields = self.service._published.get(model_cls)
        if fields is None:
            raise MigrationError(f"{model_cls.__name__} is not published")
        if name in fields:
            return
        fields.append(name)
        self.service.ecosystem.broker.register_publication(
            self.service.name, model_cls.__name__, [name], self.service.delivery_mode
        )

    @staticmethod
    def backfill(subscriber_service: Any, publisher_name: Optional[str] = None) -> int:
        """Partial bootstrap so subscribers digest newly-published data."""
        return bootstrap_subscriber(subscriber_service, publisher_name)


def replicate_service(
    ecosystem: Any,
    source_name: str,
    clone_name: str,
    database: Any,
    model_fields: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Any:
    """Zero-downtime DB migration via replication (§6.5).

    Creates ``clone_name`` subscribed to everything ``source_name``
    publishes, on a brand-new ``database``, then bootstraps it. The
    caller keeps both running (dual-run QA) and eventually flips traffic.

    ``model_fields`` optionally narrows per-model subscribed fields;
    otherwise every published field of every model is mirrored.
    """
    from repro.orm.fields import Field
    from repro.orm.model import Model

    control = ecosystem.control
    if not control.known(source_name):
        raise MigrationError(f"unknown source service {source_name!r}")
    clone = ecosystem.service(clone_name, database=database)
    broker = ecosystem.broker
    for model_name in broker.published_models(source_name):
        fields = broker.published_fields(source_name, model_name)
        wanted = (model_fields or {}).get(model_name)
        if wanted is not None:
            fields = [f for f in fields if f in wanted]
        # Field *types* come over the control plane as type names — the
        # clone never sees the source's Field objects.
        schema = control.model_schema(source_name, model_name) or {}
        namespace: Dict[str, Any] = {}
        for field_name in fields:
            namespace[field_name] = Field(
                _PY_TYPES.get(schema.get(field_name))
            )
        clone_model = type(model_name, (Model,), namespace)
        clone.model(subscribe={"from": source_name, "fields": fields})(clone_model)
    bootstrap_subscriber(clone)
    return clone


#: Wire type names a replicated clone can map back onto python types;
#: anything else (custom classes) degrades to an untyped Field, exactly
#: like a source model that was missing from the registry used to.
_PY_TYPES: Dict[str, type] = {
    "str": str, "int": int, "float": float, "bool": bool,
    "list": list, "dict": dict, "tuple": tuple, "bytes": bytes,
}
