"""Synapse's public API: ecosystems, services and model declarations (§3).

An :class:`Ecosystem` is the shared fabric (broker, clock, dependency
hasher, generation authority). A :class:`Service` is one application:
its database, its models, its publisher and subscriber engines, and its
delivery-mode configuration.

::

    eco = Ecosystem()
    pub = eco.service("pub1", database=MongoLike("m"))

    @pub.model(publish=["name"])
    class User(Model):
        name = Field(str)

    sub = eco.service("sub1", database=PostgresLike("pg"))

    @sub.model(subscribe={"from": "pub1", "fields": ["name"]})
    class User(Model):           # noqa: F811 — separate service namespace
        name = Field(str)

    with pub.controller():
        User.create(name="ada")  # pub's User
    sub.subscriber.drain()       # sub's User now has the row
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Union

from repro.broker import Broker
from repro.clock import Clock, DEFAULT_CLOCK
from repro.core.delivery import CAUSAL, rank, validate_mode
from repro.core.dependencies import ControllerStack, controller_scope
from repro.core.generation import GenerationAuthority
from repro.core.observer import NonPersistedMapper
from repro.core.publisher import SynapsePublisher
from repro.core.subscriber import SubscriptionSpec, SynapseSubscriber
from repro.databases.kv import RedisLike
from repro.errors import DecoratorViolation, PublicationError, SynapseError
from repro.orm.mapper import mapper_for
from repro.orm.model import Model, bind_model
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.monitor import FlightRecorder, LagMonitor
from repro.runtime.tracing import Tracer
from repro.runtime.transport import ControlPlane
from repro.versionstore import (
    DependencyHasher,
    PublisherVersionStore,
    ShardedKV,
    SubscriberVersionStore,
)


class Ecosystem:
    """The shared fabric connecting every service."""

    def __init__(
        self,
        broker: Optional[Broker] = None,
        clock: Optional[Clock] = None,
        hasher: Optional[DependencyHasher] = None,
        queue_limit: Optional[int] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        # One metrics registry per ecosystem; a pre-built broker brings
        # its own registry and the ecosystem adopts it so ``broker.*``
        # counters land in the same snapshot as everything else.
        if metrics is not None:
            self.metrics = metrics
        elif broker is not None:
            self.metrics = broker.metrics
        else:
            self.metrics = MetricsRegistry()
        self.broker = broker or Broker(
            default_queue_limit=queue_limit, seed=seed, metrics=self.metrics
        )
        self.clock = clock or DEFAULT_CLOCK
        self.hasher = hasher or DependencyHasher()
        self.generations = GenerationAuthority()
        #: End-to-end pipeline tracing; off by default (zero hot-path cost
        #: beyond one ``enabled`` check per publish).
        self.tracer = tracer or Tracer()
        #: Anomaly flight recorder: bounded rings of completed traces and
        #: structured events; the tracer's sink and the broker's drop
        #: events feed it (docs/observability.md).
        self.recorder = recorder or FlightRecorder(clock=self.clock)
        self.recorder.registry = self.metrics
        self.tracer.sink = self.recorder.record_trace
        self.broker.recorder = self.recorder
        self.broker.tracer = self.tracer
        #: Per-link lag SLOs and the ``eco.monitor.health()`` report.
        self.monitor = LagMonitor(self)
        #: FlowController once :meth:`enable_flow` has run; None keeps
        #: the pre-flow per-message pipeline byte-for-byte.
        self.flow = None
        #: DurabilityManager once :meth:`enable_durability` has run;
        #: None keeps the in-memory-only pipeline byte-for-byte.
        self.durability = None
        #: CdcManager once :meth:`enable_cdc` has run (or the first
        #: ``Service.enable_outbox``); None means no raw-write front-end.
        self.cdc = None
        self.services: Dict[str, Service] = {}
        #: Control plane: every cross-service interaction that is not a
        #: broker write-message (bootstrap snapshots, digest exchange,
        #: repair triggers, watermark reads) flows through here as a
        #: JSON envelope — in-process over the loopback transport, or
        #: across worker processes in a sharded run.
        self.control = ControlPlane(self)
        #: Names of the services *this process* owns; None means all of
        #: them (the default single-process deployment). A ShardRunner
        #: worker narrows it to its placement.
        self.owned_services: Optional[set] = None
        #: Cluster observability plane (repro.runtime.monitor.cluster),
        #: wired up by the shard worker entry point in sharded runs.
        self.cluster = None

    # ------------------------------------------------------------------
    # Local-service views (the only sanctioned enumeration surface:
    # subsystems outside this module must not dereference
    # ``ecosystem.services`` — peers are reached via ``eco.control``)
    # ------------------------------------------------------------------

    def local_services(self) -> List["Service"]:
        """The services hosted by this process (all of them unless a
        shard placement narrowed ``owned_services``)."""
        if self.owned_services is None:
            return list(self.services.values())
        return [
            service for name, service in self.services.items()
            if name in self.owned_services
        ]

    def local_service(self, name: str) -> Optional["Service"]:
        """One locally-hosted service, or None if ``name`` is unknown
        here or owned by another shard."""
        if self.owned_services is not None and name not in self.owned_services:
            return None
        return self.services.get(name)

    def enable_tracing(
        self, sample_rate: Optional[float] = None, seed: Optional[int] = None
    ) -> Tracer:
        """Switch on per-message span tracing and return the tracer.

        ``sample_rate`` below 1.0 turns this into production-mode
        *sampled always-on* tracing: a deterministic per-uid decision
        picks which messages carry their trace across the wire."""
        return self.tracer.enable(sample_rate=sample_rate, seed=seed)

    def enable_flow(self, config: Optional[Any] = None) -> Any:
        """Switch on flow control (docs/flow_control.md) and return the
        :class:`~repro.runtime.flow.FlowController`.

        Every subscriber queue — existing and future — gets credit-based
        admission with graduated backpressure ahead of the §4.4 kill
        cliff, semantics-aware coalescing of same-object writes, and the
        workers/drain switch to dependency-aware batched apply."""
        from repro.runtime.flow import FlowConfig, FlowController

        controller = FlowController(
            config or FlowConfig(),
            metrics=self.metrics,
            mode_of=self.broker.publisher_mode,
            recorder=self.recorder,
        )
        self.flow = controller
        self.broker.attach_flow(controller)
        return controller

    def enable_durability(
        self,
        data_dir: Optional[str] = None,
        fsync: str = "off",
        segment_records: Optional[int] = None,
        group_max: Optional[int] = None,
        snapshot_every: Optional[int] = None,
    ) -> Any:
        """Switch on the durability subsystem (docs/durability.md) and
        return the :class:`~repro.durability.DurabilityManager`.

        Every durable state transition is appended to a segmented WAL
        under ``data_dir`` (default: ``$REPRO_DATA_DIR`` or
        ``./repro-data``), checkpointed into snapshots every
        ``snapshot_every`` appends (None = explicit snapshots only),
        and ``eco.durability.restore()`` rebuilds the process after a
        crash. ``fsync`` is ``off`` / ``interval`` (group commit) /
        ``always``. The flight recorder's anomaly dumps move under the
        same data dir unless already armed elsewhere."""
        import os as _os

        from repro.durability import (
            DurabilityManager,
            flight_dir,
            resolve_data_dir,
        )
        from repro.durability.wal import (
            DEFAULT_GROUP_MAX,
            DEFAULT_SEGMENT_RECORDS,
        )

        path = resolve_data_dir(data_dir)
        manager = DurabilityManager(
            self,
            path,
            fsync=fsync,
            segment_records=segment_records or DEFAULT_SEGMENT_RECORDS,
            group_max=group_max or DEFAULT_GROUP_MAX,
            snapshot_every=snapshot_every,
        )
        self.durability = manager
        self.broker.attach_durability(manager)
        if self.recorder.dump_dir is None:
            self.recorder.dump_dir = flight_dir(path)
            _os.makedirs(self.recorder.dump_dir, exist_ok=True)
        return manager

    def enable_cdc(self) -> Any:
        """Switch on the CDC / transactional-outbox front-end
        (docs/cdc.md) and return the :class:`~repro.cdc.CdcManager`.

        Services opt in per-service with ``enable_outbox()`` /
        ``raw_session()``; the manager tails every registered outbox
        into the ordinary publisher path. Idempotent."""
        if self.cdc is None:
            from repro.cdc import CdcManager

            self.cdc = CdcManager(self)
        return self.cdc

    def service(self, name: str, **kwargs: Any) -> "Service":
        if name in self.services:
            raise SynapseError(f"service {name!r} already exists")
        service = Service(name, self, **kwargs)
        self.services[name] = service
        self.control.register_service(service)
        return service

    def drain_all(self, max_rounds: int = 100) -> int:
        """Run every locally-owned subscriber until this process is
        quiescent — decorator cascades can need several rounds. With
        CDC enabled, each round first tails the outboxes: a raw write
        followed immediately by ``drain_all`` must land at subscribers,
        and the process is not quiescent while an outbox tail is
        non-empty."""
        total = 0
        for _ in range(max_rounds):
            progressed = 0
            if self.cdc is not None:
                progressed += self.cdc.poll_all()
            for service in self.local_services():
                progressed += service.subscriber.drain()
            total += progressed
            if progressed == 0:
                break
        return total


class Service:
    """One application in the ecosystem."""

    def __init__(
        self,
        name: str,
        ecosystem: Ecosystem,
        database: Optional[Any] = None,
        delivery_mode: str = CAUSAL,
        version_store_shards: int = 1,
    ) -> None:
        self.name = name
        self.ecosystem = ecosystem
        self.database = database
        self.delivery_mode = validate_mode(delivery_mode)
        self.registry: Dict[str, type] = {}
        self._published: Dict[type, List[str]] = {}
        self._subscribed: Dict[type, List[SubscriptionSpec]] = {}
        self._controllers = ControllerStack()
        self._remote_state = threading.local()
        self.publisher_version_store = PublisherVersionStore(
            ShardedKV(
                [RedisLike(f"{name}-pvs-{i}") for i in range(version_store_shards)]
            ),
            hasher=ecosystem.hasher,
            metrics=ecosystem.metrics,
            owner=name,
        )
        self.subscriber_version_store = SubscriberVersionStore(
            ShardedKV(
                [RedisLike(f"{name}-svs-{i}") for i in range(version_store_shards)]
            ),
            metrics=ecosystem.metrics,
            owner=name,
        )
        self.publisher = SynapsePublisher(self)
        self.subscriber = SynapseSubscriber(self)
        #: ViewManager once :meth:`enable_views` has run; None keeps the
        #: apply path byte-for-byte (no extra engine reads, no cache).
        self.views = None
        #: OutboxTable / CdcPoller once :meth:`enable_outbox` has run;
        #: None means no raw-write front-end for this service.
        self.outbox = None
        self.cdc_poller = None
        if database is not None:
            # Engine op-stats feed the shared registry (engine.<name>.*).
            database.bind_metrics(ecosystem.metrics)

    # ------------------------------------------------------------------
    # Model declaration (§3.1)
    # ------------------------------------------------------------------

    def model(
        self,
        publish: Optional[List[str]] = None,
        subscribe: Optional[Union[Dict[str, Any], List[Dict[str, Any]]]] = None,
        ephemeral: bool = False,
        observer: bool = False,
        name: Optional[str] = None,
    ):
        """Class decorator binding a model to this service.

        - ``publish=[...]``: attribute names to publish.
        - ``subscribe={"from": app, "fields": [...] | {remote: local},
          "mode": ...}`` or a list of such dicts (multi-publisher
          subscriptions, Fig 3).
        - ``ephemeral=True``: DB-less publisher; ``observer=True``:
          DB-less subscriber (§3.1).
        """
        if ephemeral and observer:
            raise SynapseError("a model cannot be both ephemeral and observer")
        if ephemeral and subscribe:
            raise SynapseError("ephemerals are publishers only")
        if observer and publish:
            raise SynapseError("observers are subscribers only")

        def decorator(cls: type) -> type:
            if not issubclass(cls, Model):
                raise SynapseError(f"{cls.__name__} must subclass Model")
            if name is not None:
                # Model names must match across services (§3.1); ``name``
                # lets test/app code avoid Python-scope name clashes.
                cls.__name__ = name
                cls.__qualname__ = name
            if cls.__name__ in self.registry:
                raise SynapseError(
                    f"service {self.name!r} already has a model named "
                    f"{cls.__name__!r}; each model has one owner (§3.1)"
                )
            if ephemeral or observer:
                mapper = NonPersistedMapper()
            else:
                if self.database is None:
                    raise SynapseError(
                        f"service {self.name!r} has no database; use "
                        "ephemeral/observer for DB-less models"
                    )
                mapper = mapper_for(self.database)
            bind_model(cls, self.database, registry=self.registry, mapper=mapper)
            cls._service = self
            mapper.interceptor = self.publisher
            mapper.bind_metrics(self.ecosystem.metrics, self.name)

            if subscribe is not None:
                self._declare_subscriptions(cls, subscribe, observer)
            if publish is not None:
                self._declare_publication(cls, list(publish))
            return cls

        return decorator

    def _declare_subscriptions(
        self,
        cls: type,
        subscribe: Union[Dict[str, Any], List[Dict[str, Any]]],
        observer: bool,
    ) -> None:
        spec_dicts = subscribe if isinstance(subscribe, list) else [subscribe]
        readonly: set = set(cls._readonly_fields)
        for spec_dict in spec_dicts:
            try:
                from_app = spec_dict["from"]
                raw_fields = spec_dict["fields"]
            except KeyError as exc:
                raise SynapseError(f"subscribe needs {exc} key") from None
            if isinstance(raw_fields, dict):
                fields = dict(raw_fields)
            else:
                fields = {name: name for name in raw_fields}
            for local in fields.values():
                if local not in cls._fields and local not in cls._virtual_fields:
                    raise SynapseError(
                        f"{cls.__name__} has no attribute {local!r} to receive "
                        "the subscription"
                    )
            publisher_mode = self.ecosystem.broker.publisher_mode(from_app)
            default_mode = CAUSAL
            if publisher_mode is not None and rank(publisher_mode) < rank(CAUSAL):
                default_mode = publisher_mode
            mode = validate_mode(spec_dict.get("mode", default_mode))
            spec = SubscriptionSpec(
                from_app=from_app,
                model_name=cls.__name__,
                model_cls=cls,
                fields=fields,
                mode=mode,
                observer=observer,
            )
            self.subscriber.add_subscription(spec)
            self._subscribed.setdefault(cls, []).append(spec)
            readonly.update(
                local for local in fields.values() if local in cls._fields
            )
        cls._readonly_fields = frozenset(readonly)

    def _declare_publication(self, cls: type, fields: List[str]) -> None:
        for name in fields:
            if name not in cls._fields and name not in cls._virtual_fields:
                raise PublicationError(
                    f"{cls.__name__} publishes unknown attribute {name!r}"
                )
        subscribed_locals = {
            local
            for spec in self._subscribed.get(cls, [])
            for local in spec.fields.values()
        }
        overlap = subscribed_locals & set(fields)
        if overlap:
            raise DecoratorViolation(
                f"{cls.__name__} may not re-publish subscribed attributes "
                f"{sorted(overlap)} (§3.1)"
            )
        self._published[cls] = fields
        self.ecosystem.broker.register_publication(
            self.name, cls.__name__, fields, self.delivery_mode
        )

    # ------------------------------------------------------------------
    # Introspection used by the publisher/subscriber engines
    # ------------------------------------------------------------------

    @property
    def broker(self) -> Broker:
        return self.ecosystem.broker

    def published_fields_for(self, model_cls: type) -> Optional[List[str]]:
        return self._published.get(model_cls)

    def subscription_specs_for(self, model_cls: type) -> List[SubscriptionSpec]:
        return self._subscribed.get(model_cls, [])

    def published_models(self) -> List[type]:
        return list(self._published)

    # ------------------------------------------------------------------
    # Controller / background-job scopes (§2, §4.2)
    # ------------------------------------------------------------------

    def controller(self, user: Optional[Any] = None) -> controller_scope:
        return controller_scope(self, user)

    def background_job(self) -> controller_scope:
        """Sidekiq-style job scope: same tracking, no user session."""
        return controller_scope(self, user=None)

    # ------------------------------------------------------------------
    # Read side: derived views + cache tier (docs/read_path.md)
    # ------------------------------------------------------------------

    def enable_views(self, cache: Optional[Any] = None,
                     kv: Optional[Any] = None) -> Any:
        """Switch on the subscriber-side read path for this service and
        return its :class:`~repro.views.ViewManager`.

        Declared views are maintained in the apply path (once per
        batch under batched apply) and the replicated cache's per-key
        version watermarks advance with every landed write, so a
        cached read is never staler than the applied causal frontier.
        Idempotent: a second call returns the same manager."""
        if self.views is None:
            from repro.views import ViewManager

            self.views = ViewManager(self, cache=cache, kv=kv)
        return self.views

    # ------------------------------------------------------------------
    # CDC / transactional-outbox front-end (docs/cdc.md)
    # ------------------------------------------------------------------

    def enable_outbox(self) -> Any:
        """Arm this service's transactional outbox and register its CDC
        poller with the ecosystem's :class:`~repro.cdc.CdcManager`.
        Returns the :class:`~repro.cdc.OutboxTable`. Idempotent."""
        if self.outbox is None:
            from repro.cdc import OutboxTable

            manager = self.ecosystem.enable_cdc()
            self.outbox = OutboxTable(self)
            self.cdc_poller = manager.register(self)
        return self.outbox

    def raw_session(self) -> Any:
        """An ORM-bypassing write session: every insert/update/delete
        commits its data row and a sequenced outbox record in the same
        engine transaction, replicated by the CDC poller with the same
        delivery semantics as ORM writes."""
        from repro.cdc import RawSession

        return RawSession(self.enable_outbox())

    # ------------------------------------------------------------------
    # Remote-application guard (subscriber persisting remote updates)
    # ------------------------------------------------------------------

    @property
    def applying_remote(self) -> bool:
        return bool(getattr(self._remote_state, "targets", None))

    def is_applying_target(self, model_name: str, row_id: Any) -> bool:
        """True (once) when the subscriber engine is persisting this very
        object from a remote update. The token is one-shot: only the
        engine's own save bypasses the publisher — any further write to
        the same object from a subscriber callback (e.g. a decorator
        updating its decoration) publishes normally (§3.1)."""
        targets = getattr(self._remote_state, "targets", None)
        if not targets:
            return False
        for entry in reversed(targets):
            if (entry["model"], entry["id"]) == (model_name, row_id) \
                    and not entry["used"]:
                entry["used"] = True
                return True
        return False

    @contextmanager
    def applying_remote_scope(self, model_name: Optional[str] = None,
                              row_id: Any = None):
        targets = getattr(self._remote_state, "targets", None)
        if targets is None:
            targets = []
            self._remote_state.targets = targets
        targets.append({"model": model_name, "id": row_id, "used": False})
        try:
            yield
        finally:
            targets.pop()

    # ------------------------------------------------------------------
    # Bootstrap & recovery surface (§4.4)
    # ------------------------------------------------------------------

    @property
    def bootstrap_active(self) -> bool:
        """The ``Synapse.bootstrap?`` predicate of the paper's API."""
        return self.subscriber.bootstrapping

    def current_generation(self) -> int:
        return self.ecosystem.generations.current(self.name)

    def recover_publisher_version_store(self) -> int:
        """Version-store death on the publisher side: bump the generation
        and resume publishing with fresh counters (§4.4)."""
        generation = self.ecosystem.generations.increment(self.name)
        for shard in self.publisher_version_store.kv.shards:
            shard.restart()
            shard.flushall()
        if self.ecosystem.durability is not None:
            self.ecosystem.durability.log_pubgen(self.name, generation)
        return generation

    # ------------------------------------------------------------------
    # Anti-entropy surface (replica audits + targeted repair)
    # ------------------------------------------------------------------

    def audit_replication(self, publisher_name: Optional[str] = None) -> Any:
        """Compare this subscriber's replicas against their publishers:
        Merkle digests locate divergent objects; broker/version-store
        watermarks tell transit lag from §6.5-style loss. Returns an
        :class:`repro.repair.AuditReport`."""
        from repro.repair import ReplicationAuditor

        return ReplicationAuditor(self).audit(publisher_name)

    def repair_replication(
        self,
        publisher_name: Optional[str] = None,
        report: Optional[Any] = None,
        reaudit: bool = True,
    ) -> Any:
        """Targeted anti-entropy: re-publish only divergent objects as
        repair messages (O(divergence), no queue decommission, no
        re-bootstrap). Returns a :class:`repro.repair.RepairResult`."""
        from repro.repair import repair_subscriber

        return repair_subscriber(
            self, publisher_name, report=report, reaudit=reaudit
        )

    def stats(self) -> Dict[str, Any]:
        """Operational counters for dashboards/tests.

        Every value is a read-through view of the ecosystem's
        :class:`MetricsRegistry`; ``ecosystem.metrics.snapshot()`` exposes
        the same counters (and more) under their hierarchical names.
        """
        queue = self.subscriber.queue
        return {
            "service": self.name,
            "delivery_mode": self.delivery_mode,
            "messages_published": self.publisher.messages_published,
            "publish_overhead_mean_ms": self.publisher.overhead.mean() * 1000,
            "messages_processed": self.subscriber.processed_messages,
            "stale_discarded": self.subscriber.discarded_stale,
            "duplicates_ignored": self.subscriber.duplicate_messages,
            "dep_wait_mean_ms": self.subscriber.dep_wait.mean() * 1000,
            "apply_mean_ms": self.subscriber.apply_time.mean() * 1000,
            "queue_depth": len(queue) if queue is not None else 0,
            "bootstrapping": self.subscriber.bootstrapping,
            "generation": self.current_generation(),
        }

    def __repr__(self) -> str:
        return f"<Service {self.name!r} mode={self.delivery_mode}>"
