"""Operator tooling: ecosystem topology description (the Fig 10/11 view)."""

from __future__ import annotations

from typing import Any, List


def describe_ecosystem(ecosystem: Any) -> str:
    """Human-readable topology: services, engines, publications and
    subscriptions with their delivery modes."""
    lines: List[str] = ["== ecosystem topology =="]
    for name in sorted(ecosystem.services):
        service = ecosystem.services[name]
        engine = (
            service.database.engine_family if service.database is not None
            else "(no DB)"
        )
        lines.append(f"  {name} [{engine}]")
        for model_cls, fields in service._published.items():
            lines.append(
                f"    publishes {model_cls.__name__}({', '.join(fields)}) "
                f"[{service.delivery_mode}]"
            )
        for (from_app, model_name), spec in sorted(service.subscriber.specs.items()):
            flavour = " (observer)" if spec.observer else ""
            lines.append(
                f"    subscribes {from_app}/{model_name}"
                f"({', '.join(spec.fields)}) [{spec.mode}]{flavour}"
            )
    return "\n".join(lines)


def publisher_file(service: Any) -> dict:
    """The per-publisher file of §3.1: every published model with its
    attributes and the publisher's delivery mode, handed to developers
    writing subscribers. JSON-serialisable."""
    models = {}
    for model_cls, fields in service._published.items():
        models[model_cls.__name__] = {
            "uri": f"{service.name}/{model_cls.__name__}",
            "attributes": list(fields),
            "types": model_cls.type_chain(),
        }
    return {
        "app": service.name,
        "delivery_mode": service.delivery_mode,
        "models": models,
    }


def to_dot(ecosystem: Any) -> str:
    """GraphViz DOT of the service graph (solid = causal, dashed = weak,
    bold = global)."""
    styles = {"causal": "solid", "weak": "dashed", "global": "bold"}
    lines = ["digraph synapse {", "  rankdir=LR;"]
    for name in sorted(ecosystem.services):
        service = ecosystem.services[name]
        engine = (
            service.database.engine_family if service.database is not None
            else "ephemeral"
        )
        lines.append(f'  "{name}" [label="{name}\\n({engine})"];')
    seen = set()
    for name in sorted(ecosystem.services):
        service = ecosystem.services[name]
        for (from_app, _model), spec in sorted(service.subscriber.specs.items()):
            key = (from_app, name, spec.mode)
            if key in seen:
                continue
            seen.add(key)
            style = styles.get(spec.mode, "solid")
            lines.append(f'  "{from_app}" -> "{name}" [style={style}];')
    lines.append("}")
    return "\n".join(lines)
