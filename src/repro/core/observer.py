"""Ephemerals and Observers: DB-less publishers and subscribers (§3.1).

An *ephemeral* is a published model that is never persisted — e.g. a
front-end service passing user actions straight to analytics
subscribers. An *observer* is a subscribed model that is never persisted
— its callbacks transform incoming updates into whatever local shape the
service wants (Fig 5 turns Friendship rows into Neo4j edges).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, List, Optional

from repro.orm.mapper import Mapper, Row


class NonPersistedMapper(Mapper):
    """Mapper for ephemerals/observers: assigns ids, stores nothing.

    Writes still flow through the interceptor, which is the whole point:
    an ephemeral's ``save()`` publishes without touching any DB.
    """

    engine_families = ()

    def __init__(self) -> None:
        super().__init__(db=None)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()

    def bind(self, model_cls: type) -> None:
        self.model_cls = model_cls
        self.table = model_cls.table_name()

    def _next_id(self) -> int:
        with self._lock:
            return next(self._seq)

    def _do_insert(self, attrs: Row) -> Row:
        row = dict(attrs)
        if row.get("id") is None:
            row["id"] = self._next_id()
        return row

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        row = dict(attrs)
        row["id"] = row_id
        return row

    def _do_delete(self, row_id: Any) -> Row:
        return {"id": row_id}

    def _do_find(self, row_id: Any) -> Optional[Row]:
        return None

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        return []

    def _do_count(self, conditions: Row) -> int:
        return 0

    def current_transaction(self):
        return None


class Ephemeral:
    """Marker mixin for DB-less published models (documentation aid; the
    authoritative flag is ``ephemeral=True`` on ``Service.model``)."""


class Observer:
    """Marker mixin for DB-less subscribed models."""
