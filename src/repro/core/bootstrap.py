"""Subscriber bootstrapping and recovery (§4.4).

Three steps: (1) the publisher's version-store counters are transferred
in bulk; (2) every subscribed object is dumped from the publisher's DB
and applied locally; (3) messages published meanwhile are drained. The
subscriber runs with weak semantics (``bootstrap_active`` is True) until
step 3 completes.

The same procedure serves as the *partial bootstrap* after a queue
decommission, a subscriber version-store death, or the message-loss
deadlock of §6.5.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SynapseError


def bootstrap_subscriber(
    service: Any,
    publisher_name: Optional[str] = None,
    models: Optional[list] = None,
) -> int:
    """Synchronise ``service`` with its publisher(s); returns the number
    of objects bulk-applied in step 2.

    ``models`` restricts the bulk data phase to the named models — the
    *partial data bootstrap* used after publishing new attributes
    (§4.3), where only the affected model needs back-filling.
    """
    subscriber = service.subscriber
    if publisher_name is not None:
        apps = [publisher_name]
    else:
        apps = sorted({spec.from_app for spec in subscriber.specs.values()})
    if not apps:
        return 0

    subscriber.bootstrapping = True
    queue = subscriber.queue
    if queue is not None and queue.decommissioned:
        queue.recommission()

    control = service.ecosystem.control
    applied = 0
    for app in apps:
        if not control.known(app):
            raise SynapseError(
                f"cannot bootstrap {service.name!r}: publisher {app!r} unknown"
            )
        # Step 1 — bulk version transfer, answered by the publisher's
        # control-plane handler (which may live in another process).
        snapshot = control.bootstrap_snapshot(app)
        service.subscriber_version_store.bulk_load(snapshot["versions"])
        subscriber.generations[app] = snapshot["generation"]

        # Step 2 — bulk data transfer of every subscribed model: the
        # publisher dumps each model as marshaled wire operations.
        for (from_app, model_name), spec in sorted(subscriber.specs.items()):
            if from_app != app:
                continue
            if models is not None and model_name not in models:
                continue
            dump = control.model_dump(app, model_name)
            if not dump["found"]:
                continue
            dumped_ids = set()
            for operation, row_id in zip(dump["operations"], dump["ids"]):
                subscriber._apply_operation(app, operation)
                dumped_ids.add(row_id)
                applied += 1
            # Anti-entropy: drop local rows the publisher no longer has
            # (their delete messages may have been lost — without this, a
            # rebootstrap after the §6.5 incident could leave ghosts).
            # Skipped for multi-publisher models (Fig 3): no single
            # publisher's dump is authoritative for the full row set.
            multi_publisher = sum(
                1 for other in subscriber.specs.values()
                if other.model_cls is spec.model_cls
            ) > 1
            if not spec.observer and not multi_publisher \
                    and spec.model_cls.__mapper__ is not None:
                local_rows = spec.model_cls.__mapper__._do_where({}, None, None)
                for local_row in local_rows:
                    if local_row["id"] not in dumped_ids:
                        ghost_op = {
                            "operation": "delete",
                            "types": [model_name],
                            "id": local_row["id"],
                            "attributes": {},
                        }
                        subscriber._apply_operation(app, ghost_op)

    # Step 3 — process everything queued during the bulk phases.
    subscriber.drain()
    if queue is None or not len(queue):
        subscriber.bootstrapping = False
    # Bootstrap's bulk transfers bypass the WAL (steps 1 and 2 mutate
    # state without per-message records), so checkpoint the finished
    # state: a crash mid-bootstrap re-enters bootstrap, a crash after
    # this snapshot restores the bootstrapped replica.
    durability = getattr(service.ecosystem, "durability", None)
    if durability is not None:
        durability.snapshot()
    return applied


def recover_subscriber_version_store(service: Any) -> int:
    """Subscriber version-store death: restart the shards and run a
    partial bootstrap (§4.4)."""
    for shard in service.subscriber_version_store.kv.shards:
        shard.restart()
        shard.flushall()
    return bootstrap_subscriber(service)
