"""Delivery modes and their ordering rules (§3.2).

``global`` > ``causal`` > ``weak``. A subscriber may only select a mode
at most as strong as its publisher supports, and may weaken messages by
ignoring part of their dependency information (§4.2).
"""

from __future__ import annotations

from repro.errors import DeliveryModeError

GLOBAL = "global"
CAUSAL = "causal"
WEAK = "weak"

_RANKS = {WEAK: 0, CAUSAL: 1, GLOBAL: 2}

#: The write dependency added to every operation under global ordering.
GLOBAL_OBJECT = "__global__"


def validate_mode(mode: str) -> str:
    if mode not in _RANKS:
        raise DeliveryModeError(
            f"unknown delivery mode {mode!r}; pick one of {sorted(_RANKS)}"
        )
    return mode


def rank(mode: str) -> int:
    validate_mode(mode)
    return _RANKS[mode]


def check_subscription_mode(subscriber_mode: str, publisher_mode: str) -> None:
    """Subscribers can only select semantics at most as strong as the
    publisher supports (§3.2)."""
    if rank(subscriber_mode) > rank(publisher_mode):
        raise DeliveryModeError(
            f"subscriber requested {subscriber_mode!r} but the publisher "
            f"only supports {publisher_mode!r}"
        )


def effective_dependencies(
    dependencies: dict, mode: str, object_deps: set
) -> dict:
    """Weaken a message's dependency map to the subscriber's mode.

    - global: respect everything.
    - causal: drop the global-object dependency.
    - weak: keep only the written objects' own dependencies.
    """
    validate_mode(mode)
    if mode == GLOBAL:
        return dict(dependencies)
    if mode == CAUSAL:
        return {d: v for d, v in dependencies.items() if d != GLOBAL_OBJECT}
    return {d: v for d, v in dependencies.items() if d in object_deps}
