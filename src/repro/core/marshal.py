"""Marshalling model writes into the Fig 6(b) message format.

Each operation record carries the operation kind, the object's full
inheritance chain (so subscribers can consume polymorphic models, §4.1),
its id and the published attributes. Virtual attributes are marshalled
by calling their getters on a hydrated instance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.broker.message import Message


def marshal_attributes(
    model_cls: type, row: Dict[str, Any], fields: List[str]
) -> Dict[str, Any]:
    """Published attribute values for one written row.

    Persisted fields come straight from the row; virtual attributes are
    computed through their getters (§3.1).
    """
    out: Dict[str, Any] = {}
    instance = None
    for name in fields:
        if name in model_cls._fields:
            out[name] = row.get(name)
        elif name in model_cls._virtual_fields:
            if instance is None:
                instance = model_cls.from_row(row)
            out[name] = getattr(instance, name)
        else:
            raise KeyError(f"{model_cls.__name__} has no published field {name!r}")
    return out


def marshal_operation(
    kind: str, model_cls: type, row: Dict[str, Any], fields: List[str]
) -> Dict[str, Any]:
    attributes: Dict[str, Any] = {}
    if kind in ("create", "update"):
        attributes = marshal_attributes(model_cls, row, fields)
    else:
        # Deletes carry the last published attribute values as well as the
        # id, so DB-less observers can act on them (Fig 5's after_destroy).
        try:
            attributes = marshal_attributes(model_cls, row, fields)
        except Exception:
            attributes = {}
    return {
        "operation": kind,
        "types": model_cls.type_chain(),
        "id": row.get("id"),
        "attributes": attributes,
    }


def build_message(
    app: str,
    operations: List[Dict[str, Any]],
    dependencies: Dict[str, int],
    published_at: float,
    generation: int,
    external_dependencies: Optional[Dict[str, int]] = None,
    bootstrap: bool = False,
    repair: bool = False,
    uid: Optional[str] = None,
    cdc: Optional[int] = None,
) -> Message:
    return Message(
        app=app,
        operations=operations,
        dependencies=dict(dependencies),
        published_at=published_at,
        generation=generation,
        bootstrap=bootstrap,
        repair=repair,
        external_dependencies=external_dependencies,
        uid=uid,
        cdc=cdc,
    )
