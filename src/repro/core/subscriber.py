"""The Synapse subscriber engine (§4.1, §4.2).

Workers take write messages off the service's durable queue, wait until
the message's dependencies are satisfied in the local version store
(per the subscription's delivery mode), apply the operations through the
local ORM (firing the application's active-model callbacks), increment
the dependency counters, and ack.

Weak mode never waits: it applies fresh updates and discards stale ones.
During bootstrap every message is handled with weak semantics (§3.2).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.message import Message
from repro.core.delivery import (
    CAUSAL,
    GLOBAL,
    GLOBAL_OBJECT,
    WEAK,
    check_subscription_mode,
    effective_dependencies,
)
from repro.core.dependencies import dep_name
from repro.errors import QueueDecommissioned, SubscriptionError
from repro.orm.associations import snake_case
from repro.orm.callbacks import run_callbacks
from repro.orm.model import pluralize
from repro.runtime.interleave import observe_point, yield_point
from repro.runtime.tracing import (
    STAGE_APPLY,
    STAGE_DEP_WAIT,
    activate_trace,
    trace_now,
)


@dataclass
class SubscriptionSpec:
    """One ``subscribe from:`` declaration on a model (§3.1)."""

    from_app: str
    model_name: str
    model_cls: type
    #: remote attribute -> local attribute (identity unless ``as:`` used).
    fields: Dict[str, str]
    mode: str
    observer: bool = False


def table_for_type(type_name: str) -> str:
    return pluralize(snake_case(type_name))


class SynapseSubscriber:
    """Per-service subscribing engine."""

    def __init__(self, service: Any) -> None:
        self.service = service
        #: (from_app, model_name) -> spec
        self.specs: Dict[Tuple[str, str], SubscriptionSpec] = {}
        #: per-publisher delivery mode (weakest spec wins).
        self.app_modes: Dict[str, str] = {}
        #: per-publisher generation last seen.
        self.generations: Dict[str, int] = {}
        self.bootstrapping = False
        registry = service.ecosystem.metrics
        self.metrics = registry
        self._processed = registry.counter(f"subscriber.{service.name}.processed")
        self._stale = registry.counter(f"subscriber.{service.name}.stale_discarded")
        self._duplicates = registry.counter(f"subscriber.{service.name}.duplicates")
        #: Objects healed by anti-entropy repair messages (targeted
        #: repair instead of a full re-bootstrap).
        self._repaired = registry.counter(f"repair.{service.name}.applied_objects")
        #: Time applied messages spent blocked on dependency counters.
        self.dep_wait = registry.histogram(f"subscriber.{service.name}.dep_wait")
        #: Time spent applying operations through the local ORM.
        self.apply_time = registry.histogram(f"subscriber.{service.name}.apply")
        self.queue = None
        # At-least-once deduplication: remember recently-applied message
        # uids so a redelivery after a missed ack is a no-op (applying
        # twice would double-increment the dependency counters).
        # Regression note: the deque/set pair used to be mutated without a
        # lock; N pool workers marking applied concurrently could pop the
        # same oldest uid or interleave deque/set updates, leaving the set
        # out of sync with the deque (phantom or lost dedup entries).
        self._applied_lock = threading.Lock()
        self._applied_uids: "deque[str]" = deque(maxlen=4096)
        self._applied_uid_set: set = set()
        # Per-object serialisation of the weak/repair fresh-or-discard
        # paths: the stale check, the ORM write and the counter
        # fast-forward must be one atomic step per object, or two
        # parallel workers can interleave check-then-apply and land an
        # older version on top of a newer one.
        self._object_locks: Dict[str, threading.Lock] = {}
        self._object_locks_guard = threading.Lock()

    # -- migrated ad-hoc counters (registry-backed, read-only views) -------

    @property
    def processed_messages(self) -> int:
        return self._processed.value

    @property
    def discarded_stale(self) -> int:
        return self._stale.value

    @property
    def duplicate_messages(self) -> int:
        return self._duplicates.value

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_subscription(self, spec: SubscriptionSpec) -> None:
        service = self.service
        published = service.broker.published_fields(spec.from_app, spec.model_name)
        if published is None:
            raise SubscriptionError(
                f"{service.name!r} subscribes to {spec.from_app}/{spec.model_name} "
                "but that publisher is not deployed (publishers deploy first, §4.3)"
            )
        unknown = sorted(set(spec.fields) - set(published))
        if unknown:
            raise SubscriptionError(
                f"{service.name!r} subscribes to unpublished attributes "
                f"{unknown} of {spec.from_app}/{spec.model_name} (§4.5)"
            )
        publisher_mode = service.broker.publisher_mode(spec.from_app) or CAUSAL
        check_subscription_mode(spec.mode, publisher_mode)
        current = self.app_modes.get(spec.from_app)
        if current is not None and current != spec.mode:
            # Delivery modes are chosen per publisher (§3.2): one app's
            # message stream cannot be half-causal, half-weak.
            raise SubscriptionError(
                f"{service.name!r} already subscribes to {spec.from_app!r} "
                f"in {current!r} mode; cannot mix with {spec.mode!r}"
            )
        self.specs[(spec.from_app, spec.model_name)] = spec
        self.app_modes[spec.from_app] = spec.mode
        self.queue = service.broker.bind(service.name, spec.from_app)

    def spec_for(self, app: str, types: List[str]) -> Optional[SubscriptionSpec]:
        """Match the most-derived subscribed type in the inheritance chain
        (polymorphic consumption, §4.1)."""
        for type_name in types:
            spec = self.specs.get((app, type_name))
            if spec is not None:
                return spec
        return None

    # ------------------------------------------------------------------
    # Synchronous draining (deterministic execution)
    # ------------------------------------------------------------------

    def drain(self, max_rounds: int = 1000) -> int:
        """Process queued messages until quiescent; returns the number
        processed. Messages whose dependencies cannot be satisfied stay
        queued (the §6.5 deadlock scenario when messages were lost)."""
        if self.queue is None:
            return 0
        processed = 0
        pending: List[Message] = []
        for _ in range(max_rounds):
            try:
                while True:
                    message = self.queue.pop()
                    if message is None:
                        break
                    pending.append(message)
            except QueueDecommissioned:
                # Messages popped in earlier rounds must not leak as
                # phantom in-flight deliveries: return them (a tolerated
                # no-op on the dead queue) before propagating.
                for message in pending:
                    self.queue.nack(message)
                raise
            progress = False
            remaining: List[Message] = []
            for message in sorted(pending, key=lambda m: m.seq):
                if self.process_message(message):
                    self.queue.ack(message)
                    processed += 1
                    progress = True
                else:
                    remaining.append(message)
            pending = remaining
            if not progress and not len(self.queue):
                break
        for message in pending:
            self.queue.nack(message)
        if self.bootstrapping and self.queue is not None and not len(self.queue):
            self.bootstrapping = False
        return processed

    def stuck_dependencies(self) -> Dict[str, Tuple[int, int]]:
        """Unsatisfied deps of queued messages (deadlock diagnostics)."""
        if self.queue is None:
            return {}
        out: Dict[str, Tuple[int, int]] = {}
        store = self.service.subscriber_version_store
        for message in self.queue.peek_all():
            required = {**message.dependencies, **message.external_dependencies}
            out.update(store.missing(required))
        return out

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------

    def process_message(self, message: Message, wait_timeout: float = 0.0) -> bool:
        """Apply one message if its dependencies allow; True when done."""
        if self._already_applied(message.uid):
            self._duplicates.increment()
            yield_point("dedup.duplicate", message=message)
            return True  # redelivered duplicate: safe to ack again
        if message.trace is None:
            return self._process(message, wait_timeout)
        # Traced message: make the trace the thread's current trace so an
        # over-threshold histogram observation anywhere in the apply path
        # captures this message's uid as its exemplar.
        with activate_trace(message.trace):
            return self._process(message, wait_timeout)

    def _process(self, message: Message, wait_timeout: float) -> bool:
        if message.repair:
            # Anti-entropy repair: never waits (the whole point is to
            # heal counter deficits that would make waiting eternal) and
            # bypasses the generation gate, which could itself be
            # deadlocked behind the very divergence being repaired.
            self._apply_repair(message)
            return True
        mode = self.app_modes.get(message.app, WEAK)
        if not self._generation_ready(message):
            return False

        store = self.service.subscriber_version_store
        if (self.bootstrapping or message.bootstrap) and mode != WEAK:
            # Bootstrap forces weak semantics (§3.2): apply without
            # waiting, but keep full counter accounting so the configured
            # mode resumes cleanly once in sync.
            self._apply_timed(message)
            store.apply(message.dependencies.keys())
            self._finish(message)
            return True

        object_deps = self._object_deps(message)
        if mode == WEAK:
            self._apply_weak(message, object_deps)
            self._finish(message)
            return True

        required = dict(
            effective_dependencies(message.dependencies, mode, set(object_deps))
        )
        required.update(message.external_dependencies)
        yield_point("dep.check", message=message, required=required)
        wait_start = trace_now()
        if wait_timeout > 0:
            if not store.wait_satisfied(required, wait_timeout):
                return False
        elif not store.satisfied(required):
            return False
        waited = trace_now() - wait_start
        self.dep_wait.record(waited)
        if message.trace is not None:
            message.trace.add(STAGE_DEP_WAIT, wait_start, waited)
        self._apply_timed(message)
        # Increment every own-app dependency; externals are never bumped.
        store.apply(message.dependencies.keys())
        self._finish(message)
        return True

    def _apply_timed(self, message: Message) -> None:
        """Apply all operations, feeding the apply histogram/span."""
        yield_point("apply", message=message)
        start = trace_now()
        self._apply_all(message)
        elapsed = trace_now() - start
        self.apply_time.record(elapsed)
        if message.trace is not None:
            message.trace.add(STAGE_APPLY, start, elapsed)

    def _finish(self, message: Message) -> None:
        """Common bookkeeping once a message has been applied."""
        self._mark_applied(message.uid)
        self._processed.increment()
        yield_point("msg.finished", message=message)
        monitor = getattr(self.service.ecosystem, "monitor", None)
        if monitor is not None:
            monitor.observe_applied(self.service.name, message)
        if message.trace is not None:
            self.service.ecosystem.tracer.record(message.trace)

    def _apply_all(self, message: Message) -> None:
        """Apply every operation of one message, atomically when the
        local engine supports transactions — a multi-write publisher
        transaction then lands as one subscriber transaction (§4.2)."""
        db = self.service.database
        if (
            len(message.operations) > 1
            and db is not None
            and getattr(db, "supports_transactions", False)
            and db.current_transaction() is None
        ):
            with db.begin():
                for operation in message.operations:
                    self._apply_operation(message.app, operation)
            return
        for operation in message.operations:
            self._apply_operation(message.app, operation)

    def force_apply(self, message: Message) -> None:
        """Give up waiting for a late/lost dependency and apply anyway
        (the configurable-timeout semantics recommended in §6.5: causal
        is timeout=∞, weak is timeout=0, this is anything in between)."""
        if self._already_applied(message.uid):
            return
        with activate_trace(message.trace):
            self._apply_timed(message)
            self.service.subscriber_version_store.apply(message.dependencies.keys())
            self._finish(message)

    def _already_applied(self, uid: str) -> bool:
        with self._applied_lock:
            return uid in self._applied_uid_set

    def _mark_applied(self, uid: str) -> None:
        with self._applied_lock:
            if uid in self._applied_uid_set:
                return
            if len(self._applied_uids) == self._applied_uids.maxlen:
                oldest = self._applied_uids.popleft()
                self._applied_uid_set.discard(oldest)
            self._applied_uids.append(uid)
            self._applied_uid_set.add(uid)

    def _object_lock(self, hashed_dep: str) -> threading.Lock:
        with self._object_locks_guard:
            lock = self._object_locks.get(hashed_dep)
            if lock is None:
                lock = threading.Lock()
                self._object_locks[hashed_dep] = lock
            return lock

    def _object_deps(self, message: Message) -> Dict[str, Dict[str, Any]]:
        """hashed object dep -> operation, for the written objects."""
        hasher = self.service.ecosystem.hasher
        out: Dict[str, Dict[str, Any]] = {}
        for operation in message.operations:
            table = table_for_type(operation["types"][0])
            hashed = hasher.hash(dep_name(message.app, table, operation["id"]))
            out[hashed] = operation
        return out

    def _apply_repair(self, message: Message) -> None:
        """Anti-entropy repair (``repro.repair``): per object, apply the
        publisher's current state unless the local replica is already
        ahead, then *fast-forward* the object's dependency counter to
        the carried version — unlike :meth:`_apply_weak`'s plain
        fast-forward-on-apply, the counter heals even for stale-skipped
        objects, so increments lost with dropped messages (§6.5) stop
        deadlocking causal delivery without a re-bootstrap."""
        start = trace_now()
        store = self.service.subscriber_version_store
        for hashed, operation in self._object_deps(message).items():
            version = message.dependencies.get(hashed, 0)
            with self._object_lock(hashed):
                if store.is_stale(hashed, version):
                    self._stale.increment()
                else:
                    observe_point(
                        "apply.repair", message=message, dep=hashed,
                        version=version,
                    )
                    self._apply_operation(message.app, operation)
                    self._repaired.increment()
                store.fast_forward(hashed, version)
        elapsed = trace_now() - start
        self.apply_time.record(elapsed)
        if message.trace is not None:
            message.trace.add(STAGE_APPLY, start, elapsed)
        self._finish(message)

    def _apply_weak(
        self, message: Message, object_deps: Dict[str, Dict[str, Any]]
    ) -> None:
        """Weak delivery: apply fresh operations, discard stale ones, and
        fast-forward per-object counters (§3.2, §4.2)."""
        store = self.service.subscriber_version_store
        for hashed, operation in object_deps.items():
            version = message.dependencies.get(hashed, 0)
            yield_point(
                "apply.weak.claim", message=message, dep=hashed, version=version
            )
            with self._object_lock(hashed):
                if store.is_stale(hashed, version):
                    self._stale.increment()
                    observe_point(
                        "apply.weak.discarded", message=message, dep=hashed,
                        version=version,
                    )
                    continue
                observe_point(
                    "apply.weak", message=message, dep=hashed, version=version
                )
                self._apply_operation(message.app, operation)
                store.fast_forward(hashed, version)

    def _generation_ready(self, message: Message) -> bool:
        """Handle publisher generation bumps (§4.4): older-generation
        messages must all be processed, then the app's dependency
        counters are flushed before the new generation flows."""
        current = self.generations.get(message.app, 1)
        if message.generation < current:
            return True  # stale generation: process (weakly harmless)
        if message.generation == current:
            return True
        if self.queue is not None:
            # The gate must see *in-flight* deliveries too: an older-
            # generation message a parallel worker has popped but not yet
            # acked is no longer queued, and flushing the app's counters
            # while it is mid-apply wipes state its apply is about to
            # read and bump. (The message under evaluation is itself in
            # the unacked table; its equal generation excludes it.)
            pending = self.queue.peek_all() + self.queue.peek_unacked()
            for queued in pending:
                if queued.app == message.app and queued.generation < message.generation:
                    yield_point(
                        "generation.deferred",
                        message=message,
                        blocked_on=queued,
                    )
                    return False
        yield_point(
            "generation.flush", app=message.app, generation=message.generation
        )
        self._flush_app_dependencies(message.app)
        self.generations[message.app] = message.generation
        return True

    def _flush_app_dependencies(self, app: str) -> None:
        store = self.service.subscriber_version_store
        if self.service.ecosystem.hasher.space is None:
            for shard in store.kv.shards:
                for key in shard.keys(f"s:{app}/"):
                    shard.delete(key)
            if self.app_modes.get(app) == GLOBAL:
                # The global-ordering dependency carries no app prefix,
                # so the prefix sweep above misses it. The bumped
                # publisher restarts global versions at 0; left at its
                # old high value, the counter makes every new-generation
                # message trivially "satisfied" and the total order
                # silently evaporates.
                hashed = self.service.ecosystem.hasher.hash(GLOBAL_OBJECT)
                for shard in store.kv.shards:
                    shard.delete(store._key(hashed))
        else:
            store.flush()  # hashed space: cannot tell apps apart

    # ------------------------------------------------------------------
    # Applying operations through the local ORM
    # ------------------------------------------------------------------

    def _apply_operation(self, app: str, operation: Dict[str, Any]) -> None:
        spec = self.spec_for(app, operation["types"])
        if spec is None:
            return  # this service does not subscribe to the model
        model_cls = spec.model_cls
        kind = operation["operation"]
        attrs = {
            local: operation["attributes"][remote]
            for remote, local in spec.fields.items()
            if remote in operation["attributes"]
        }
        service = self.service
        with service.applying_remote_scope(model_cls.__name__, operation["id"]), \
                model_cls._suspend_readonly_guard():
            if spec.observer:
                self._apply_to_observer(model_cls, kind, operation, attrs)
            elif kind == "delete":
                row = model_cls.__mapper__.find(operation["id"])
                if row is not None:
                    model_cls.from_row(row).destroy()
            else:
                instance = model_cls.find_or_initialize(operation["id"])
                for name, value in attrs.items():
                    setattr(instance, name, value)
                instance.save()

    @staticmethod
    def _apply_to_observer(
        model_cls: type, kind: str, operation: Dict[str, Any], attrs: Dict[str, Any]
    ) -> None:
        """Observers are never persisted: hydrate and fire callbacks."""
        instance = model_cls.__new__(model_cls)
        instance._attributes = {
            name: f.default_value() for name, f in model_cls._fields.items()
        }
        instance._changed = set()
        instance._new_record = kind == "create"
        instance._attributes["id"] = operation["id"]
        for name, value in attrs.items():
            setattr(instance, name, value)
        if kind == "create":
            run_callbacks(instance, "before_create")
            instance._new_record = False
            run_callbacks(instance, "after_create")
        elif kind == "update":
            run_callbacks(instance, "before_update")
            run_callbacks(instance, "after_update")
        elif kind == "delete":
            run_callbacks(instance, "before_destroy")
            run_callbacks(instance, "after_destroy")
