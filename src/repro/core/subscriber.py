"""The Synapse subscriber engine (§4.1, §4.2).

Workers take write messages off the service's durable queue, wait until
the message's dependencies are satisfied in the local version store
(per the subscription's delivery mode), apply the operations through the
local ORM (firing the application's active-model callbacks), increment
the dependency counters, and ack.

Weak mode never waits: it applies fresh updates and discards stale ones.
During bootstrap every message is handled with weak semantics (§3.2).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.message import Message
from repro.core.delivery import (
    CAUSAL,
    GLOBAL,
    GLOBAL_OBJECT,
    WEAK,
    check_subscription_mode,
    effective_dependencies,
)
from repro.core.dependencies import dep_name
from repro.errors import QueueDecommissioned, SubscriptionError
from repro.orm.associations import snake_case
from repro.orm.callbacks import run_callbacks
from repro.orm.model import pluralize
from repro.runtime.interleave import observe_point, yield_point
from repro.runtime.tracing import (
    STAGE_APPLY,
    STAGE_BATCH,
    STAGE_DEP_WAIT,
    activate_trace,
    trace_now,
)


@dataclass
class SubscriptionSpec:
    """One ``subscribe from:`` declaration on a model (§3.1)."""

    from_app: str
    model_name: str
    model_cls: type
    #: remote attribute -> local attribute (identity unless ``as:`` used).
    fields: Dict[str, str]
    mode: str
    observer: bool = False


def table_for_type(type_name: str) -> str:
    return pluralize(snake_case(type_name))


class SynapseSubscriber:
    """Per-service subscribing engine."""

    def __init__(self, service: Any) -> None:
        self.service = service
        #: (from_app, model_name) -> spec
        self.specs: Dict[Tuple[str, str], SubscriptionSpec] = {}
        #: per-publisher delivery mode (weakest spec wins).
        self.app_modes: Dict[str, str] = {}
        #: per-publisher generation last seen.
        self.generations: Dict[str, int] = {}
        self.bootstrapping = False
        registry = service.ecosystem.metrics
        self.metrics = registry
        self._processed = registry.counter(f"subscriber.{service.name}.processed")
        self._stale = registry.counter(f"subscriber.{service.name}.stale_discarded")
        self._duplicates = registry.counter(f"subscriber.{service.name}.duplicates")
        #: Objects healed by anti-entropy repair messages (targeted
        #: repair instead of a full re-bootstrap).
        self._repaired = registry.counter(f"repair.{service.name}.applied_objects")
        #: Rollback-recovery redo writes that failed a second time; the
        #: divergence they leave behind is anti-entropy's to heal.
        self._redo_failed = registry.counter(f"subscriber.{service.name}.redo_failed")
        #: Time applied messages spent blocked on dependency counters.
        self.dep_wait = registry.histogram(f"subscriber.{service.name}.dep_wait")
        #: Time spent applying operations through the local ORM.
        self.apply_time = registry.histogram(f"subscriber.{service.name}.apply")
        self.queue = None
        # At-least-once deduplication: remember recently-applied message
        # uids so a redelivery after a missed ack is a no-op (applying
        # twice would double-increment the dependency counters).
        # Regression note: the deque/set pair used to be mutated without a
        # lock; N pool workers marking applied concurrently could pop the
        # same oldest uid or interleave deque/set updates, leaving the set
        # out of sync with the deque (phantom or lost dedup entries).
        self._applied_lock = threading.Lock()
        self._applied_uids: "deque[str]" = deque(maxlen=4096)
        self._applied_uid_set: set = set()
        # Per-object serialisation of the weak/repair fresh-or-discard
        # paths: the stale check, the ORM write and the counter
        # fast-forward must be one atomic step per object, or two
        # parallel workers can interleave check-then-apply and land an
        # older version on top of a newer one.
        self._object_locks: Dict[str, threading.Lock] = {}
        self._object_locks_guard = threading.Lock()

    # -- migrated ad-hoc counters (registry-backed, read-only views) -------

    @property
    def processed_messages(self) -> int:
        return self._processed.value

    @property
    def discarded_stale(self) -> int:
        return self._stale.value

    @property
    def duplicate_messages(self) -> int:
        return self._duplicates.value

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_subscription(self, spec: SubscriptionSpec) -> None:
        service = self.service
        published = service.broker.published_fields(spec.from_app, spec.model_name)
        if published is None:
            raise SubscriptionError(
                f"{service.name!r} subscribes to {spec.from_app}/{spec.model_name} "
                "but that publisher is not deployed (publishers deploy first, §4.3)"
            )
        unknown = sorted(set(spec.fields) - set(published))
        if unknown:
            raise SubscriptionError(
                f"{service.name!r} subscribes to unpublished attributes "
                f"{unknown} of {spec.from_app}/{spec.model_name} (§4.5)"
            )
        publisher_mode = service.broker.publisher_mode(spec.from_app) or CAUSAL
        check_subscription_mode(spec.mode, publisher_mode)
        current = self.app_modes.get(spec.from_app)
        if current is not None and current != spec.mode:
            # Delivery modes are chosen per publisher (§3.2): one app's
            # message stream cannot be half-causal, half-weak.
            raise SubscriptionError(
                f"{service.name!r} already subscribes to {spec.from_app!r} "
                f"in {current!r} mode; cannot mix with {spec.mode!r}"
            )
        self.specs[(spec.from_app, spec.model_name)] = spec
        self.app_modes[spec.from_app] = spec.mode
        self.queue = service.broker.bind(service.name, spec.from_app)

    def spec_for(self, app: str, types: List[str]) -> Optional[SubscriptionSpec]:
        """Match the most-derived subscribed type in the inheritance chain
        (polymorphic consumption, §4.1)."""
        for type_name in types:
            spec = self.specs.get((app, type_name))
            if spec is not None:
                return spec
        return None

    # ------------------------------------------------------------------
    # Synchronous draining (deterministic execution)
    # ------------------------------------------------------------------

    def _flow_controller(self):
        """The ecosystem's FlowController when batched apply is on."""
        controller = getattr(self.service.ecosystem, "flow", None)
        if controller is not None and controller.config.batch_apply:
            return controller
        return None

    def drain(self, max_rounds: int = 1000) -> int:
        """Process queued messages until quiescent; returns the number
        processed. Messages whose dependencies cannot be satisfied stay
        queued (the §6.5 deadlock scenario when messages were lost)."""
        if self.queue is None:
            return 0
        controller = self._flow_controller()
        if controller is not None:
            return self._drain_batched(max_rounds, controller)
        processed = 0
        pending: List[Message] = []
        for _ in range(max_rounds):
            try:
                while True:
                    message = self.queue.pop()
                    if message is None:
                        break
                    pending.append(message)
            except QueueDecommissioned:
                # Messages popped in earlier rounds must not leak as
                # phantom in-flight deliveries: return them (a tolerated
                # no-op on the dead queue) before propagating.
                for message in pending:
                    self.queue.nack(message)
                raise
            progress = False
            remaining: List[Message] = []
            for message in sorted(pending, key=lambda m: m.seq):
                if self.process_message(message):
                    self.queue.ack(message)
                    processed += 1
                    progress = True
                else:
                    remaining.append(message)
            pending = remaining
            if not progress and not len(self.queue):
                break
        for message in pending:
            self.queue.nack(message)
        if self.bootstrapping and self.queue is not None and not len(self.queue):
            self.bootstrapping = False
        return processed

    def _drain_batched(self, max_rounds: int, controller) -> int:
        """Drain via ``pop_many`` + :meth:`process_batch` — the same
        quiescence semantics as :meth:`drain`, with the per-message
        pop/verify/apply amortised across group-committed batches."""
        batch_max = controller.config.batch_max
        flow = self.queue.flow
        processed = 0
        pending: List[Message] = []
        for _ in range(max_rounds):
            try:
                while True:
                    batch = self.queue.pop_many(batch_max)
                    if not batch:
                        break
                    pending.extend(batch)
            except QueueDecommissioned:
                for message in pending:
                    self.queue.nack(message)
                raise
            progress = False
            pending.sort(key=lambda m: m.seq)
            remaining: List[Message] = []
            for start in range(0, len(pending), batch_max):
                chunk = pending[start:start + batch_max]
                done, retry, _errors = self.process_batch(chunk)
                for message in done:
                    self.queue.ack(message)
                    processed += 1
                    progress = True
                remaining.extend(retry)
                if done and flow is not None:
                    flow.batch_size.record(len(done))
            pending = remaining
            if not progress and not len(self.queue):
                break
        for message in pending:
            self.queue.nack(message)
        if self.bootstrapping and self.queue is not None and not len(self.queue):
            self.bootstrapping = False
        return processed

    def stuck_dependencies(self) -> Dict[str, Tuple[int, int]]:
        """Unsatisfied deps of queued messages (deadlock diagnostics)."""
        if self.queue is None:
            return {}
        out: Dict[str, Tuple[int, int]] = {}
        store = self.service.subscriber_version_store
        for message in self.queue.peek_all():
            required = {**message.dependencies, **message.external_dependencies}
            out.update(store.missing(required))
        return out

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------

    def process_message(self, message: Message, wait_timeout: float = 0.0) -> bool:
        """Apply one message if its dependencies allow; True when done."""
        if self._already_applied(message.uid):
            self._duplicates.increment()
            yield_point("dedup.duplicate", message=message)
            return True  # redelivered duplicate: safe to ack again
        if message.trace is None:
            return self._process(message, wait_timeout)
        # Traced message: make the trace the thread's current trace so an
        # over-threshold histogram observation anywhere in the apply path
        # captures this message's uid as its exemplar.
        with activate_trace(message.trace):
            return self._process(message, wait_timeout)

    def _process(self, message: Message, wait_timeout: float) -> bool:
        if message.repair:
            # Anti-entropy repair: never waits (the whole point is to
            # heal counter deficits that would make waiting eternal) and
            # bypasses the generation gate, which could itself be
            # deadlocked behind the very divergence being repaired.
            self._apply_repair(message)
            return True
        mode = self.app_modes.get(message.app, WEAK)
        if not self._generation_ready(message):
            return False

        store = self.service.subscriber_version_store
        if (self.bootstrapping or message.bootstrap) and mode != WEAK:
            # Bootstrap forces weak semantics (§3.2): apply without
            # waiting, but keep full counter accounting so the configured
            # mode resumes cleanly once in sync.
            self._apply_timed(message)
            store.apply_counts(message.counter_increments())
            self._finish(message)
            return True

        object_deps = self._object_deps(message)
        if mode == WEAK:
            self._apply_weak(message, object_deps)
            self._finish(message)
            return True

        required = dict(
            effective_dependencies(message.dependencies, mode, set(object_deps))
        )
        required.update(message.external_dependencies)
        yield_point("dep.check", message=message, required=required)
        wait_start = trace_now()
        if wait_timeout > 0:
            if not store.wait_satisfied(required, wait_timeout):
                return False
        elif not store.satisfied(required):
            return False
        waited = trace_now() - wait_start
        self.dep_wait.record(waited)
        if message.trace is not None:
            message.trace.add(STAGE_DEP_WAIT, wait_start, waited)
        self._apply_timed(message)
        # Increment every own-app dependency; externals are never bumped.
        store.apply_counts(message.counter_increments())
        self._finish(message)
        return True

    # ------------------------------------------------------------------
    # Batched processing (flow control)
    # ------------------------------------------------------------------

    def process_batch(
        self, messages: List[Message], wait_timeout: float = 0.0
    ) -> Tuple[List[Message], List[Message], int]:
        """Verify and apply a ``pop_many`` batch; returns
        ``(done, retry, errors)`` — ``done`` should be acked, ``retry``
        nacked (or given up on), ``errors`` counts apply failures.

        Dependencies are verified once for the whole batch: a message
        is eligible when the store *plus the bumps earlier batch
        members will make* satisfies it, so in-batch causal chains
        (e.g. consecutive writes by the same session user) land
        together. All eligible messages then apply in one engine
        transaction (group commit) when the local engine supports
        transactions; inside it, interleave events are record-only —
        the batch is one atomic step, and a suspended scheduler step
        while holding the engine mutex would deadlock the conformance
        harness.
        """
        done: List[Message] = []
        retry: List[Message] = []
        eligible: List[Tuple[Message, str]] = []
        store = self.service.subscriber_version_store
        pending_bumps: Dict[str, int] = {}

        def admit(message: Message, kind: str) -> None:
            eligible.append((message, kind))
            if kind != "weak":
                for dep, amount in message.counter_increments().items():
                    pending_bumps[dep] = pending_bumps.get(dep, 0) + amount

        def required_of(message: Message, mode: str) -> Dict[str, int]:
            required = dict(
                effective_dependencies(
                    message.dependencies, mode, set(self._object_deps(message))
                )
            )
            required.update(message.external_dependencies)
            return required

        for message in sorted(messages, key=lambda m: m.seq):
            if self._already_applied(message.uid):
                self._duplicates.increment()
                yield_point("dedup.duplicate", message=message)
                done.append(message)
                continue
            if message.repair:
                with activate_trace(message.trace):
                    self._apply_repair(message)
                done.append(message)
                continue
            if not self._generation_ready(message):
                retry.append(message)
                continue
            mode = self.app_modes.get(message.app, WEAK)
            if (self.bootstrapping or message.bootstrap) and mode != WEAK:
                admit(message, "bootstrap")
                continue
            if mode == WEAK:
                admit(message, "weak")
                continue
            required = required_of(message, mode)
            yield_point("dep.check", message=message, required=required)
            if all(
                store.ops(dep) + pending_bumps.get(dep, 0) >= version
                for dep, version in required.items()
            ):
                admit(message, "ordered")
            else:
                retry.append(message)

        if not eligible and retry and wait_timeout > 0:
            # Nothing applicable right now: block on the head retry's
            # requirements like the single-message path would, instead
            # of spinning nack/pop rounds that inflate delivery counts
            # into premature give-ups.
            first = retry[0]
            mode = self.app_modes.get(first.app, WEAK)
            if mode != WEAK:
                required = required_of(first, mode)
                wait_start = trace_now()
                if store.wait_satisfied(required, wait_timeout):
                    waited = trace_now() - wait_start
                    self.dep_wait.record(waited)
                    if first.trace is not None:
                        first.trace.add(STAGE_DEP_WAIT, wait_start, waited)
                    retry.pop(0)
                    admit(first, "ordered")

        if not eligible:
            return done, retry, 0

        batch = [message for message, _ in eligible]
        db = self.service.database
        use_tx = (
            len(batch) > 1
            and db is not None
            and getattr(db, "supports_transactions", False)
            and db.current_transaction() is None
        )
        yield_point("batch.apply", size=len(batch), group_commit=use_tx)
        batch_start = trace_now()
        completed: List[Tuple[Message, Dict[str, Any]]] = []
        errors = 0
        views = self.service.views
        if use_tx:
            # Views buffer the whole group commit and fold once after it
            # lands, so each derived aggregate updates — and each cache
            # key invalidates — once per batch, never mid-transaction.
            if views is not None:
                views.begin_batch()
            try:
                with db.begin():
                    for message, kind in eligible:
                        completed.append(
                            (message, self._apply_in_batch(message, kind))
                        )
            except Exception:
                # The engine rolled back: drop the buffered transitions
                # before redo re-lands the writes (redo re-enters
                # on_applied with fresh post-rollback row states).
                if views is not None:
                    views.abort_batch()
                errors = 1
                landed = {id(message) for message, _ in completed}
                retry.extend(m for m in batch if id(m) not in landed)
                self._redo_after_rollback(completed)
            else:
                if views is not None:
                    views.commit_batch()
        else:
            for message, kind in eligible:
                try:
                    completed.append(
                        (message, self._apply_in_batch(message, kind))
                    )
                except Exception:
                    errors += 1
                    retry.append(message)
        elapsed = trace_now() - batch_start
        for message, _ in completed:
            done.append(message)
            if message.trace is not None:
                message.trace.add(STAGE_BATCH, batch_start, elapsed)
        yield_point("batch.applied", size=len(completed), retried=len(retry))
        return done, retry, errors

    def _apply_in_batch(
        self, message: Message, kind: str
    ) -> Dict[str, Dict[str, Any]]:
        """Apply one eligible message inside the batch (record-only
        events: the group-commit transaction may hold the engine
        mutex). Counter bumps interleave per message, so in-batch
        dependents see their deps land before their own apply event.
        Returns {hashed object dep: operation} for the engine writes
        that actually ran — the redo set for rollback recovery."""
        store = self.service.subscriber_version_store
        object_deps = self._object_deps(message)
        with activate_trace(message.trace):
            if kind == "weak":
                applied = self._apply_weak(message, object_deps, record_only=True)
                self._finish(message, record_only=True)
                return {hashed: object_deps[hashed] for hashed in applied}
            self._apply_timed(message, record_only=True)
            store.apply_counts(message.counter_increments(), record_only=True)
            self._finish(message, record_only=True)
            return object_deps

    def _redo_after_rollback(
        self, completed: List[Tuple[Message, Dict[str, Dict[str, Any]]]]
    ) -> None:
        """A mid-batch engine fault rolled back the whole group-commit
        transaction, but the completed prefix already bumped its
        counters and entered the dedup window — re-processing would
        dedup-skip it and its engine writes would be lost. Redo just
        those writes outside any transaction: applies are idempotent
        upserts, and the per-object freshness check skips objects a
        concurrent fresher apply has already moved past. The ceiling
        must budget for *every* completed sibling's bumps on the key —
        a later batch member's session read-dep bumps the same counter,
        and counting only the message's own increments would mistake
        those sibling bumps for a concurrent fresher apply and skip a
        redo whose write is genuinely lost."""
        batch_bumps: Dict[str, int] = {}
        for message, _ in completed:
            for dep, amount in message.counter_increments().items():
                batch_bumps[dep] = batch_bumps.get(dep, 0) + amount
        for message, redo in completed:
            increments = message.counter_increments()
            for hashed, operation in redo.items():
                version = message.dependencies.get(hashed, 0)
                ceiling = version + batch_bumps.get(
                    hashed, increments.get(hashed, 1)
                )
                try:
                    with self._object_lock(hashed):
                        if self.service.subscriber_version_store.ops(hashed) > ceiling:
                            continue
                        self._apply_operation(message.app, operation)
                except Exception:
                    # A redo that fails again must not abandon the
                    # remaining redos, and above all must not escape to
                    # the worker loop: every completed message is
                    # already _finish'ed (deduped, counters bumped), so
                    # a batch-wide nack would have its redelivery
                    # dedup-skip while the rolled-back engine write —
                    # and every redo after this one — is silently lost.
                    # Count it and let anti-entropy repair the object.
                    self._redo_failed.increment()

    def _apply_timed(self, message: Message, record_only: bool = False) -> None:
        """Apply all operations, feeding the apply histogram/span.

        ``record_only=True`` (batched apply inside the group-commit
        transaction) downgrades the interleave event to observe-only:
        the caller holds the engine mutex, where a suspended scheduler
        step would deadlock the conformance harness.
        """
        emit = observe_point if record_only else yield_point
        emit("apply", message=message)
        start = trace_now()
        self._apply_all(message)
        elapsed = trace_now() - start
        self.apply_time.record(elapsed)
        if message.trace is not None:
            message.trace.add(STAGE_APPLY, start, elapsed)

    def _finish(self, message: Message, record_only: bool = False) -> None:
        """Common bookkeeping once a message has been applied."""
        self._mark_applied(message.uid)
        self._processed.increment()
        durability = getattr(self.service.ecosystem, "durability", None)
        if durability is not None:
            durability.log_apply(self.service.name, message)
        emit = observe_point if record_only else yield_point
        emit("msg.finished", message=message)
        monitor = getattr(self.service.ecosystem, "monitor", None)
        if monitor is not None:
            monitor.observe_applied(self.service.name, message)
        if message.trace is not None:
            self.service.ecosystem.tracer.record(message.trace)

    def _apply_all(self, message: Message) -> None:
        """Apply every operation of one message, atomically when the
        local engine supports transactions — a multi-write publisher
        transaction then lands as one subscriber transaction (§4.2)."""
        db = self.service.database
        if (
            len(message.operations) > 1
            and db is not None
            and getattr(db, "supports_transactions", False)
            and db.current_transaction() is None
        ):
            views = self.service.views
            if views is not None:
                views.begin_batch()
            try:
                with db.begin():
                    for operation in message.operations:
                        self._apply_operation(message.app, operation)
            except Exception:
                if views is not None:
                    views.abort_batch()
                raise
            if views is not None:
                views.commit_batch()
            return
        for operation in message.operations:
            self._apply_operation(message.app, operation)

    def force_apply(self, message: Message) -> None:
        """Give up waiting for a late/lost dependency and apply anyway
        (the configurable-timeout semantics recommended in §6.5: causal
        is timeout=∞, weak is timeout=0, this is anything in between)."""
        if self._already_applied(message.uid):
            return
        with activate_trace(message.trace):
            self._apply_timed(message)
            self.service.subscriber_version_store.apply_counts(
                message.counter_increments()
            )
            self._finish(message)

    def _already_applied(self, uid: str) -> bool:
        with self._applied_lock:
            return uid in self._applied_uid_set

    def _mark_applied(self, uid: str) -> None:
        with self._applied_lock:
            if uid in self._applied_uid_set:
                return
            if len(self._applied_uids) == self._applied_uids.maxlen:
                oldest = self._applied_uids.popleft()
                self._applied_uid_set.discard(oldest)
            self._applied_uids.append(uid)
            self._applied_uid_set.add(uid)

    def _object_lock(self, hashed_dep: str) -> threading.Lock:
        with self._object_locks_guard:
            lock = self._object_locks.get(hashed_dep)
            if lock is None:
                lock = threading.Lock()
                self._object_locks[hashed_dep] = lock
            return lock

    def _object_deps(self, message: Message) -> Dict[str, Dict[str, Any]]:
        """hashed object dep -> operation, for the written objects."""
        hasher = self.service.ecosystem.hasher
        out: Dict[str, Dict[str, Any]] = {}
        for operation in message.operations:
            table = table_for_type(operation["types"][0])
            hashed = hasher.hash(dep_name(message.app, table, operation["id"]))
            out[hashed] = operation
        return out

    def _apply_repair(self, message: Message) -> None:
        """Anti-entropy repair (``repro.repair``): per object, apply the
        publisher's current state unless the local replica is already
        ahead, then *fast-forward* the object's dependency counter to
        the carried version — unlike :meth:`_apply_weak`'s plain
        fast-forward-on-apply, the counter heals even for stale-skipped
        objects, so increments lost with dropped messages (§6.5) stop
        deadlocking causal delivery without a re-bootstrap."""
        start = trace_now()
        store = self.service.subscriber_version_store
        for hashed, operation in self._object_deps(message).items():
            version = message.dependencies.get(hashed, 0)
            with self._object_lock(hashed):
                if store.is_stale(hashed, version):
                    self._stale.increment()
                else:
                    observe_point(
                        "apply.repair", message=message, dep=hashed,
                        version=version,
                    )
                    self._apply_operation(message.app, operation)
                    self._repaired.increment()
                store.fast_forward(hashed, version)
        elapsed = trace_now() - start
        self.apply_time.record(elapsed)
        if message.trace is not None:
            message.trace.add(STAGE_APPLY, start, elapsed)
        self._finish(message)

    def _apply_weak(
        self,
        message: Message,
        object_deps: Dict[str, Dict[str, Any]],
        record_only: bool = False,
    ) -> List[str]:
        """Weak delivery: apply fresh operations, discard stale ones, and
        fast-forward per-object counters (§3.2, §4.2). Returns the
        hashed deps actually applied (the batched path needs them to
        redo engine writes after a mid-batch rollback)."""
        store = self.service.subscriber_version_store
        claim = observe_point if record_only else yield_point
        increments = message.counter_increments()
        applied: List[str] = []
        for hashed, operation in object_deps.items():
            version = message.dependencies.get(hashed, 0)
            claim(
                "apply.weak.claim", message=message, dep=hashed, version=version
            )
            with self._object_lock(hashed):
                if store.is_stale(hashed, version):
                    self._stale.increment()
                    observe_point(
                        "apply.weak.discarded", message=message, dep=hashed,
                        version=version,
                    )
                    continue
                observe_point(
                    "apply.weak", message=message, dep=hashed, version=version
                )
                self._apply_operation(message.app, operation)
                # A coalesced message stands in for several publisher
                # bumps: fast-forward past all of them, or the lag audit
                # would report a phantom per-merge counter deficit.
                store.fast_forward(
                    hashed, version + max(0, increments.get(hashed, 1) - 1)
                )
                applied.append(hashed)
        return applied

    def _generation_ready(self, message: Message) -> bool:
        """Handle publisher generation bumps (§4.4): older-generation
        messages must all be processed, then the app's dependency
        counters are flushed before the new generation flows."""
        current = self.generations.get(message.app, 1)
        if message.generation < current:
            return True  # stale generation: process (weakly harmless)
        if message.generation == current:
            return True
        if self.queue is not None:
            # The gate must see *in-flight* deliveries too: an older-
            # generation message a parallel worker has popped but not yet
            # acked is no longer queued, and flushing the app's counters
            # while it is mid-apply wipes state its apply is about to
            # read and bump. (The message under evaluation is itself in
            # the unacked table; its equal generation excludes it.)
            pending = self.queue.peek_all() + self.queue.peek_unacked()
            for queued in pending:
                if queued.app == message.app and queued.generation < message.generation:
                    yield_point(
                        "generation.deferred",
                        message=message,
                        blocked_on=queued,
                    )
                    return False
        yield_point(
            "generation.flush", app=message.app, generation=message.generation
        )
        self._flush_app_dependencies(message.app)
        self.generations[message.app] = message.generation
        durability = getattr(self.service.ecosystem, "durability", None)
        if durability is not None:
            durability.log_gen(
                self.service.name, message.app, message.generation
            )
        return True

    def _flush_app_dependencies(self, app: str) -> None:
        store = self.service.subscriber_version_store
        if self.service.ecosystem.hasher.space is None:
            for shard in store.kv.shards:
                for key in shard.keys(f"s:{app}/"):
                    shard.delete(key)
            if self.app_modes.get(app) == GLOBAL:
                # The global-ordering dependency carries no app prefix,
                # so the prefix sweep above misses it. The bumped
                # publisher restarts global versions at 0; left at its
                # old high value, the counter makes every new-generation
                # message trivially "satisfied" and the total order
                # silently evaporates.
                hashed = self.service.ecosystem.hasher.hash(GLOBAL_OBJECT)
                for shard in store.kv.shards:
                    shard.delete(store._key(hashed))
        else:
            store.flush()  # hashed space: cannot tell apps apart

    # ------------------------------------------------------------------
    # Applying operations through the local ORM
    # ------------------------------------------------------------------

    def _apply_operation(self, app: str, operation: Dict[str, Any]) -> None:
        spec = self.spec_for(app, operation["types"])
        if spec is None:
            return  # this service does not subscribe to the model
        model_cls = spec.model_cls
        kind = operation["operation"]
        attrs = {
            local: operation["attributes"][remote]
            for remote, local in spec.fields.items()
            if remote in operation["attributes"]
        }
        service = self.service
        # Read-path hook (docs/read_path.md): views need the row state
        # around the write — raw mapper reads, so neither capture fires
        # callbacks or read-dependency tracking. The pre-write state is
        # read only when an aggregate actually depends on this model.
        views = service.views
        track = (
            views is not None
            and not spec.observer
            and model_cls.__mapper__ is not None
            and model_cls.__mapper__.db is not None
        )
        old_row = None
        if track and views.needs_old_row(model_cls.__name__):
            old_row = model_cls.__mapper__._do_find(operation["id"])
        with service.applying_remote_scope(model_cls.__name__, operation["id"]), \
                model_cls._suspend_readonly_guard():
            if spec.observer:
                self._apply_to_observer(model_cls, kind, operation, attrs)
            elif kind == "delete":
                row = model_cls.__mapper__.find(operation["id"])
                if row is not None:
                    model_cls.from_row(row).destroy()
            else:
                instance = model_cls.find_or_initialize(operation["id"])
                for name, value in attrs.items():
                    setattr(instance, name, value)
                instance.save()
        if track:
            new_row = model_cls.__mapper__._do_find(operation["id"])
            views.on_applied(
                model_cls.__name__, operation["id"], old_row, new_row
            )

    @staticmethod
    def _apply_to_observer(
        model_cls: type, kind: str, operation: Dict[str, Any], attrs: Dict[str, Any]
    ) -> None:
        """Observers are never persisted: hydrate and fire callbacks."""
        instance = model_cls.__new__(model_cls)
        instance._attributes = {
            name: f.default_value() for name, f in model_cls._fields.items()
        }
        instance._changed = set()
        instance._new_record = kind == "create"
        instance._attributes["id"] = operation["id"]
        for name, value in attrs.items():
            setattr(instance, name, value)
        if kind == "create":
            run_callbacks(instance, "before_create")
            instance._new_record = False
            run_callbacks(instance, "after_create")
        elif kind == "update":
            run_callbacks(instance, "before_update")
            run_callbacks(instance, "after_update")
        elif kind == "delete":
            run_callbacks(instance, "before_destroy")
            run_callbacks(instance, "after_destroy")
