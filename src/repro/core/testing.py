"""Synapse's testing framework (§4.5).

Publishers export *factories* (sample data per published model). Sub-
scriber test suites replay those factories as emulated wire payloads —
exactly what production would deliver — without running the publisher
application. Static checks for unpublished attributes already happen at
declaration time (``SubscriptionError``); :func:`check_ecosystem` re-runs
them across a whole ecosystem and reports every problem at once.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List

from repro.core.marshal import build_message, marshal_operation
from repro.errors import SynapseError


class ModelFactory:
    """Sample-data factory for one published model (factory_girl-style).

    ``defaults`` may contain callables taking the sequence number.
    """

    def __init__(self, model_cls: type, defaults: Dict[str, Any]) -> None:
        self.model_cls = model_cls
        self.defaults = defaults
        self._seq = itertools.count(1)

    def build_attributes(self, **overrides: Any) -> Dict[str, Any]:
        n = next(self._seq)
        attrs: Dict[str, Any] = {}
        for name, value in self.defaults.items():
            attrs[name] = value(n) if callable(value) else value
        attrs.update(overrides)
        attrs.setdefault("id", n)
        return attrs


class PublisherFactoryFile:
    """The per-publisher factory file shipped to subscriber developers."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self.factories: Dict[str, ModelFactory] = {}

    def register(self, model_cls: type, **defaults: Any) -> ModelFactory:
        if self.service.published_fields_for(model_cls) is None:
            raise SynapseError(
                f"{model_cls.__name__} is not published by {self.service.name!r}"
            )
        factory = ModelFactory(model_cls, defaults)
        self.factories[model_cls.__name__] = factory
        return factory

    def emulate_payload(
        self, model_name: str, kind: str = "create", **overrides: Any
    ):
        """Build the exact wire message production would deliver for a
        factory-made object (used by subscriber integration tests)."""
        factory = self.factories.get(model_name)
        if factory is None:
            raise SynapseError(f"no factory for {model_name!r}")
        attrs = factory.build_attributes(**overrides)
        fields = self.service.published_fields_for(factory.model_cls)
        operation = marshal_operation(kind, factory.model_cls, attrs, fields)
        # Emulated payloads carry no dependency constraints so subscriber
        # tests run them standalone.
        return build_message(
            app=self.service.name,
            operations=[operation],
            dependencies={},
            published_at=self.service.ecosystem.clock.now(),
            generation=self.service.current_generation(),
        )

    def deliver(self, subscriber_service: Any, model_name: str,
                kind: str = "create", **overrides: Any) -> None:
        """Inject an emulated payload straight into a subscriber."""
        message = self.emulate_payload(model_name, kind, **overrides)
        subscriber_service.subscriber.process_message(message)


def check_ecosystem(ecosystem: Any) -> List[str]:
    """Static validation sweep: every subscription against every
    publication. Returns human-readable problem strings (empty = OK)."""
    problems: List[str] = []
    broker = ecosystem.broker
    for service in ecosystem.local_services():
        for (from_app, model_name), spec in service.subscriber.specs.items():
            published = broker.published_fields(from_app, model_name)
            if published is None:
                problems.append(
                    f"{service.name}: subscribes to unknown "
                    f"{from_app}/{model_name}"
                )
                continue
            missing = sorted(set(spec.fields) - set(published))
            if missing:
                problems.append(
                    f"{service.name}: attributes {missing} of "
                    f"{from_app}/{model_name} are not published"
                )
            if not ecosystem.control.known(from_app):
                problems.append(
                    f"{service.name}: publisher {from_app!r} is not running"
                )
    return problems
