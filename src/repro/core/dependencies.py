"""Dependency naming and controller/session scopes (§4.2).

Dependencies are named ``app/table/id/N`` (the format visible in the
Fig 6b message sample). The publisher tracks read dependencies
implicitly within the scope of a controller (one HTTP request or one
background job); writes within a controller are chained, and controllers
sharing a user session serialise through the user object.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Set


def dep_name(app: str, table: str, row_id: Any) -> str:
    return f"{app}/{table}/id/{row_id}"


class ControllerContext:
    """One controller (or background-job) execution scope.

    Collects implicit read dependencies from intercepted queries, chains
    successive writes (the previous update's first write dependency
    becomes a read dependency of the next), and carries the user object
    whose dependency serialises the session.
    """

    def __init__(self, service: Any, user: Optional[Any] = None) -> None:
        self.service = service
        self.user = user
        #: Implicit read deps: local (own-app) dependency names.
        self.read_deps: List[str] = []
        #: External deps from reading subscribed models: hashed name -> version.
        self.external_deps: Dict[str, int] = {}
        #: Chaining: first write dep of the previous update in this scope.
        self.prev_write_dep: Optional[str] = None
        #: Explicit write deps for the next update (add_write_deps API).
        self.extra_write_deps: List[str] = []
        self._seen_reads: Set[str] = set()

    @property
    def user_dep(self) -> Optional[str]:
        if self.user is None or self.user.id is None:
            return None
        return dep_name(
            self.service.name, type(self.user).table_name(), self.user.id
        )

    # -- implicit tracking (called by the publisher interceptor) -----------

    def record_local_read(self, dep: str) -> None:
        if dep not in self._seen_reads:
            self._seen_reads.add(dep)
            self.read_deps.append(dep)

    def record_external_read(self, hashed_dep: str, version: int) -> None:
        current = self.external_deps.get(hashed_dep, -1)
        if version > current:
            self.external_deps[hashed_dep] = version

    def note_write(self, first_write_dep: str) -> None:
        self.prev_write_dep = first_write_dep

    # -- explicit dependencies (§3.1 API) -------------------------------------

    def add_read_deps(self, *objects: Any) -> None:
        """Explicitly mark objects as read dependencies (for aggregation
        queries Synapse cannot infer, §4.2)."""
        for obj in objects:
            self.record_local_read(self._dep_of(obj))

    def add_write_deps(self, *objects: Any) -> None:
        """Explicitly force objects to be write dependencies of the next
        update in this controller."""
        for obj in objects:
            self.extra_write_deps.append(self._dep_of(obj))

    def _dep_of(self, obj: Any) -> str:
        return dep_name(self.service.name, type(obj).table_name(), obj.id)


class ControllerStack:
    """Thread-local stack of active controller contexts for one service."""

    def __init__(self) -> None:
        self._local = threading.local()

    def _stack(self) -> List[ControllerContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def push(self, ctx: ControllerContext) -> None:
        self._stack().append(ctx)

    def pop(self) -> ControllerContext:
        return self._stack().pop()

    def current(self) -> Optional[ControllerContext]:
        stack = self._stack()
        return stack[-1] if stack else None


class controller_scope:
    """``with service.controller(user=u) as ctx:`` context manager."""

    def __init__(self, service: Any, user: Optional[Any] = None) -> None:
        self.service = service
        self.ctx = ControllerContext(service, user)

    def __enter__(self) -> ControllerContext:
        self.service._controllers.push(self.ctx)
        return self.ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        self.service._controllers.pop()
