"""The Synapse publisher: interception, dependency versioning, 2PC (§4.2).

Implements the ORM interceptor protocol. For every write of a published
model it:

1. computes write dependencies (the object itself first, then the user
   session object under causal mode, then the global object under global
   mode) and read dependencies (implicit controller reads, the chained
   previous write, explicit ``add_read_deps``);
2. acquires locks on the write dependencies;
3. bumps the version-store counters (``ops``/``version``) obtaining the
   message version of each dependency;
4. performs the engine write and reads the written row back;
5. releases the locks and publishes the Fig 6(b) message.

Writes inside a DB transaction are deferred and combined into a single
message published through two-phase-commit hooks on the transaction, so
commit + version bumps + publish are atomic (§4.2 "Transactions"). A
version-store crash mid-algorithm bumps the publisher's generation
number and resumes with fresh counters (§4.4).

Dependency collection from the controller context is shared between the
immediate and transactional paths (:meth:`_collect_dependencies`), and
both paths are instrumented: span-per-stage tracing when the ecosystem
tracer is on, counters/histograms in the ecosystem metrics registry
always (``publisher.<app>.overhead``, ``publisher.<app>.published``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.delivery import GLOBAL, GLOBAL_OBJECT, WEAK
from repro.core.dependencies import dep_name
from repro.core.marshal import build_message, marshal_operation
from repro.errors import DecoratorViolation, FaultInjected
from repro.orm.mapper import ReadEvent, Row, WriteIntent
from repro.runtime.tracing import (
    STAGE_COLLECT,
    STAGE_ENGINE_WRITE,
    STAGE_INTERCEPT,
    STAGE_REGISTER,
    SpanLog,
    Trace,
    activate_trace,
    trace_now,
)


def _dedupe(deps: List[str], exclude: List[str]) -> List[str]:
    """Order-preserving dedupe, dropping anything in ``exclude``."""
    seen = set(exclude)
    out: List[str] = []
    for dep in deps:
        if dep not in seen:
            seen.add(dep)
            out.append(dep)
    return out


class _TxnBatch:
    """Writes accumulated within one DB transaction."""

    def __init__(self) -> None:
        self.ops: List[Tuple[str, type, Row, List[str]]] = []
        self.message = None
        self.first_write_dep: Optional[str] = None
        self.ctx = None


class SynapsePublisher:
    """Per-service publishing engine; one instance per publisher app."""

    def __init__(self, service: Any) -> None:
        self.service = service
        registry = service.ecosystem.metrics
        self.metrics = registry
        #: Wall-clock seconds spent inside Synapse publish logic — the
        #: "Synapse time" column of Fig 12(a).
        self.overhead = registry.histogram(f"publisher.{service.name}.overhead")
        self._published = registry.counter(f"publisher.{service.name}.published")

    @property
    def messages_published(self) -> int:
        return self._published.value

    # ------------------------------------------------------------------
    # Interceptor protocol
    # ------------------------------------------------------------------

    def write(self, intent: WriteIntent, perform: Callable[[], Row]) -> Row:
        service = self.service
        model_cls = intent.model_cls
        if service.is_applying_target(model_cls.__name__, intent.row_id):
            # The subscriber engine persisting a remote update must not
            # republish it; nested writes from subscriber callbacks (e.g.
            # decoration updates) still publish normally.
            return perform()
        pub_fields = service.published_fields_for(model_cls)
        if pub_fields is None:
            return perform()  # unpublished model: plain DB write

        if service.subscription_specs_for(model_cls) and intent.kind in (
            "create",
            "delete",
        ):
            raise DecoratorViolation(
                f"{service.name!r} decorates {model_cls.__name__} and may not "
                f"{intent.kind} its instances (§3.1)"
            )

        txn = self._current_transaction(model_cls)
        if txn is not None:
            return self._transactional_write(txn, intent, perform, model_cls, pub_fields)
        return self._immediate_write(intent, perform, model_cls, pub_fields)

    def read(self, event: ReadEvent) -> None:
        """Register read dependencies for rows returned to the app."""
        service = self.service
        ctx = service._controllers.current()
        if ctx is None:
            return  # applications are stateless outside controllers (§2)
        model_cls = event.model_cls
        table = model_cls.table_name()
        specs = service.subscription_specs_for(model_cls)
        if specs:
            # Reads of subscribed data are *external* dependencies: the
            # version is what our subscriber-side store has seen (§4.2).
            hasher = service.ecosystem.hasher
            store = service.subscriber_version_store
            for spec in specs:
                for row in event.rows:
                    hashed = hasher.hash(dep_name(spec.from_app, table, row["id"]))
                    ctx.record_external_read(hashed, store.ops(hashed))
        elif service.published_fields_for(model_cls) is not None:
            for row in event.rows:
                ctx.record_local_read(dep_name(service.name, table, row["id"]))

    # ------------------------------------------------------------------
    # Dependency collection (shared by both write paths)
    # ------------------------------------------------------------------

    def _collect_dependencies(
        self,
        ctx: Any,
        mode: str,
        write_deps: List[str],
        trace: Optional[Union[SpanLog, Trace]] = None,
    ) -> Tuple[List[str], Dict[str, int]]:
        """Fold the controller context into ``write_deps`` (in place) and
        return ``(read_deps, external_deps)``.

        The single home of the §4.2 dependency rules: the session user
        object and explicit ``add_write_deps`` join the write deps (causal
        and global modes), implicit controller reads / the chained
        previous write / explicit ``add_read_deps`` become read deps,
        reads of subscribed data become external deps, and global mode
        appends the ``__global__`` object. Consumed context state is
        cleared so the next write in the controller starts fresh.
        """
        start = trace_now() if trace is not None else 0.0
        read_deps: List[str] = []
        external: Dict[str, int] = {}
        if mode != WEAK and ctx is not None:
            if ctx.user_dep is not None:
                write_deps.append(ctx.user_dep)
            if ctx.extra_write_deps:
                write_deps.extend(ctx.extra_write_deps)
                ctx.extra_write_deps = []
            read_deps.extend(ctx.read_deps)
            ctx.read_deps = []
            ctx._seen_reads.clear()
            if ctx.prev_write_dep is not None:
                read_deps.append(ctx.prev_write_dep)
            external = dict(ctx.external_deps)
            ctx.external_deps = {}
        if mode == GLOBAL:
            write_deps.append(GLOBAL_OBJECT)
        if trace is not None:
            trace.add(STAGE_COLLECT, start, trace_now() - start)
        return read_deps, external

    # ------------------------------------------------------------------
    # Immediate (non-transactional) path
    # ------------------------------------------------------------------

    def _immediate_write(
        self,
        intent: WriteIntent,
        perform: Callable[[], Row],
        model_cls: type,
        pub_fields: List[str],
    ) -> Row:
        service = self.service
        clock = service.ecosystem.clock
        trace = service.ecosystem.tracer.begin_log()
        intercept_start = trace_now() if trace is not None else 0.0
        start = clock.monotonic()
        mode = service.delivery_mode
        ctx = service._controllers.current()
        table = model_cls.table_name()

        obj_dep: Optional[str] = None
        write_deps: List[str] = []
        if intent.row_id is not None:
            obj_dep = dep_name(service.name, table, intent.row_id)
            write_deps.append(obj_dep)
        read_deps, external = self._collect_dependencies(ctx, mode, write_deps, trace)

        store = service.publisher_version_store
        locks = store.acquire_write_locks(write_deps)
        try:
            if trace is not None:
                write_start = trace_now()
                row = perform()
                trace.add(STAGE_ENGINE_WRITE, write_start, trace_now() - write_start)
            else:
                row = perform()
            if obj_dep is None:
                obj_dep = dep_name(service.name, table, row["id"])
                write_deps.insert(0, obj_dep)
            # Each object is one write dependency even when it plays two
            # roles (e.g. the session user updating itself), and an object
            # both read and written is only a write dependency (Fig 8: W4
            # reads the post it updates, read_deps stay empty).
            write_deps = _dedupe(write_deps, exclude=[])
            read_deps = _dedupe(read_deps, exclude=write_deps)
            versions = self._register_with_recovery(read_deps, write_deps, trace)
        finally:
            store.release_locks(locks)

        operation = marshal_operation(intent.kind, model_cls, row, pub_fields)
        message = build_message(
            app=service.name,
            operations=[operation],
            dependencies=versions,
            published_at=clock.now(),
            generation=service.current_generation(),
            external_dependencies=external,
        )
        # Publish-time work done; stop the overhead clock before the
        # (broker-side) fan-out which the paper attributes to the fabric.
        elapsed = clock.monotonic() - start
        if trace is not None:
            trace.add(STAGE_INTERCEPT, intercept_start, trace_now() - intercept_start)
            # Head-based sampling decides here (the uid now exists):
            # unsampled messages ship with no trace at all, and only a
            # sampled one pays for real Trace/Span objects.
            service.ecosystem.tracer.attach_log(service.name, trace, message)
        if message.trace is not None:
            with activate_trace(message.trace):
                self.overhead.record(elapsed)
        else:
            self.overhead.record(elapsed)
        service.broker.publish(message)
        self._published.increment()
        if ctx is not None:
            ctx.note_write(obj_dep)
        return row

    # ------------------------------------------------------------------
    # CDC ingest seam (transactional-outbox front-end)
    # ------------------------------------------------------------------

    def ingest_cdc(
        self, kind: str, model_cls: type, row: Row, cdc_seq: int
    ) -> Any:
        """Publish one already-committed outbox entry.

        The second intercept front-end (§7's admitted gap): the row was
        written by ``raw_write`` *bypassing* the ORM, committed together
        with its outbox record, and is now being tailed by the CDC
        poller. From here on the write takes the exact pipeline of an
        ORM write — dependency collection, version-store registration,
        marshalling, tracing, broker fan-out — minus the engine write
        (already durable) and minus controller context (raw sessions
        run outside controllers, so causal reads don't chain).

        The message uid is derived from the outbox sequence
        (``<app>:cdc:<seq>``), stable across crash-replay republishes so
        subscriber-side dedup makes the at-least-once tail effectively
        exactly-once.
        """
        service = self.service
        clock = service.ecosystem.clock
        trace = service.ecosystem.tracer.begin_log()
        intercept_start = trace_now() if trace is not None else 0.0
        start = clock.monotonic()
        mode = service.delivery_mode
        table = model_cls.table_name()

        obj_dep = dep_name(service.name, table, row["id"])
        write_deps: List[str] = [obj_dep]
        read_deps, external = self._collect_dependencies(
            None, mode, write_deps, trace
        )

        store = service.publisher_version_store
        locks = store.acquire_write_locks(write_deps)
        try:
            write_deps = _dedupe(write_deps, exclude=[])
            read_deps = _dedupe(read_deps, exclude=write_deps)
            versions = self._register_with_recovery(read_deps, write_deps, trace)
        finally:
            store.release_locks(locks)

        pub_fields = service.published_fields_for(model_cls)
        operation = marshal_operation(kind, model_cls, row, pub_fields or [])
        message = build_message(
            app=service.name,
            operations=[operation],
            dependencies=versions,
            published_at=clock.now(),
            generation=service.current_generation(),
            external_dependencies=external,
            uid=f"{service.name}:cdc:{cdc_seq}",
            cdc=cdc_seq,
        )
        elapsed = clock.monotonic() - start
        if trace is not None:
            trace.add(STAGE_INTERCEPT, intercept_start, trace_now() - intercept_start)
            service.ecosystem.tracer.attach_log(service.name, trace, message)
        if message.trace is not None:
            with activate_trace(message.trace):
                self.overhead.record(elapsed)
        else:
            self.overhead.record(elapsed)
        service.broker.publish(message)
        self._published.increment()
        return message

    # ------------------------------------------------------------------
    # Transactional path (2PC, §4.2)
    # ------------------------------------------------------------------

    def _transactional_write(
        self,
        txn: Any,
        intent: WriteIntent,
        perform: Callable[[], Row],
        model_cls: type,
        pub_fields: List[str],
    ) -> Row:
        # The engine already holds locks on written rows until commit, so
        # the publisher skips its own write-dep locks (§4.2 optimisation).
        row = perform()
        batch: Optional[_TxnBatch] = getattr(txn, "_synapse_batch", None)
        if batch is None:
            batch = _TxnBatch()
            batch.ctx = self.service._controllers.current()
            txn._synapse_batch = batch
            txn.on_prepare.append(self._prepare_transaction)
            txn.on_commit.append(self._commit_transaction)
        batch.ops.append((intent.kind, model_cls, dict(row), pub_fields))
        return row

    def _prepare_transaction(self, txn: Any) -> None:
        """2PC phase one: bump versions and build the combined message."""
        service = self.service
        clock = service.ecosystem.clock
        trace = service.ecosystem.tracer.begin_log()
        intercept_start = trace_now() if trace is not None else 0.0
        start = clock.monotonic()
        batch: _TxnBatch = txn._synapse_batch
        mode = service.delivery_mode
        ctx = batch.ctx

        write_deps: List[str] = []
        for _kind, model_cls, row, _fields in batch.ops:
            dep = dep_name(service.name, model_cls.table_name(), row["id"])
            if dep not in write_deps:
                write_deps.append(dep)
        batch.first_write_dep = write_deps[0] if write_deps else None
        read_deps, external = self._collect_dependencies(ctx, mode, write_deps, trace)

        write_deps = _dedupe(write_deps, exclude=[])
        read_deps = _dedupe(read_deps, exclude=write_deps)
        versions = self._register_with_recovery(read_deps, write_deps, trace)
        operations = [
            marshal_operation(kind, model_cls, row, fields)
            for kind, model_cls, row, fields in batch.ops
        ]
        batch.message = build_message(
            app=service.name,
            operations=operations,
            dependencies=versions,
            published_at=clock.now(),
            generation=service.current_generation(),
            external_dependencies=external,
        )
        elapsed = clock.monotonic() - start
        if trace is not None:
            trace.add(STAGE_INTERCEPT, intercept_start, trace_now() - intercept_start)
            service.ecosystem.tracer.attach_log(service.name, trace, batch.message)
        if batch.message.trace is not None:
            with activate_trace(batch.message.trace):
                self.overhead.record(elapsed)
        else:
            self.overhead.record(elapsed)

    def _commit_transaction(self, txn: Any) -> None:
        """2PC phase two: the local commit succeeded — publish."""
        batch: _TxnBatch = txn._synapse_batch
        if batch.message is None:
            return
        self.service.broker.publish(batch.message)
        self._published.increment()
        if batch.ctx is not None and batch.first_write_dep is not None:
            batch.ctx.note_write(batch.first_write_dep)

    # ------------------------------------------------------------------
    # Version-store failure recovery (§4.4)
    # ------------------------------------------------------------------

    def _register_with_recovery(
        self,
        read_deps: List[str],
        write_deps: List[str],
        trace: Optional[Union[SpanLog, Trace]] = None,
    ) -> Dict[str, int]:
        store = self.service.publisher_version_store
        start = trace_now() if trace is not None else 0.0
        try:
            versions = store.register_operation(read_deps, write_deps)
        except FaultInjected:
            self.service.recover_publisher_version_store()
            versions = store.register_operation(read_deps, write_deps)
        if trace is not None:
            trace.add(STAGE_REGISTER, start, trace_now() - start)
        return versions

    # ------------------------------------------------------------------

    @staticmethod
    def _current_transaction(model_cls: type) -> Any:
        mapper = model_cls.__mapper__
        getter = getattr(mapper, "current_transaction", None)
        return getter() if getter is not None else None
