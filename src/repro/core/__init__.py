"""Synapse core: the paper's primary contribution.

Publish/subscribe declarations on MVC models (§3), automatic dependency
tracking and the version-store publishing algorithm (§4.2), subscriber
workers enforcing global/causal/weak delivery (§3.2), bootstrapping and
failure recovery (§4.4), live schema migrations (§4.3) and the testing
framework (§4.5).
"""

from repro.core.api import Ecosystem, Service
from repro.core.delivery import CAUSAL, GLOBAL, WEAK
from repro.core.observer import Ephemeral, Observer

__all__ = ["Ecosystem", "Service", "GLOBAL", "CAUSAL", "WEAK", "Ephemeral", "Observer"]
