"""The §6.3 stress-test microbenchmark.

"Users continuously create posts and comments, similar to the code on
Fig 8. Comments are related to posts and create cross-user dependencies.
We issue traffic as fast as possible ... with a uniform distribution of
25% posts and 75% comments."
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.databases.document import MongoLike
from repro.errors import RecordNotFound
from repro.orm import BelongsTo, Field, Model


def build_social_publisher(
    ecosystem: Any,
    name: str = "social",
    database: Optional[Any] = None,
    delivery_mode: str = "causal",
    ephemeral: bool = False,
) -> Tuple[Any, type, type, type]:
    """A social-network publisher: User, Post, Comment (Fig 8 schema).

    With ``ephemeral=True`` the models are DB-less publishers — the
    "Ephemeral -> Observer" configuration of Fig 13(b).
    """
    if database is None and not ephemeral:
        database = MongoLike(f"{name}-db")
    service = ecosystem.service(
        name, database=database, delivery_mode=delivery_mode
    )
    kwargs = {"ephemeral": True} if ephemeral else {}

    @service.model(publish=["name"], **kwargs)
    class User(Model):
        name = Field(str)

    @service.model(publish=["author_id", "body"], **kwargs)
    class Post(Model):
        body = Field(str)
        author = BelongsTo("User")

    @service.model(publish=["post_id", "author_id", "body"], **kwargs)
    class Comment(Model):
        body = Field(str)
        post = BelongsTo("Post")
        author = BelongsTo("User")

    return service, User, Post, Comment


class SocialWorkload:
    """Closed-loop driver issuing the 25/75 post/comment mix."""

    def __init__(
        self,
        service: Any,
        user_cls: type,
        post_cls: type,
        comment_cls: type,
        users: int = 20,
        seed: int = 7,
        track_recent: int = 64,
    ) -> None:
        self.service = service
        self.user_cls = user_cls
        self.post_cls = post_cls
        self.comment_cls = comment_cls
        self.rng = random.Random(seed)
        self.users = [user_cls.create(name=f"user{i}") for i in range(users)]
        self.recent_posts: List[Any] = []
        self._track_recent = track_recent
        self.posts_created = 0
        self.comments_created = 0

    def step(self, post_fraction: float = 0.25) -> None:
        """One user request: a post (with probability ``post_fraction``)
        or a comment on a recent post by (usually) another user."""
        user = self.rng.choice(self.users)
        with self.service.controller(user=user) as ctx:
            if not self.recent_posts or self.rng.random() < post_fraction:
                post = self.post_cls.create(author_id=user.id, body="post body")
                self.recent_posts.append(post)
                if len(self.recent_posts) > self._track_recent:
                    self.recent_posts.pop(0)
                self.posts_created += 1
            else:
                target = self.rng.choice(self.recent_posts)
                try:
                    # Reading the post creates the cross-user read dep.
                    seen = self.post_cls.find(target.id)
                    post_id = seen.id
                except RecordNotFound:
                    # Ephemeral publishers have nothing to read back:
                    # declare the dependency explicitly (§3.1 API).
                    ctx.add_read_deps(target)
                    post_id = target.id
                self.comment_cls.create(
                    post_id=post_id, author_id=user.id, body="nice post"
                )
                self.comments_created += 1

    def run(self, operations: int, post_fraction: float = 0.25) -> None:
        for _ in range(operations):
            self.step(post_fraction)
