"""A synthetic Crowdtap-like application matching Fig 12(a).

The paper instrumented Crowdtap's main app for 24 hours (170k controller
calls). We rebuild the five most-frequent controllers with the published
per-controller profiles — call share, mean messages published per call,
mean dependencies per message — so the Fig 12(a) overhead table can be
regenerated against this library.

| controller      | % calls | msgs/call | deps/msg |
|-----------------|---------|-----------|----------|
| awards/index    | 17.0    | 0.00      | 0.0      |
| brands/show     | 16.0    | 0.03      | 1.0      |
| actions/index   | 15.0    | 0.67      | 17.8     |
| me/show         | 12.0    | 0.00      | 0.0      |
| actions/update  | 11.5    | 3.46      | 1.8      |
| (50 others)     | 28.5    | low       | low      |
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.databases.document import MongoLike
from repro.orm import BelongsTo, Field, Model

#: controller -> (traffic share, mean messages/call, mean deps/message)
CONTROLLER_MIX: Dict[str, tuple] = {
    "awards/index": (0.170, 0.00, 0.0),
    "brands/show": (0.160, 0.03, 1.0),
    "actions/index": (0.150, 0.67, 17.8),
    "me/show": (0.120, 0.00, 0.0),
    "actions/update": (0.115, 3.46, 1.8),
    "other": (0.285, 0.10, 1.0),
}


class CrowdtapApp:
    """The main Crowdtap-like application (MongoDB, causal publisher)."""

    def __init__(self, ecosystem: Any, seed: int = 11, members: int = 50,
                 brands: int = 10, awards: int = 20) -> None:
        self.ecosystem = ecosystem
        self.rng = random.Random(seed)
        self.service = ecosystem.service(
            "crowdtap-main", database=MongoLike("crowdtap-db")
        )
        service = self.service

        @service.model(publish=["name", "points"])
        class Member(Model):
            name = Field(str)
            points = Field(int, default=0)

        @service.model(publish=["name"])
        class Brand(Model):
            name = Field(str)

        @service.model(publish=["name", "brand_id"])
        class Award(Model):
            name = Field(str)
            brand = BelongsTo("Brand")

        @service.model(publish=["kind", "member_id", "brand_id", "status"])
        class Action(Model):
            kind = Field(str)
            status = Field(str, default="pending")
            member = BelongsTo("Member")
            brand = BelongsTo("Brand")

        self.Member, self.Brand, self.Award, self.Action = (
            Member, Brand, Award, Action,
        )
        self.members = [Member.create(name=f"m{i}") for i in range(members)]
        self.brands = [Brand.create(name=f"b{i}") for i in range(brands)]
        self.awards = [
            Award.create(name=f"a{i}", brand_id=self.rng.choice(self.brands).id)
            for i in range(awards)
        ]
        self.actions: List[Any] = []
        for member in self.members:
            self.actions.append(
                Action.create(
                    kind="seed",
                    member_id=member.id,
                    brand_id=self.rng.choice(self.brands).id,
                )
            )

    # -- the five controllers ------------------------------------------------

    def awards_index(self, member: Any) -> None:
        """Read-only listing of awards: publishes nothing."""
        self.Award.where(_limit=10)

    def brands_show(self, member: Any) -> None:
        """Mostly read; 3% of calls record a 'viewed' action."""
        brand = self.Brand.find(self.rng.choice(self.brands).id)
        if self.rng.random() < 0.03:
            self.Action.create(kind="view", member_id=member.id,
                               brand_id=brand.id)

    def actions_index(self, member: Any) -> None:
        """Feed assembly: reads many actions (large dependency sets) and
        occasionally (67%) records an impression touching them."""
        feed = self.Action.where(_limit=17)
        if self.rng.random() < 0.67:
            self.Action.create(
                kind="impression",
                member_id=member.id,
                brand_id=self.rng.choice(self.brands).id,
            )

    def me_show(self, member: Any) -> None:
        """Profile read: publishes nothing."""
        self.Member.find(member.id)

    def actions_update(self, member: Any) -> None:
        """Write-heavy: completes an action, awards points, logs events —
        several messages per call."""
        action = self.Action.find(self.rng.choice(self.actions).id)
        action.update(status="completed")
        fresh = self.Member.find(member.id)
        fresh.update(points=(fresh.points or 0) + 10)
        self.Action.create(kind="reward", member_id=member.id,
                           brand_id=action.brand_id)
        if self.rng.random() < 0.46:
            self.Action.create(kind="share", member_id=member.id,
                               brand_id=action.brand_id)

    def other(self, member: Any) -> None:
        """The long tail of 50 other controllers: light reads, rare writes."""
        self.Member.find(member.id)
        if self.rng.random() < 0.10:
            self.Action.create(kind="misc", member_id=member.id,
                               brand_id=self.rng.choice(self.brands).id)

    # -- traffic driver ---------------------------------------------------------

    def controller_table(self) -> Dict[str, Callable[[Any], None]]:
        return {
            "awards/index": self.awards_index,
            "brands/show": self.brands_show,
            "actions/index": self.actions_index,
            "me/show": self.me_show,
            "actions/update": self.actions_update,
            "other": self.other,
        }

    def sample_controller(self) -> str:
        roll = self.rng.random()
        acc = 0.0
        for name, (share, _msgs, _deps) in CONTROLLER_MIX.items():
            acc += share
            if roll < acc:
                return name
        return "other"

    def run_request(self, controller: Optional[str] = None) -> str:
        """One user request through one controller, in a user session."""
        name = controller or self.sample_controller()
        member = self.rng.choice(self.members)
        with self.service.controller(user=member):
            self.controller_table()[name](member)
        return name
