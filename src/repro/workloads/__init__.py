"""Workload generators reproducing the paper's evaluation traffic:

- :mod:`repro.workloads.social` — the §6.3 stress-test microbenchmark
  (25% posts / 75% comments with cross-user dependencies);
- :mod:`repro.workloads.crowdtap` — the §6.2 Crowdtap production
  controller mix of Fig 12(a).
"""

from repro.workloads.social import SocialWorkload, build_social_publisher
from repro.workloads.crowdtap import CrowdtapApp, CONTROLLER_MIX

__all__ = [
    "SocialWorkload",
    "build_social_publisher",
    "CrowdtapApp",
    "CONTROLLER_MIX",
]
