"""The write-message envelope (Fig 6b).

A message carries every write of one publisher operation (or one
transaction), its dependency map, a timestamp and the publisher's
generation number. The payload is JSON-serialisable end to end — we
round-trip through ``json`` to guarantee nothing non-serialisable leaks
across the service boundary.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Dict, List, Optional

from repro.errors import BrokerError
from repro.runtime.tracing import Trace

#: Data-plane wire-format schema version. Bump when a field changes
#: meaning; receivers refuse payloads from a *newer* schema instead of
#: silently misreading them. v2: the optional ``trace`` dict may carry
#: per-span ``shard`` tags and a trace ``origin`` (cross-shard tracing);
#: v3: the optional ``cdc`` int tags messages ingested from a
#: transactional outbox with their outbox sequence number. v1/v2
#: payloads — which simply omit the optional fields — are still
#: accepted.
WIRE_VERSION = 3

_seq = itertools.count(1)
_seq_lock = threading.Lock()


class Message:
    """One published write message."""

    def __init__(
        self,
        app: str,
        operations: List[Dict[str, Any]],
        dependencies: Dict[str, int],
        published_at: float,
        generation: int = 1,
        bootstrap: bool = False,
        repair: bool = False,
        external_dependencies: Optional[Dict[str, int]] = None,
        uid: Optional[str] = None,
        trace: Optional[Trace] = None,
        coalesced_uids: Optional[List[str]] = None,
        increments: Optional[Dict[str, int]] = None,
        cdc: Optional[int] = None,
    ) -> None:
        with _seq_lock:
            self.seq = next(_seq)  # broker-side FIFO tiebreaker
        #: Stable identity across redeliveries and wire copies, so
        #: subscribers can deduplicate at-least-once deliveries.
        self.uid = uid if uid is not None else f"{app}:{self.seq}"
        self.app = app
        self.operations = operations
        self.dependencies = dependencies
        #: Cross-application dependencies: waited on, never incremented (§4.2).
        self.external_dependencies = dict(external_dependencies or {})
        self.published_at = published_at
        self.generation = generation
        #: Marks messages produced by the bulk phase of a bootstrap (§4.4).
        self.bootstrap = bootstrap
        #: Marks anti-entropy repair messages: applied with weak
        #: fresh-or-discard semantics, and the per-object dependency
        #: counters are fast-forwarded to the carried versions so a
        #: counter deficit from lost messages heals without a bootstrap.
        self.repair = repair
        #: End-to-end trace context; None unless the ecosystem tracer is
        #: enabled. Serialised with the payload so it survives the wire
        #: round trip of :meth:`copy`.
        self.trace = trace
        #: Uids of messages this one absorbed via flow-control
        #: coalescing; their at-least-once obligation is discharged
        #: when this message finishes.
        self.coalesced_uids: List[str] = list(coalesced_uids or [])
        #: Per-dependency counter bumps on apply. ``None`` means the
        #: plain §4.2 rule (one per write dependency); coalesced
        #: messages carry the summed increments of their constituents.
        self.increments: Optional[Dict[str, int]] = (
            dict(increments) if increments else None
        )
        #: Outbox sequence number when this message was ingested by the
        #: CDC poller from a transactional outbox (``None`` for ORM
        #: writes). CDC messages are exempt from weak-mode shedding:
        #: once the poller's cursor passes an entry, a shed would lose
        #: it until the next anti-entropy repair.
        self.cdc: Optional[int] = cdc
        self.delivery_count = 0
        #: Queue-local dwell bookkeeping (set by ``SubscriberQueue``):
        #: runtime state of one queue's copy, never serialised.
        self.enqueued_at: Optional[float] = None
        self.dwell: Optional[float] = None

    def to_json(self) -> str:
        payload = {
            "wire_version": WIRE_VERSION,
            "uid": self.uid,
            "app": self.app,
            "operations": self.operations,
            "dependencies": self.dependencies,
            "external_dependencies": self.external_dependencies,
            "published_at": self.published_at,
            "generation": self.generation,
            "bootstrap": self.bootstrap,
            "repair": self.repair,
        }
        if self.coalesced_uids:
            payload["coalesced_uids"] = self.coalesced_uids
        if self.increments:
            payload["increments"] = self.increments
        if self.cdc is not None:
            payload["cdc"] = self.cdc
        if self.trace is not None:
            payload["trace"] = self.trace.to_dict()
        return json.dumps(payload)

    @classmethod
    def from_json(cls, payload: str) -> "Message":
        data = json.loads(payload)
        version = data.get("wire_version", 1)
        if version > WIRE_VERSION:
            raise BrokerError(
                f"message wire_version {version} is newer than supported "
                f"{WIRE_VERSION}; upgrade this subscriber before the publisher"
            )
        return cls(
            app=data["app"],
            operations=data["operations"],
            dependencies=data["dependencies"],
            published_at=data["published_at"],
            generation=data.get("generation", 1),
            bootstrap=data.get("bootstrap", False),
            repair=data.get("repair", False),
            external_dependencies=data.get("external_dependencies"),
            uid=data.get("uid"),
            trace=Trace.from_dict(data["trace"]) if data.get("trace") else None,
            coalesced_uids=data.get("coalesced_uids"),
            increments=data.get("increments"),
            cdc=data.get("cdc"),
        )

    def counter_increments(self) -> Dict[str, int]:
        """Per-dependency counter bumps on apply: the plain §4.2 rule
        (one per write dependency) unless coalescing summed them."""
        if self.increments is not None:
            return self.increments
        return {dep: 1 for dep in self.dependencies}

    def copy(self) -> "Message":
        """Wire-format round trip: what each subscriber queue stores."""
        return Message.from_json(self.to_json())

    def __repr__(self) -> str:
        ops = [(op["operation"], op.get("id")) for op in self.operations]
        return f"<Message app={self.app} ops={ops} deps={self.dependencies}>"
