"""Reliable message broker (RabbitMQ stand-in, Fig 6a).

One durable queue per subscriber application; messages are acked by
subscriber workers, redelivered on nack, and the queue is decommissioned
when it grows past a configurable limit (§4.4). Fault injection can drop
messages in transit to reproduce the §6.5 production incident.
"""

from repro.broker.broker import Broker
from repro.broker.message import Message
from repro.broker.queue import SubscriberQueue

__all__ = ["Broker", "Message", "SubscriberQueue"]
