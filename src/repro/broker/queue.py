"""Durable per-subscriber queue with ack/redeliver semantics."""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional

from repro.broker.message import Message
from repro.errors import BrokerError, QueueDecommissioned
from repro.runtime.tracing import MARK_ACKED, MARK_ENQUEUED, STAGE_DWELL, trace_now


class SubscriberQueue:
    """FIFO queue of write messages for one subscriber application.

    ``pop`` hands out a message and keeps it *unacked*; ``ack`` removes
    it; ``nack`` (or :meth:`requeue_unacked`) pushes it back to the front
    for redelivery. When the backlog exceeds ``max_size`` the queue is
    killed and the subscriber must re-bootstrap (§4.4).
    """

    def __init__(self, name: str, max_size: Optional[int] = None) -> None:
        self.name = name
        self.max_size = max_size
        self._items: deque = deque()
        self._unacked: Dict[int, Message] = {}
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self.decommissioned = False
        self.total_published = 0
        self.total_acked = 0

    # -- broker side ---------------------------------------------------------

    def publish(self, message: Message) -> None:
        with self._lock:
            if self.decommissioned:
                return  # dropped: the subscriber is out of the ecosystem
            if message.trace is not None:
                message.trace.mark(MARK_ENQUEUED)
            self._items.append(message)
            self.total_published += 1
            if self.max_size is not None and len(self._items) > self.max_size:
                self._items.clear()
                self._unacked.clear()
                self.decommissioned = True
            self._available.notify_all()

    def recommission(self) -> None:
        """Bring a killed queue back (start of a partial bootstrap)."""
        with self._lock:
            self.decommissioned = False
            self._items.clear()
            self._unacked.clear()

    # -- subscriber side -----------------------------------------------------

    def pop(self, timeout: Optional[float] = 0.0) -> Optional[Message]:
        """Take the next message (it stays unacked until :meth:`ack`).

        ``timeout=0`` polls; ``timeout=None`` blocks indefinitely.
        """
        with self._lock:
            if self.decommissioned:
                raise QueueDecommissioned(self.name)
            if not self._items and timeout != 0.0:
                self._available.wait(timeout)
            if self.decommissioned:
                raise QueueDecommissioned(self.name)
            if not self._items:
                return None
            message = self._items.popleft()
            message.delivery_count += 1
            self._unacked[message.seq] = message
            if message.trace is not None:
                # Queue dwell: enqueue (or last redelivery) to this pop.
                enqueued = message.trace.marks.get(MARK_ENQUEUED)
                if enqueued is not None:
                    message.trace.add(STAGE_DWELL, enqueued, trace_now() - enqueued)
            return message

    def ack(self, message: Message) -> None:
        with self._lock:
            if message.seq not in self._unacked:
                raise BrokerError(f"ack of unknown delivery {message.seq}")
            del self._unacked[message.seq]
            self.total_acked += 1
            if message.trace is not None:
                message.trace.mark(MARK_ACKED)

    def nack(self, message: Message) -> None:
        """Return an unacked message to the front of the queue."""
        with self._lock:
            if message.seq in self._unacked:
                del self._unacked[message.seq]
                if message.trace is not None:
                    message.trace.mark(MARK_ENQUEUED)  # dwell restarts
                self._items.appendleft(message)
                self._available.notify_all()

    def requeue_unacked(self) -> int:
        """Crash recovery: everything in flight goes back on the queue."""
        with self._lock:
            pending = sorted(self._unacked.values(), key=lambda m: m.seq)
            for message in reversed(pending):
                self._items.appendleft(message)
            count = len(self._unacked)
            self._unacked.clear()
            if count:
                self._available.notify_all()
            return count

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def unacked_count(self) -> int:
        with self._lock:
            return len(self._unacked)

    def stats(self) -> Dict[str, int]:
        """Queued *and* delivered-but-unacked counts, plus lifetime
        published/acked totals — what an auditor needs to tell transit
        lag (messages still queued or in flight) from loss (published
        but neither queued, in flight, nor acked)."""
        with self._lock:
            return {
                "queued": len(self._items),
                "in_flight": len(self._unacked),
                "published": self.total_published,
                "acked": self.total_acked,
                "decommissioned": int(self.decommissioned),
            }

    def peek_all(self) -> List[Message]:
        with self._lock:
            return list(self._items)
