"""Durable per-subscriber queue with ack/redeliver semantics."""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.broker.message import Message
from repro.errors import BrokerError, QueueDecommissioned
from repro.runtime.interleave import yield_point
from repro.runtime.tracing import MARK_ACKED, MARK_ENQUEUED, STAGE_DWELL, trace_now


class SubscriberQueue:
    """FIFO queue of write messages for one subscriber application.

    ``pop`` hands out a message and keeps it *unacked*; ``ack`` removes
    it; ``nack`` (or :meth:`requeue_unacked`) pushes it back to the front
    for redelivery. When the backlog exceeds ``max_size`` the queue is
    killed and the subscriber must re-bootstrap (§4.4).

    The ``yield_point`` calls mark the interleaving boundaries driven by
    the deterministic conformance harness; they are no-ops in production
    and always sit *outside* ``self._lock``.
    """

    def __init__(self, name: str, max_size: Optional[int] = None) -> None:
        self.name = name
        self.max_size = max_size
        self._items: deque = deque()
        self._unacked: Dict[int, Message] = {}
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self.decommissioned = False
        self.total_published = 0
        self.total_acked = 0
        #: Per-queue flow state (admission credits + coalescing index),
        #: attached by the broker when ``Ecosystem.enable_flow`` is on.
        #: Its hooks are called under ``self._lock`` and never suspend.
        self.flow = None
        #: DurabilityManager, attached by the broker when
        #: ``Ecosystem.enable_durability`` is on. Log hooks run under
        #: ``self._lock`` so WAL order equals queue-mutation order.
        self.durability = None

    # -- broker side ---------------------------------------------------------

    def publish(self, message: Message) -> None:
        yield_point("queue.publish", queue=self.name, message=message)
        outcome, killed, survivor = "published", False, None
        with self._lock:
            if self.decommissioned:
                outcome = "dropped"
            elif self.flow is not None and (
                survivor := self.flow.coalesce(self._items, self._unacked, message)
            ) is not None:
                outcome = "coalesced"
            elif (
                self.flow is not None
                and self.flow.admit(message, len(self._items) + len(self._unacked))
                == "shed"
            ):
                outcome = "shed"
            else:
                # Dwell is measured for every message (the lag monitor
                # needs it), not just traced ones.
                message.enqueued_at = trace_now()
                if message.trace is not None:
                    message.trace.mark(MARK_ENQUEUED)
                self._items.append(message)
                if self.flow is not None:
                    self.flow.register(message)
                self.total_published += 1
                killed = (
                    self.max_size is not None and len(self._items) > self.max_size
                )
                if killed:
                    self._items.clear()
                    self._unacked.clear()
                    self.decommissioned = True
                    if self.flow is not None:
                        self.flow.reset()
                    # Everyone must notice the decommission, not just
                    # one worker — the single wake-one case is below.
                    self._available.notify_all()
                else:
                    self._available.notify()
            if self.durability is not None:
                if outcome == "published":
                    self.durability.log_pub(self.name, message)
                    if killed:
                        self.durability.log_decom(self.name)
                elif outcome == "coalesced":
                    self.durability.log_coal(self.name, survivor)
                elif outcome == "shed":
                    self.durability.log_shed(self.name, message, self.flow)
        if outcome == "dropped":
            yield_point("queue.drop.decommissioned", queue=self.name, message=message)
            return
        if outcome == "coalesced":
            yield_point(
                "queue.coalesced", queue=self.name, message=message, into=survivor
            )
            return
        if outcome == "shed":
            yield_point("queue.shed", queue=self.name, message=message)
            return
        yield_point("queue.published", queue=self.name, message=message)
        if killed:
            yield_point("queue.decommissioned", queue=self.name)

    def recommission(self) -> None:
        """Bring a killed queue back (start of a partial bootstrap)."""
        with self._lock:
            self.decommissioned = False
            self._items.clear()
            self._unacked.clear()
            if self.flow is not None:
                self.flow.reset()
            if self.durability is not None:
                self.durability.log_recom(self.name)
            self._available.notify_all()

    # -- subscriber side -----------------------------------------------------

    def pop(self, timeout: Optional[float] = 0.0) -> Optional[Message]:
        """Take the next message (it stays unacked until :meth:`ack`).

        ``timeout=0`` polls; ``timeout=None`` blocks indefinitely. The
        wait is a predicate re-check loop against a shared deadline: a
        spurious wakeup, or a notify consumed by a faster worker, puts
        the caller back to sleep for the *remaining* time instead of
        returning ``None`` early (a dropped delivery from the caller's
        point of view).
        """
        yield_point("queue.pop", queue=self.name)
        with self._lock:
            if self.decommissioned:
                raise QueueDecommissioned(self.name)
            if not self._items and timeout != 0.0:
                if timeout is None:
                    while not self._items and not self.decommissioned:
                        self._available.wait()
                else:
                    deadline = time.monotonic() + timeout
                    while not self._items and not self.decommissioned:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._available.wait(remaining)
            if self.decommissioned:
                raise QueueDecommissioned(self.name)
            if not self._items:
                return None
            message = self._take_locked()
        yield_point("queue.popped", queue=self.name, message=message)
        return message

    def _take_locked(self) -> Message:
        """Pop the head with full per-delivery bookkeeping. Caller
        holds ``self._lock`` and has checked ``self._items``."""
        message = self._items.popleft()
        message.delivery_count += 1
        self._unacked[message.seq] = message
        if self.flow is not None:
            self.flow.on_pop(message)
        if message.enqueued_at is not None:
            message.dwell = trace_now() - message.enqueued_at
        if message.trace is not None:
            # Queue dwell: enqueue (or last redelivery) to this pop.
            enqueued = message.trace.marks.get(MARK_ENQUEUED)
            if enqueued is not None:
                message.trace.add(STAGE_DWELL, enqueued, trace_now() - enqueued)
        return message

    def pop_many(
        self, max_n: int, timeout: Optional[float] = 0.0
    ) -> List[Message]:
        """Drain up to ``max_n`` messages in one lock round-trip.

        Blocks like :meth:`pop` for the *first* message; the rest are
        taken only if already queued. Each message gets the same
        per-delivery bookkeeping as ``pop`` (delivery count, unacked
        table, dwell, trace dwell span), and ``queue.popped`` is
        emitted per message, in pop order, after the lock is released.
        """
        if max_n <= 0:
            return []
        yield_point("queue.pop", queue=self.name)
        popped: List[Message] = []
        with self._lock:
            if self.decommissioned:
                raise QueueDecommissioned(self.name)
            if not self._items and timeout != 0.0:
                if timeout is None:
                    while not self._items and not self.decommissioned:
                        self._available.wait()
                else:
                    deadline = time.monotonic() + timeout
                    while not self._items and not self.decommissioned:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._available.wait(remaining)
            if self.decommissioned:
                raise QueueDecommissioned(self.name)
            while self._items and len(popped) < max_n:
                popped.append(self._take_locked())
        for message in popped:
            yield_point("queue.popped", queue=self.name, message=message)
        return popped

    def ack(self, message: Message) -> None:
        yield_point("queue.ack", queue=self.name, message=message)
        with self._lock:
            tolerated = message.seq not in self._unacked
            if tolerated:
                if not self.decommissioned:
                    raise BrokerError(f"ack of unknown delivery {message.seq}")
                # Decommission cleared the in-flight table while this
                # delivery was mid-message: the ack is a tolerated no-op
                # (the worker learns about the decommission on its next
                # pop and routes it to on_deadlock).
            else:
                del self._unacked[message.seq]
                self.total_acked += 1
                if self.durability is not None:
                    self.durability.log_ack(self.name, message)
                if message.trace is not None:
                    message.trace.mark(MARK_ACKED)
                    # The subscriber already handed the finished trace to
                    # the tracer/flight recorder (same object, so the ack
                    # mark above is visible there); releasing it here
                    # stops per-message growth once delivery completes.
                    message.trace = None
        if tolerated:
            yield_point("queue.ack.tolerated", queue=self.name, message=message)
        else:
            yield_point("queue.acked", queue=self.name, message=message)

    def nack(self, message: Message) -> None:
        """Return an unacked message to the front of the queue."""
        yield_point("queue.nack", queue=self.name, message=message)
        with self._lock:
            tolerated = self.decommissioned or message.seq not in self._unacked
            if not tolerated:
                del self._unacked[message.seq]
                message.enqueued_at = trace_now()  # dwell restarts
                if message.trace is not None:
                    message.trace.mark(MARK_ENQUEUED)
                self._items.appendleft(message)
                # One message back, one worker woken (the herd fix);
                # the predicate re-check loop in pop absorbs races.
                self._available.notify()
        if tolerated:
            yield_point("queue.nack.tolerated", queue=self.name, message=message)
        else:
            yield_point("queue.nacked", queue=self.name, message=message)

    def defer(self, message: Message) -> None:
        """Return an unacked message to the *back* of the queue.

        The worker pools use this instead of :meth:`nack` when a
        delivery stalled purely on a dependency wait: the missing
        predecessor is somewhere behind it in this very queue, so
        redelivering at the front would hand the popper the same
        message back while the predecessor stays buried — with several
        workers and small batches that cycle can starve the chain head
        indefinitely. Rotating to the back guarantees every queued
        message surfaces within one revolution."""
        yield_point("queue.defer", queue=self.name, message=message)
        with self._lock:
            tolerated = self.decommissioned or message.seq not in self._unacked
            if not tolerated:
                del self._unacked[message.seq]
                message.enqueued_at = trace_now()  # dwell restarts
                if message.trace is not None:
                    message.trace.mark(MARK_ENQUEUED)
                self._items.append(message)
                if self.durability is not None:
                    # The rotation is durable state: restore rebuilds the
                    # queue from pub records (original publish order), so
                    # an unlogged defer would resurrect the chain-head-
                    # buried ordering this rotation just fixed.
                    self.durability.log_defer(self.name, message)
                self._available.notify()
        if tolerated:
            yield_point("queue.defer.tolerated", queue=self.name, message=message)
        else:
            yield_point("queue.deferred", queue=self.name, message=message)

    def requeue_unacked(self) -> int:
        """Crash recovery: everything in flight goes back on the queue."""
        with self._lock:
            pending = sorted(self._unacked.values(), key=lambda m: m.seq)
            for message in reversed(pending):
                self._items.appendleft(message)
            count = len(self._unacked)
            self._unacked.clear()
            if count:
                self._available.notify(count)
        if count:
            yield_point("queue.requeued", queue=self.name, count=count)
        return count

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def unacked_count(self) -> int:
        with self._lock:
            return len(self._unacked)

    def stats(self) -> Dict[str, int]:
        """Queued *and* delivered-but-unacked counts, plus lifetime
        published/acked totals — what an auditor needs to tell transit
        lag (messages still queued or in flight) from loss (published
        but neither queued, in flight, nor acked)."""
        with self._lock:
            return {
                "queued": len(self._items),
                "in_flight": len(self._unacked),
                "published": self.total_published,
                "acked": self.total_acked,
                "decommissioned": int(self.decommissioned),
            }

    def durable_state(self) -> Dict[str, Any]:
        """Snapshot payload for the durability subsystem: every message
        still owed to the subscriber as a wire payload dict (in-flight
        deliveries first, in seq order — the :meth:`requeue_unacked`
        ordering a crash produces), plus the lifetime counters."""
        with self._lock:
            owed = sorted(self._unacked.values(), key=lambda m: m.seq)
            owed.extend(self._items)
            pending = []
            for message in owed:
                payload = json.loads(message.to_json())
                payload.pop("trace", None)
                pending.append(payload)
            return {
                "pending": pending,
                "decommissioned": self.decommissioned,
                "published": self.total_published,
                "acked": self.total_acked,
            }

    def restore_state(
        self,
        messages: List[Message],
        published: int,
        acked: int,
        decommissioned: bool,
    ) -> None:
        """Re-inject restored messages directly (crash recovery).

        Bypasses :meth:`publish` deliberately: admission control must
        not re-shed or re-coalesce a backlog the original run already
        admitted — restore reproduces state, it does not re-decide."""
        with self._lock:
            self._items.clear()
            self._unacked.clear()
            for message in messages:
                message.enqueued_at = trace_now()
                self._items.append(message)
                if self.flow is not None:
                    self.flow.register(message)
            self.total_published = published
            self.total_acked = acked
            self.decommissioned = decommissioned
            self._available.notify_all()

    def peek_all(self) -> List[Message]:
        with self._lock:
            return list(self._items)

    def peek_unacked(self) -> List[Message]:
        """Deliveries popped but not yet acked/nacked, in seq order.

        The generation gate needs these: a message held by a parallel
        worker is invisible to :meth:`peek_all`, and flushing dependency
        counters while it is mid-apply wipes state the apply is about to
        bump."""
        with self._lock:
            return sorted(self._unacked.values(), key=lambda m: m.seq)
