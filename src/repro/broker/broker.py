"""The broker: routing from publisher apps to subscriber queues, plus the
publisher metadata registry backing Synapse's static checks (§4.5)."""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.broker.message import Message
from repro.broker.queue import SubscriberQueue
from repro.errors import BrokerError
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.tracing import STAGE_FORWARD, STAGE_ROUTE, trace_now


class Broker:
    """Reliable pub/sub fabric between services.

    Every subscriber application owns one durable queue; a queue receives
    the messages of every publisher app it is bound to. The broker also
    stores each publisher's *publisher file*: the models/attributes it
    publishes and its delivery mode, consumed by subscribers for static
    validation (§3.1, §4.5).

    ``loss_probability``/``drop_next`` inject message loss to reproduce
    the RabbitMQ-upgrade incident of §6.5.
    """

    def __init__(
        self,
        default_queue_limit: Optional[int] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._queues: Dict[str, SubscriberQueue] = {}
        #: subscriber app -> set of publisher apps it listens to
        self._bindings: Dict[str, Set[str]] = {}
        #: publisher app -> model name -> (fields, delivery_mode)
        self._publications: Dict[str, Dict[str, Tuple[List[str], str]]] = {}
        self._publisher_modes: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._default_queue_limit = default_queue_limit
        self._rng = random.Random(seed)
        self.loss_probability = 0.0
        self._drop_next = 0
        #: Shared with the owning ecosystem (an ecosystem adopting a
        #: pre-built broker adopts this registry).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Flight recorder (bound by the owning ecosystem): every dropped
        #: routing gets a structured event so a postmortem dump names the
        #: exact lost message (§6.5).
        self.recorder = None
        #: Tracer (bound by the owning ecosystem): traced messages bound
        #: for remote shards leave their origin-side spans here as a
        #: partial trace before the wire copy departs.
        self.tracer = None
        #: FlowController (bound via :meth:`attach_flow` when the owning
        #: ecosystem enables flow control): every queue gets per-queue
        #: admission credits and a coalescing index.
        self.flow = None
        #: Shard seam (bound via :meth:`attach_placement` by the shard
        #: runtime): ``(is_local, forwarder)``. ``None`` means every
        #: subscriber queue is drained in this process.
        self._placement = None
        #: DurabilityManager (bound via :meth:`attach_durability` when
        #: the owning ecosystem enables durability): publishes and queue
        #: transitions are logged to the write-ahead log.
        self.durability = None
        # Registry-backed atomic counters: concurrent publishers used to
        # bump plain ints outside self._lock and lose increments.
        self._dropped = self.metrics.counter("broker.dropped")
        self._routed = self.metrics.counter("broker.routed")

    @property
    def dropped_messages(self) -> int:
        return self._dropped.value

    @property
    def total_routed(self) -> int:
        return self._routed.value

    # -- publisher metadata ("publisher files") ------------------------------

    def register_publication(
        self, app: str, model: str, fields: List[str], delivery_mode: str
    ) -> None:
        with self._lock:
            models = self._publications.setdefault(app, {})
            existing = models.get(model)
            if existing is not None:
                fields = sorted(set(existing[0]) | set(fields))
            models[model] = (list(fields), delivery_mode)
            self._publisher_modes[app] = delivery_mode

    def published_fields(self, app: str, model: str) -> Optional[List[str]]:
        models = self._publications.get(app)
        if models is None or model not in models:
            return None
        return list(models[model][0])

    def publisher_mode(self, app: str) -> Optional[str]:
        return self._publisher_modes.get(app)

    def published_models(self, app: str) -> List[str]:
        return sorted(self._publications.get(app, {}))

    # -- queue management ---------------------------------------------------------

    def queue_for(self, subscriber_app: str) -> SubscriberQueue:
        with self._lock:
            queue = self._queues.get(subscriber_app)
            if queue is None:
                queue = SubscriberQueue(
                    subscriber_app, max_size=self._default_queue_limit
                )
                if self.flow is not None:
                    queue.flow = self.flow.for_queue(queue)
                queue.durability = self.durability
                self._queues[subscriber_app] = queue
            return queue

    def attach_flow(self, controller) -> None:
        """Enable flow control: give every queue (existing and future)
        its per-queue admission/coalescing state."""
        with self._lock:
            self.flow = controller
            for queue in self._queues.values():
                queue.flow = controller.for_queue(queue)

    def attach_durability(self, manager) -> None:
        """Enable durability logging: every queue (existing and future)
        logs its state transitions through ``manager``, and every
        publish leaves an ``out`` record."""
        with self._lock:
            self.durability = manager
            for queue in self._queues.values():
                queue.durability = manager

    def attach_placement(self, is_local, forwarder) -> None:
        """Shard seam: ``is_local(subscriber_app)`` says whether that
        queue is drained on this shard; ``forwarder(subscriber_app,
        payload_json)`` ships the wire payload to the owning shard, whose
        :meth:`deliver_remote` enqueues it there (so flow admission and
        routing spans run where the queue is actually drained)."""
        with self._lock:
            self._placement = (is_local, forwarder)

    def bind(self, subscriber_app: str, publisher_app: str) -> SubscriberQueue:
        """Subscribe ``subscriber_app``'s queue to ``publisher_app``."""
        queue = self.queue_for(subscriber_app)
        with self._lock:
            self._bindings.setdefault(subscriber_app, set()).add(publisher_app)
        return queue

    def bindings_of(self, subscriber_app: str) -> Set[str]:
        return set(self._bindings.get(subscriber_app, set()))

    def subscribers_of(self, publisher_app: str) -> List[str]:
        with self._lock:
            return sorted(
                sub for sub, pubs in self._bindings.items() if publisher_app in pubs
            )

    # -- routing ----------------------------------------------------------------

    def publish(self, message: Message) -> None:
        """Fan the message out to every bound subscriber queue.

        Each queue receives its own wire-format copy, so subscribers can
        never observe each other's mutations. The message is serialised
        *once* per publish; each queue deserialises its own copy from the
        shared payload (one ``to_json`` instead of one per subscriber).

        Under a shard placement, queues owned by other shards receive the
        same wire payload via the forwarder instead of a local enqueue.
        """
        if self.durability is not None:
            # Logged before fan-out: the publisher's version store is
            # already bumped, so the record carries the counter state a
            # restored process must resume publishing from.
            self.durability.log_out(message)
        with self._lock:
            targets = [
                (sub, self._queues[sub])
                for sub, pubs in self._bindings.items()
                if message.app in pubs and sub in self._queues
            ]
            placement = self._placement
        if placement is not None:
            is_local, forwarder = placement
            local = [(sub, queue) for sub, queue in targets if is_local(sub)]
            remote = [sub for sub, _ in targets if not is_local(sub)]
        else:
            local, remote = targets, []
        # Graduated backpressure, stage one: stall the publishing thread
        # while a target queue is out of admission credits ("slow before
        # shed before kill"). Off unless the flow config sets a delay.
        # Remote queues exercise admission on their owning shard instead.
        delay = 0.0
        for _, queue in local:
            if queue.flow is not None:
                delay = max(delay, queue.flow.publish_delay())
        if delay > 0:
            time.sleep(delay)
        payload: Optional[str] = None
        for sub, queue in local:
            if self._should_drop():
                self._dropped.increment()
                if self.recorder is not None:
                    self.recorder.record_event(
                        "broker.drop",
                        queue=queue.name,
                        uid=message.uid,
                        app=message.app,
                    )
                continue
            if payload is None:
                payload = message.to_json()
            if message.trace is None:
                queue.publish(Message.from_json(payload))
            else:
                start = trace_now()
                copy = Message.from_json(payload)
                queue.publish(copy)
                if copy.trace is not None:
                    copy.trace.add(STAGE_ROUTE, start, trace_now() - start)
            self._routed.increment()
        for sub in remote:
            if self._should_drop():
                self._dropped.increment()
                if self.recorder is not None:
                    self.recorder.record_event(
                        "broker.drop",
                        queue=sub,
                        uid=message.uid,
                        app=message.app,
                    )
                continue
            if payload is None:
                payload = message.to_json()
            if message.trace is None:
                forwarder(sub, payload)
            else:
                # The wire copy was serialized before this span exists,
                # so the forward span stays origin-local: the subscriber
                # shard finishes the trace, and this shard keeps the
                # publisher half (intercept/route/forward) as a partial
                # for cross-shard assembly (``trace_fetch``).
                start = trace_now()
                forwarder(sub, payload)
                message.trace.add(STAGE_FORWARD, start, trace_now() - start)
                if self.tracer is not None:
                    self.tracer.record_partial(message.trace)

    def deliver_remote(self, subscriber_app: str, payload: str) -> None:
        """Enqueue a wire payload forwarded from another shard.

        Runs on the shard that owns ``subscriber_app``'s queue, so flow
        admission, routing spans and the routed counter all land where
        the queue is drained.
        """
        queue = self.queue_for(subscriber_app)
        if queue.flow is not None:
            delay = queue.flow.publish_delay()
            if delay > 0:
                time.sleep(delay)
        start = trace_now()
        copy = Message.from_json(payload)
        queue.publish(copy)
        if copy.trace is not None:
            copy.trace.add(STAGE_ROUTE, start, trace_now() - start)
        self._routed.increment()

    # -- fault injection -----------------------------------------------------------

    def drop_next(self, count: int = 1) -> None:
        with self._lock:
            self._drop_next += count

    def reseed(self, seed: int) -> None:
        """Re-seed the loss RNG so chaos runs are reproducible from any
        point (fault-injection determinism audit)."""
        with self._lock:
            self._rng = random.Random(seed)

    def _should_drop(self) -> bool:
        with self._lock:
            if self._drop_next > 0:
                self._drop_next -= 1
                return True
        return self.loss_probability > 0 and self._rng.random() < self.loss_probability

    # -- introspection ----------------------------------------------------------

    def backlog(self) -> Dict[str, int]:
        with self._lock:
            return {name: len(queue) for name, queue in self._queues.items()}

    def in_flight(self) -> Dict[str, int]:
        """Per-queue delivered-but-unacked counts. ``backlog()`` alone
        undercounts transit lag: a message a worker has popped but not
        acked is neither queued nor applied."""
        with self._lock:
            return {name: queue.unacked_count for name, queue in self._queues.items()}

    def queue_stats(self, subscriber_app: Optional[str] = None) -> Dict[str, Dict[str, int]]:
        """Full queue accounting (queued/in_flight/published/acked/
        decommissioned) for one subscriber or all of them."""
        with self._lock:
            if subscriber_app is not None:
                queue = self._queues.get(subscriber_app)
                return {subscriber_app: queue.stats()} if queue is not None else {}
            return {name: queue.stats() for name, queue in self._queues.items()}

    def validate_binding(self, subscriber_app: str, publisher_app: str) -> None:
        if publisher_app not in self._publications:
            raise BrokerError(
                f"{subscriber_app!r} subscribes to unknown publisher {publisher_app!r}"
            )
