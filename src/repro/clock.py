"""Clocks used across the library.

Production code paths take a :class:`Clock` so the discrete-event simulator
and deterministic tests can substitute virtual time for wall time.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Wall-clock time source (monotonic for intervals, epoch for stamps)."""

    def now(self) -> float:
        """Seconds since the epoch; used to timestamp published messages."""
        return time.time()

    def monotonic(self) -> float:
        """Monotonic seconds; used to measure intervals."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Manually-advanced clock for deterministic tests and simulation.

    ``sleep`` advances the clock instead of blocking, which makes callback
    delays (e.g. the 100 ms subscriber callbacks of Fig 13(c)) free to
    "execute" in tests.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds


DEFAULT_CLOCK = Clock()
