"""The CDC poller: tail the outbox, feed the publisher path.

One poller per outboxed service. Each :meth:`poll` reads every entry
past the cursor in commit order, publishes it through
``SynapsePublisher.ingest_cdc`` — so dependency collection, delivery
semantics, flow admission, tracing and audits apply exactly as for ORM
writes — and advances the cursor.

Cursor durability has two layers, both through the PR-7 WAL:

1. **Piggyback**: every CDC publish's ``out`` record carries
   ``cur = <outbox seq>``, so cursor-advance is atomic with the
   publisher-counter capture in one WAL append. A crash *before* that
   append leaves the cursor behind the entry → clean republish under
   the entry's stable ``<app>:cdc:<seq>`` uid, deduped by the
   subscriber. A crash *after* it but before queue admission leaves the
   cursor past a never-enqueued entry → replica divergence in the same
   accepted window as the ORM path, healed by audit + targeted repair.
2. **Checkpoint**: each poll batch ends with an explicit
   ``{"t": "cdc", "svc": ..., "cur": ...}`` record (the golden-pinned
   cursor checkpoint), so an idle tail's position survives compaction.

Restore replays both to ``DurabilityManager.cdc_cursors`` (set-to-max)
and pushes them back into the live pollers. At-least-once tailing plus
stable uids makes a kill -9 mid-tail effectively exactly-once.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cdc.outbox import OutboxTable, check_entry_version, entry_row
from repro.durability.wal import SimulatedCrash
from repro.errors import CdcError


class PollCrash:
    """Deterministic crash-point injection for poller recovery tests.

    Points: ``before-publish`` (entry read, nothing durable),
    ``after-publish`` (message published and its ``out`` record — with
    the piggybacked cursor — appended; the explicit checkpoint record
    has not been), ``after-checkpoint`` (batch checkpoint appended).
    """

    POINTS = ("before-publish", "after-publish", "after-checkpoint")

    def __init__(self, point: str, after: int = 1, hard: bool = False):
        if point not in self.POINTS:
            raise CdcError(f"unknown poller crash point {point!r}")
        self.point = point
        self.remaining = after
        self.hard = hard
        self.fired = False

    def fire(self, point: str) -> None:
        if self.fired or point != self.point:
            return
        self.remaining -= 1
        if self.remaining > 0:
            return
        self.fired = True
        if self.hard:  # pragma: no cover - exercised via subprocesses
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(f"injected poller crash at {point}")


class CdcPoller:
    """Tails one service's outbox into its publisher."""

    def __init__(self, service: Any, outbox: OutboxTable) -> None:
        self.service = service
        self.outbox = outbox
        #: Highest outbox sequence already published. Restored from the
        #: WAL (piggyback + checkpoint records) after a crash.
        self.cursor = 0
        #: Optional :class:`PollCrash` armed by recovery tests.
        self.injector: Optional[PollCrash] = None
        metrics = service.ecosystem.metrics
        self._published = metrics.counter(f"cdc.{service.name}.published")
        #: Commit-to-publish latency of each tailed entry.
        self.poll_lag = metrics.histogram(f"cdc.{service.name}.poll_lag")

    # -- introspection -----------------------------------------------------

    def backlog(self) -> int:
        return self.outbox.backlog(self.cursor)

    def idle(self) -> bool:
        return self.backlog() == 0

    # -- the tail loop -----------------------------------------------------

    def poll(self, max_entries: Optional[int] = None) -> int:
        """Publish every outbox entry past the cursor (bounded by
        ``max_entries``); returns how many were published."""
        entries = self.outbox.pending(self.cursor, limit=max_entries)
        if not entries:
            return 0
        clock = self.service.ecosystem.clock
        published = 0
        for entry in entries:
            check_entry_version(entry)
            if self.injector is not None:
                self.injector.fire("before-publish")
            seq = entry["seq"]
            model_cls = self.service.registry.get(entry["model"])
            if model_cls is None:
                raise CdcError(
                    f"outbox entry seq={seq} names unknown model "
                    f"{entry['model']!r}"
                )
            self.service.publisher.ingest_cdc(
                entry["kind"], model_cls, entry_row(entry), seq
            )
            if self.injector is not None:
                self.injector.fire("after-publish")
            self.cursor = max(self.cursor, seq)
            published += 1
            committed_at = entry.get("committed_at")
            if committed_at is not None:
                self.poll_lag.record(
                    max(0.0, clock.monotonic() - committed_at)
                )
        if published:
            self._published.increment(published)
            self._checkpoint()
        if self.injector is not None:
            self.injector.fire("after-checkpoint")
        return published

    def _checkpoint(self) -> None:
        durability = self.service.ecosystem.durability
        if durability is not None:
            durability.log_cdc_cursor(self.service.name, self.cursor)

    def adopt_cursor(self, cursor: int) -> None:
        """Restore-time: never move backwards (a replayed piggyback may
        trail a later checkpoint)."""
        self.cursor = max(self.cursor, cursor)
