"""The per-ecosystem CDC manager: one poller per outboxed service.

``Ecosystem.enable_cdc()`` builds one of these (idempotently);
``Service.enable_outbox()`` registers a service with it. The manager is
the quiescence surface: ``drain_all``, ``WorkerFleet.wait_until_idle``
and ``cluster_quiesce`` all poll through it and refuse to report idle
while any outbox tail is non-empty.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.cdc.outbox import OutboxTable
from repro.cdc.poller import CdcPoller


class CdcManager:
    """All CDC pollers of one ecosystem (one per outboxed service)."""

    def __init__(self, ecosystem: Any) -> None:
        self.ecosystem = ecosystem
        self.pollers: Dict[str, CdcPoller] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- registration ------------------------------------------------------

    def register(self, service: Any) -> CdcPoller:
        poller = self.pollers.get(service.name)
        if poller is None:
            outbox = getattr(service, "outbox", None) or OutboxTable(service)
            poller = CdcPoller(service, outbox)
            self.pollers[service.name] = poller
        return poller

    def poller_for(self, service_name: str) -> Optional[CdcPoller]:
        return self.pollers.get(service_name)

    # -- quiescence surface ------------------------------------------------

    def poll_all(self, max_entries: Optional[int] = None) -> int:
        """One tail pass over every poller; returns entries published."""
        return sum(
            poller.poll(max_entries=max_entries)
            for poller in self.pollers.values()
        )

    def backlog(self) -> int:
        return sum(poller.backlog() for poller in self.pollers.values())

    def idle(self) -> bool:
        return self.backlog() == 0

    def outbox_pending(self, service_name: str) -> int:
        """Unpublished outbox entries of one service — the auditor's
        transit-attribution input (outbox-tail lag is transit, not
        §6.5 loss)."""
        poller = self.pollers.get(service_name)
        return poller.backlog() if poller is not None else 0

    # -- restore plumbing --------------------------------------------------

    def cursors(self) -> Dict[str, int]:
        return {
            name: poller.cursor for name, poller in self.pollers.items()
        }

    def adopt_cursors(self, cursors: Dict[str, int]) -> None:
        for name, cursor in cursors.items():
            poller = self.pollers.get(name)
            if poller is not None:
                poller.adopt_cursor(cursor)

    def resync(self) -> None:
        """After a restore rebuilt outbox rows underneath the process:
        re-derive every outbox's next sequence from storage."""
        for poller in self.pollers.values():
            poller.outbox.resync()

    # -- optional background tailer ---------------------------------------

    def start(self, interval: float = 0.05) -> "CdcManager":
        """Run the tail loop in a daemon thread (demos/benchmarks; tests
        and the conformance harness drive :meth:`poll_all` directly for
        determinism)."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.poll_all()

        self._thread = threading.Thread(
            target=loop, name="cdc-poller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(5.0)
        self._thread = None
