"""CDC / transactional-outbox ingest front-end (docs/cdc.md).

The second intercept front-end closing the paper's §7 gap: raw writes
that bypass the ORM commit a sequenced outbox record in the same engine
transaction, a CDC poller tails the outbox in commit order into the
ordinary publisher path, and the cursor is checkpointed through the
durability WAL so a kill -9 mid-tail resumes without loss.
"""

from repro.cdc.manager import CdcManager
from repro.cdc.outbox import (
    OUTBOX_MODEL_NAME,
    OUTBOX_VERSION,
    OutboxTable,
    RawSession,
    check_entry_version,
    entry_row,
)
from repro.cdc.poller import CdcPoller, PollCrash

__all__ = [
    "CdcManager",
    "CdcPoller",
    "OutboxTable",
    "OUTBOX_MODEL_NAME",
    "OUTBOX_VERSION",
    "PollCrash",
    "RawSession",
    "check_entry_version",
    "entry_row",
]
