"""The saga scenario pack: compensating writes through both front-ends.

A classic order/payment/inventory saga over three heterogeneous-store
services. Order placement and payment go through the ORM interceptor;
inventory reservations and their compensating releases go through the
CDC raw-write front-end (``raw_session``) — the workload that proves
both intercept paths compose under one delivery contract.

Per saga::

    1. order:      ORM create   Order(qty, state="placed")
    2. inventory:  raw insert   Reservation(order_id, qty, "reserved")
    3. payment:    ORM create   Payment(order_id, approved|declined)
    4a. approved:  ORM update   Order.state = "confirmed"
    4b. declined:  raw update   Reservation.state = "released"   (compensation)
                   ORM update   Order.state = "cancelled"

The ``INV_SAGA`` invariant (``saga.inventory-balance``) holds at
quiescence: every unit ordered is either still reserved or was released
by a compensation — ``reserved_qty + released_qty == ordered_qty`` —
and per order the reservation state matches the order outcome
(confirmed ⇒ reserved, cancelled ⇒ released).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class SagaOutcome:
    """What one driven saga did (the demo prints these)."""

    order_id: Any
    qty: int
    approved: bool


@dataclass
class SagaEcosystem:
    """The three-service saga topology plus its model classes."""

    eco: Any
    order: Any
    payment: Any
    inventory: Any
    order_cls: type
    payment_cls: type
    outcomes: List[SagaOutcome] = field(default_factory=list)

    def subscribing_services(self) -> List[Any]:
        return [self.order, self.payment, self.inventory]


def build_saga_ecosystem(mode: str = "causal", seed: int = 0) -> SagaEcosystem:
    """Order on a relational store, payment and inventory on document
    stores; every service both publishes its own model and subscribes
    to the others it acts on."""
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model

    eco = Ecosystem(seed=seed)
    order = eco.service(
        "order", database=PostgresLike("order-db"), delivery_mode=mode
    )
    payment = eco.service(
        "payment", database=MongoLike("payment-db"), delivery_mode=mode
    )
    inventory = eco.service(
        "inventory", database=MongoLike("inventory-db"), delivery_mode=mode
    )

    @order.model(publish=["customer", "qty", "state"], name="Order")
    class Order(Model):
        customer = Field(str)
        qty = Field(int, default=0)
        state = Field(str, default="placed")

    @payment.model(publish=["order_id", "amount", "state"], name="Payment")
    class Payment(Model):
        order_id = Field(int)
        amount = Field(int, default=0)
        state = Field(str, default="pending")

    @inventory.model(publish=["order_id", "qty", "state"], name="Reservation")
    class Reservation(Model):
        order_id = Field(int)
        qty = Field(int, default=0)
        state = Field(str, default="reserved")

    @payment.model(
        subscribe={
            "from": "order",
            "fields": ["customer", "qty", "state"],
            "mode": mode,
        },
        name="Order",
    )
    class PaymentOrder(Model):
        customer = Field(str)
        qty = Field(int, default=0)
        state = Field(str, default="")

    @inventory.model(
        subscribe={
            "from": "order",
            "fields": ["customer", "qty", "state"],
            "mode": mode,
        },
        name="Order",
    )
    class InventoryOrder(Model):
        customer = Field(str)
        qty = Field(int, default=0)
        state = Field(str, default="")

    @order.model(
        subscribe={
            "from": "inventory",
            "fields": ["order_id", "qty", "state"],
            "mode": mode,
        },
        name="Reservation",
    )
    class OrderReservation(Model):
        order_id = Field(int)
        qty = Field(int, default=0)
        state = Field(str, default="")

    @order.model(
        subscribe={
            "from": "payment",
            "fields": ["order_id", "amount", "state"],
            "mode": mode,
        },
        name="Payment",
    )
    class OrderPayment(Model):
        order_id = Field(int)
        amount = Field(int, default=0)
        state = Field(str, default="")

    # The raw-write front-end: reservations and compensating releases
    # bypass the ORM and flow through the transactional outbox.
    inventory.enable_outbox()
    return SagaEcosystem(
        eco=eco,
        order=order,
        payment=payment,
        inventory=inventory,
        order_cls=Order,
        payment_cls=Payment,
    )


def run_saga(saga: SagaEcosystem, index: int, qty: int,
             approved: bool) -> SagaOutcome:
    """Drive one saga end to end (compensating on decline)."""
    order_cls, payment_cls = saga.order_cls, saga.payment_cls
    with saga.order.controller():
        placed = order_cls.create(customer=f"cust-{index}", qty=qty)
    raw = saga.inventory.raw_session()
    reservation = raw.insert(
        "Reservation",
        {"order_id": placed.id, "qty": qty, "state": "reserved"},
    )
    with saga.payment.controller():
        payment_cls.create(
            order_id=placed.id,
            amount=qty * 10,
            state="approved" if approved else "declined",
        )
    if approved:
        with saga.order.controller():
            placed.state = "confirmed"
            placed.save()
    else:
        # Compensation: release the hold through the same raw front-end
        # that took it, then cancel the order through the ORM.
        raw.update("Reservation", reservation["id"], {"state": "released"})
        with saga.order.controller():
            placed.state = "cancelled"
            placed.save()
    outcome = SagaOutcome(order_id=placed.id, qty=qty, approved=approved)
    saga.outcomes.append(outcome)
    return outcome


def run_sagas(saga: SagaEcosystem, count: int, seed: int = 0,
              decline_every: int = 3) -> List[SagaOutcome]:
    """Drive ``count`` sagas with a deterministic mix of approvals and
    declines (every ``decline_every``-th declines), then drain."""
    rng = random.Random(seed)
    for i in range(count):
        run_saga(
            saga,
            index=i,
            qty=rng.randint(1, 5),
            approved=(i + 1) % decline_every != 0,
        )
    saga.eco.drain_all()
    return saga.outcomes


def _rows(service: Any, model_name: str) -> List[Dict[str, Any]]:
    model_cls = service.registry.get(model_name)
    return model_cls.__mapper__._do_where({}, None, None)


def check_saga_invariant(saga: SagaEcosystem) -> List[str]:
    """``INV_SAGA`` at quiescence; returns one detail string per
    imbalance (empty = the books balance).

    Checked against the *publisher-side* rows (order's orders,
    inventory's reservations): replication fidelity is the audit's job,
    saga balance is this one's.
    """
    problems: List[str] = []
    orders = {row["id"]: row for row in _rows(saga.order, "Order")}
    reservations = _rows(saga.inventory, "Reservation")

    ordered = sum(row.get("qty") or 0 for row in orders.values())
    reserved = sum(
        row.get("qty") or 0 for row in reservations
        if row.get("state") == "reserved"
    )
    released = sum(
        row.get("qty") or 0 for row in reservations
        if row.get("state") == "released"
    )
    if reserved + released != ordered:
        problems.append(
            f"inventory imbalance: reserved={reserved} + released={released} "
            f"!= ordered={ordered}"
        )
    seen_orders = set()
    for row in reservations:
        order_row = orders.get(row.get("order_id"))
        if order_row is None:
            problems.append(
                f"reservation {row.get('id')} references unknown order "
                f"{row.get('order_id')}"
            )
            continue
        seen_orders.add(order_row["id"])
        state, order_state = row.get("state"), order_row.get("state")
        if order_state == "confirmed" and state != "reserved":
            problems.append(
                f"order {order_row['id']} confirmed but its reservation is "
                f"{state!r} (expected 'reserved')"
            )
        elif order_state == "cancelled" and state != "released":
            problems.append(
                f"order {order_row['id']} cancelled but its reservation is "
                f"{state!r} (compensation never landed)"
            )
    for order_id, order_row in orders.items():
        if order_row.get("state") in ("confirmed", "cancelled") \
                and order_id not in seen_orders:
            problems.append(
                f"order {order_id} settled as {order_row['state']!r} with "
                "no reservation at all"
            )
    return problems
