"""``python -m repro saga --demo`` — the CDC saga scenario end to end.

Drives a mix of approved and declined order/payment/inventory sagas
through both front-ends (ORM interceptor and raw-write outbox), proves
the ``INV_SAGA`` inventory balance and digest-equal replicas at
quiescence, then injects a broker message loss mid-saga and heals the
resulting divergence with targeted repair. Exits 0 iff the sagas
converge, the books balance, and the injected divergence is detected
and repaired.
"""

from __future__ import annotations

from typing import List

from repro.cdc.saga import (
    build_saga_ecosystem,
    check_saga_invariant,
    run_saga,
    run_sagas,
)


def _int_flag(args: List[str], name: str, default: int) -> int:
    if name in args:
        return int(args[args.index(name) + 1])
    return default


def _str_flag(args: List[str], name: str, default: str) -> str:
    if name in args:
        return args[args.index(name) + 1]
    return default


def saga_command(args: List[str]) -> int:
    if "--demo" not in args:
        print("the saga command currently only supports --demo")
        return 1
    count = _int_flag(args, "--sagas", 6)
    mode = _str_flag(args, "--mode", "causal")
    seed = _int_flag(args, "--seed", 0)

    saga = build_saga_ecosystem(mode=mode, seed=seed)
    eco = saga.eco
    print(
        f"saga demo: {count} sagas, mode={mode}, "
        "order=relational payment/inventory=document, "
        "reservations via raw-write outbox"
    )
    outcomes = run_sagas(saga, count, seed=seed)
    approved = sum(1 for o in outcomes if o.approved)
    declined = len(outcomes) - approved
    for o in outcomes:
        verdict = "approved " if o.approved else "declined, compensated"
        print(f"  order {o.order_id}: qty={o.qty} [{verdict}]")
    print(f"converged: {approved} approved, {declined} declined+released")

    problems = check_saga_invariant(saga)
    if problems:
        print("FAILED: saga invariant broken at quiescence:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("INV_SAGA holds: reserved + released == ordered")

    audits = {svc.name: svc.audit_replication()
              for svc in saga.subscribing_services()}
    if not all(report.in_sync for report in audits.values()):
        print("FAILED: replicas divergent after a clean saga run:")
        for name, report in audits.items():
            if not report.in_sync:
                for line in report.summary_lines():
                    print(f"  {line}")
        return 1
    print("replicas digest-equal across all three services")

    snapshot = eco.metrics.snapshot()
    appended = snapshot.get("cdc.inventory.appended", 0)
    published = snapshot.get("cdc.inventory.published", 0)
    print(f"cdc: {appended} outbox entries appended, {published} published")

    # -- injected divergence + targeted heal -------------------------------
    print()
    print("injecting broker loss mid-saga...")
    eco.broker.drop_next(1)
    run_saga(saga, index=count, qty=3, approved=True)
    eco.drain_all()
    divergent = {}
    for svc in saga.subscribing_services():
        report = svc.audit_replication()
        if not report.in_sync:
            divergent[svc] = report
    if not divergent:
        print("FAILED: injected loss did not diverge any replica")
        return 1
    healed = True
    for svc, report in divergent.items():
        print(
            f"  {svc.name}: {report.divergent_total} divergent objects "
            "detected, repairing..."
        )
        result = svc.repair_replication(report=report)
        if not result.verified_in_sync:
            healed = False
            print(f"  {svc.name}: FAILED to heal")
    if not healed:
        print("FAILED: divergence survived targeted repair")
        return 1
    problems = check_saga_invariant(saga)
    if problems:
        print("FAILED: saga invariant broken after repair:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("OK: divergence healed by targeted repair, books still balance")
    return 0
