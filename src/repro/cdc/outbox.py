"""The transactional outbox: ORM-bypassing writes Synapse still sees.

The paper concedes (§7) that Synapse misses any write that bypasses the
ORM. The outbox closes that gap the way production systems do: a
``raw_write`` commits the data row *and* a sequenced outbox record in
the same engine transaction, so the write and its intent-to-publish are
atomic. The CDC poller (:mod:`repro.cdc.poller`) tails the outbox in
commit order and feeds each entry into the ordinary publisher path.

Atomicity per engine family:

- engines with real transactions (relational, TokuMX-like document):
  the data write and the outbox insert run inside one ``db.begin()``;
  the engine's own undo log rolls both back together.
- engines without transactions: both ops run under the engine-wide
  operation lock, and a failed outbox insert manually undoes the data
  write (delete the insert / restore the prior row) before re-raising —
  the same all-or-nothing contract, enforced by the front-end.

Sequencing: the outbox sequence is allocated *inside* the engine's
critical section (the transaction mutex or the operation lock), so
sequence order equals commit order and the poller's cursor can never
pass an entry that has not committed yet.

On-disk row format (version ``OUTBOX_VERSION``; golden-pinned in
``tests/cdc/test_outbox.py``)::

    {"id": <seq>, "seq": <seq>, "v": 1, "kind": "create|update|delete",
     "model": "<ModelName>", "row_id": <id>,
     "attributes": "<json object, sorted keys>",
     "committed_at": <monotonic float>}

``id == seq`` makes WAL-replay dedup a primary-key lookup. Rows from a
*newer* format version are refused by the poller; rows missing ``v``
(legacy) are accepted as version 1.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional

from repro.errors import CdcError
from repro.orm.fields import Field
from repro.orm.mapper import mapper_for
from repro.orm.model import Model, bind_model

#: Outbox row format version. Bump when a field changes meaning; the
#: poller refuses rows from a newer version instead of misreading them.
OUTBOX_VERSION = 1

#: The registry name of each service's outbox model. Registering it as
#: an ordinary model means snapshots capture and restore outbox rows
#: with no extra durability code.
OUTBOX_MODEL_NAME = "SynapseOutbox"


def _make_outbox_model() -> type:
    """A fresh outbox model class per service: ``bind_model`` stores the
    mapper on the class, so services cannot share one."""

    class SynapseOutbox(Model):
        seq = Field(int)
        v = Field(int, default=OUTBOX_VERSION)
        kind = Field(str)
        model = Field(str)
        row_id = Field(int)
        attributes = Field(str)
        committed_at = Field(float)

    return SynapseOutbox


def entry_row(entry: Dict[str, Any]) -> Dict[str, Any]:
    """The data row an outbox entry describes (id restored)."""
    row = json.loads(entry["attributes"]) if entry.get("attributes") else {}
    row["id"] = entry["row_id"]
    return row


def check_entry_version(entry: Dict[str, Any]) -> None:
    """Refuse entries from a newer outbox format; rows missing ``v``
    (legacy) pass as version 1."""
    version = entry.get("v", 1)
    if version is None:
        version = 1
    if version > OUTBOX_VERSION:
        raise CdcError(
            f"outbox entry seq={entry.get('seq')} is format version "
            f"{version}, newer than supported {OUTBOX_VERSION}; upgrade "
            "this poller before the writer"
        )


class OutboxTable:
    """One service's transactional outbox over its own engine."""

    def __init__(self, service: Any) -> None:
        if service.database is None:
            raise CdcError(
                f"service {service.name!r} has no database; a raw-write "
                "front-end needs an engine to commit into"
            )
        self.service = service
        self.model_cls = _make_outbox_model()
        self.mapper = mapper_for(service.database)
        # No interceptor: outbox rows must not themselves publish. The
        # registry binding is what makes snapshots carry the outbox.
        bind_model(
            self.model_cls,
            service.database,
            registry=service.registry,
            mapper=self.mapper,
        )
        self._seq_lock = threading.Lock()
        self._next_seq = self._max_seq() + 1
        metrics = service.ecosystem.metrics
        self._appended = metrics.counter(f"cdc.{service.name}.appended")

    # -- sequencing --------------------------------------------------------

    def _max_seq(self) -> int:
        rows = self.mapper._do_where({}, None, None)
        return max((row.get("seq") or 0 for row in rows), default=0)

    def resync(self) -> None:
        """Re-derive the next sequence from storage — after a restore
        rebuilt the outbox rows underneath this process."""
        with self._seq_lock:
            self._next_seq = max(self._next_seq, self._max_seq() + 1)

    def _allocate_seq(self) -> int:
        with self._seq_lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    # -- reads (poller side) ----------------------------------------------

    def pending(
        self, after_seq: int, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Entries past the cursor, in commit (= sequence) order."""
        rows = [
            row
            for row in self.mapper._do_where({}, None, None)
            if (row.get("seq") or 0) > after_seq
        ]
        rows.sort(key=lambda row: row["seq"])
        return rows[:limit] if limit is not None else rows

    def backlog(self, after_seq: int) -> int:
        return len(self.pending(after_seq))

    # -- the write path ----------------------------------------------------

    def write(self, kind: str, model_cls: type, row_id: Any,
              attrs: Dict[str, Any]) -> Dict[str, Any]:
        """Commit one raw write and its outbox record atomically.

        Returns the written data row. Unpublished models take a plain
        raw write with no outbox entry — the exact parity of the ORM
        path, where unpublished writes are not intercepted either.
        """
        service = self.service
        mapper = model_cls.__mapper__
        if mapper is None or mapper.db is None:
            raise CdcError(
                f"model {model_cls.__name__} is not bound to an engine"
            )
        published = service.published_fields_for(model_cls) is not None
        db = service.database

        def perform() -> Dict[str, Any]:
            if kind == "create":
                return mapper._do_insert(dict(attrs))
            if kind == "update":
                return mapper._do_update(row_id, dict(attrs))
            if kind == "delete":
                return mapper._do_delete(row_id)
            raise CdcError(f"unknown raw-write kind {kind!r}")

        if not published:
            with db._lock:
                return perform()

        if db.supports_transactions:
            active = db.current_transaction()
            if active is not None:
                # Already inside an engine transaction: both writes join
                # it and ride its undo log; post-commit bookkeeping
                # waits for the wrapping commit.
                row = perform()
                entry = self._append_entry(kind, model_cls, row)
                active.on_commit.append(
                    lambda _txn, entry=entry: self._after_commit(entry)
                )
                return row
            with db.begin():
                row = perform()
                entry = self._append_entry(kind, model_cls, row)
            self._after_commit(entry)
            return row

        # Non-transactional engine: the operation lock is the critical
        # section; a failed outbox insert manually undoes the data write.
        with db._lock:
            prior = (
                mapper._do_find(row_id) if kind in ("update", "delete")
                else None
            )
            row = perform()
            try:
                entry = self._append_entry(kind, model_cls, row)
            except Exception:
                self._undo(mapper, kind, row, prior)
                raise
        self._after_commit(entry)
        return row

    @staticmethod
    def _undo(mapper: Any, kind: str, row: Dict[str, Any],
              prior: Optional[Dict[str, Any]]) -> None:
        if kind == "create":
            mapper._do_delete(row["id"])
        elif kind == "update" and prior is not None:
            mapper._do_update(
                prior["id"], {k: v for k, v in prior.items() if k != "id"}
            )
        elif kind == "delete" and prior is not None:
            mapper._do_insert(dict(prior))

    def _append_entry(
        self, kind: str, model_cls: type, row: Dict[str, Any]
    ) -> Dict[str, Any]:
        seq = self._allocate_seq()
        attributes = {k: v for k, v in row.items() if k != "id"}
        entry = {
            "id": seq,
            "seq": seq,
            "v": OUTBOX_VERSION,
            "kind": kind,
            "model": model_cls.__name__,
            "row_id": row.get("id"),
            "attributes": json.dumps(attributes, sort_keys=True),
            "committed_at": self.service.ecosystem.clock.monotonic(),
        }
        self.mapper._do_insert(dict(entry))
        return entry

    def _after_commit(self, entry: Dict[str, Any]) -> None:
        """Post-commit bookkeeping: the obx WAL record (engines are
        in-memory, so a crash before the poll would otherwise lose the
        raw write entirely) and the appended counter."""
        self._appended.increment()
        durability = self.service.ecosystem.durability
        if durability is not None:
            durability.log_outbox(self.service.name, entry)

    def restore_entry(self, entry: Dict[str, Any]) -> None:
        """WAL-replay upsert of one outbox row (dedup by ``id == seq``)."""
        if self.mapper._do_find(entry["id"]) is None:
            self.mapper._do_insert(dict(entry))
        with self._seq_lock:
            self._next_seq = max(self._next_seq, entry["seq"] + 1)


class RawSession:
    """The ORM-bypassing write surface: ``service.raw_session()``.

    ::

        raw = inventory.raw_session()
        row = raw.insert(Reservation, {"order_id": 7, "qty": 3})
        raw.update(Reservation, row["id"], {"state": "released"})

    Every call commits the data write and its outbox record atomically;
    the CDC poller replicates them with the same delivery semantics as
    ORM writes. Models may be passed as classes or registry names.
    """

    def __init__(self, outbox: OutboxTable) -> None:
        self.outbox = outbox

    def _resolve(self, model: Any) -> type:
        if isinstance(model, str):
            model_cls = self.outbox.service.registry.get(model)
            if model_cls is None:
                raise CdcError(
                    f"service {self.outbox.service.name!r} has no model "
                    f"named {model!r}"
                )
            return model_cls
        return model

    def insert(self, model: Any, attrs: Dict[str, Any]) -> Dict[str, Any]:
        return self.outbox.write("create", self._resolve(model), None, attrs)

    def update(self, model: Any, row_id: Any,
               attrs: Dict[str, Any]) -> Dict[str, Any]:
        return self.outbox.write("update", self._resolve(model), row_id, attrs)

    def delete(self, model: Any, row_id: Any) -> Dict[str, Any]:
        return self.outbox.write("delete", self._resolve(model), row_id, {})
