"""The per-service view manager: maintains declared read models in the
subscriber apply path and drives cache invalidation.

The subscriber calls :meth:`on_applied` with the engine row transition
of every write it lands (old row state, new row state — captured
around the actual engine write, so coalesced messages contribute
exactly one transition to the merged attributes). Outside a batch the
transition folds into the view states immediately and the affected
cache keys are invalidated in the same step. Inside a batch (the
group-commit path, or a multi-operation message applied as one engine
transaction) transitions are buffered per thread and folded once on
:meth:`commit_batch` — views update and the cache invalidates *once
per batch*, after the engine transaction committed, and an aborted
batch simply drops its buffer (the engine rolled back; the rows never
changed, so neither may the views).

View state lives in memory behind the manager lock and is mirrored to
a Redis-like KV engine (``view:<name>`` hashes) on every fold, so the
read path can serve aggregates off the KV tier with cache-aside
semantics (:meth:`read` / :meth:`read_row`). On crash restore the
states are rebuilt deterministically from the restored base rows
(:meth:`rebuild`) — the WAL replays raw engine writes without firing
this hook, and a full recompute is both simpler and self-auditing.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.views.cache import ReplicatedCache
from repro.views.specs import ViewSpec


class ViewManager:
    """Derived read models + cache tier for one subscribing service."""

    def __init__(self, service: Any, cache: Optional[ReplicatedCache] = None,
                 kv=None) -> None:
        from repro.databases.kv import RedisLike

        self.service = service
        metrics = service.ecosystem.metrics
        self.cache = cache if cache is not None else ReplicatedCache(
            service.name, metrics=metrics
        )
        #: KV engine mirroring each view's state for tiered reads.
        self.kv = kv if kv is not None else RedisLike(f"{service.name}-views")
        self._specs: Dict[str, ViewSpec] = {}
        #: model name -> specs over it (the apply-path dispatch index).
        self._by_model: Dict[str, List[ViewSpec]] = {}
        self._states: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._tls = threading.local()
        self._applied = metrics.counter(f"views.{service.name}.applied")
        self._folds = metrics.counter(f"views.{service.name}.folds")
        self._rebuilds = metrics.counter(f"views.{service.name}.rebuilds")
        self._batch_flushes = metrics.counter(
            f"views.{service.name}.batch_flushes"
        )

    # -- declaration --------------------------------------------------------

    def declare(self, spec: ViewSpec) -> ViewSpec:
        """Register a view and build its state from the current base
        rows (a view declared after bootstrap starts correct)."""
        with self._lock:
            if spec.name in self._specs:
                raise ValueError(f"view {spec.name!r} already declared")
            self._specs[spec.name] = spec
            self._by_model.setdefault(spec.model, []).append(spec)
            self._states[spec.name] = spec.recompute(self._rows(spec.model))
            self._mirror(spec)
        self.cache.invalidate(ReplicatedCache.view_key(spec.name))
        return spec

    def specs(self) -> List[ViewSpec]:
        with self._lock:
            return list(self._specs.values())

    def needs_old_row(self, model: str) -> bool:
        """Apply-path gate: the pre-write row state costs one extra
        engine read, and only aggregate deltas need it — the row cache
        write-through is keyed by id and final state alone."""
        return model in self._by_model

    # -- the apply-path hook -------------------------------------------------

    def on_applied(
        self,
        model: str,
        row_id: Any,
        old_row: Optional[Dict[str, Any]],
        new_row: Optional[Dict[str, Any]],
    ) -> None:
        """One landed engine write. Inside a batch: buffered; outside:
        folded and invalidated immediately."""
        self._applied.increment()
        buffer = getattr(self._tls, "buffer", None)
        if buffer is not None:
            buffer.append((model, row_id, old_row, new_row))
            return
        self._fold([(model, row_id, old_row, new_row)])

    # -- batched apply -------------------------------------------------------

    def begin_batch(self) -> None:
        """Start buffering transitions on this thread. Nests: only the
        outermost commit folds."""
        depth = getattr(self._tls, "depth", 0)
        if depth == 0:
            self._tls.buffer = []
        self._tls.depth = depth + 1

    def commit_batch(self) -> None:
        """Fold the buffered transitions and invalidate each affected
        cache key exactly once."""
        depth = getattr(self._tls, "depth", 0)
        if depth <= 0:
            return
        self._tls.depth = depth - 1
        if self._tls.depth > 0:
            return
        buffer, self._tls.buffer = self._tls.buffer, None
        if buffer:
            self._fold(buffer)
            self._batch_flushes.increment()

    def abort_batch(self) -> None:
        """The engine transaction rolled back: the rows never changed,
        so the buffered transitions must not touch the views. Redone
        writes re-enter through :meth:`on_applied` with fresh row
        states."""
        depth = getattr(self._tls, "depth", 0)
        if depth <= 0:
            return
        self._tls.depth = depth - 1
        if self._tls.depth > 0:
            return
        self._tls.buffer = None

    def in_batch(self) -> bool:
        return getattr(self._tls, "depth", 0) > 0

    # -- folding -------------------------------------------------------------

    def _fold(
        self,
        transitions: List[Tuple[str, Any, Optional[Dict], Optional[Dict]]],
    ) -> None:
        touched_views: Dict[str, ViewSpec] = {}
        row_writes: Dict[str, Optional[Dict[str, Any]]] = {}
        with self._lock:
            for model, row_id, old_row, new_row in transitions:
                for spec in self._by_model.get(model, ()):
                    spec.apply(self._states[spec.name], old_row, new_row)
                    touched_views[spec.name] = spec
                # Last transition per key wins within the batch.
                row_writes[ReplicatedCache.row_key(model, row_id)] = new_row
            for spec in touched_views.values():
                self._mirror(spec)
        self._folds.increment(len(transitions))
        # Invalidation outside the state lock (the cache has its own
        # atomic scripts); once per key per fold. Deletes invalidate,
        # surviving rows write through their final state.
        for key, new_row in row_writes.items():
            if new_row is None:
                self.cache.invalidate(key)
            else:
                self.cache.write_through(key, dict(new_row))
        for name in touched_views:
            self.cache.invalidate(ReplicatedCache.view_key(name))

    def _mirror(self, spec: ViewSpec) -> None:
        """Mirror one view's served value into the KV tier."""
        self.kv.set(f"view:{spec.name}", spec.read(self._states[spec.name]))

    # -- read side -----------------------------------------------------------

    def read(self, name: str) -> Any:
        """Cache-aside read of one view's served value."""
        spec = self._specs[name]
        value, _ = self.cache.read(
            ReplicatedCache.view_key(name),
            lambda: self.kv.get(f"view:{spec.name}"),
        )
        return value

    def read_row(self, model: str, row_id: Any) -> Optional[Dict[str, Any]]:
        """Cache-aside read of one subscribed row, falling back to the
        backing engine on miss."""
        value, _ = self.cache.read(
            ReplicatedCache.row_key(model, row_id),
            lambda: self._find(model, row_id),
        )
        return value

    def peek(self, name: str) -> Any:
        """The authoritative in-memory value (no cache): what the
        conformance checker compares against recomputation."""
        spec = self._specs[name]
        with self._lock:
            return spec.read(self._states[name])

    def canonical(self, name: str) -> Any:
        spec = self._specs[name]
        with self._lock:
            return spec.canonical(self._states[name])

    def recompute_canonical(self, name: str) -> Any:
        """The same projection from a full base-row scan — the
        ``INV_VIEW`` reference value."""
        spec = self._specs[name]
        with self._lock:
            return spec.canonical(spec.recompute(self._rows(spec.model)))

    # -- restore -------------------------------------------------------------

    def rebuild(self) -> int:
        """Recompute every view from the (restored) base rows and drop
        the cache wholesale. WAL replay applies raw engine writes
        without this hook, so restore rebuilds instead of trusting any
        snapshotted view state — deterministic by construction."""
        with self._lock:
            for name, spec in self._specs.items():
                self._states[name] = spec.recompute(self._rows(spec.model))
                self._mirror(spec)
            count = len(self._specs)
        self.cache.flush()
        self._rebuilds.increment()
        return count

    # -- raw row access --------------------------------------------------------

    def _mapper(self, model: str):
        model_cls = self.service.registry.get(model)
        if model_cls is None:
            return None
        mapper = model_cls.__mapper__
        if mapper is None or mapper.db is None:
            return None
        return mapper

    def _rows(self, model: str) -> List[Dict[str, Any]]:
        mapper = self._mapper(model)
        if mapper is None:
            return []
        return mapper._do_where({}, None, None)

    def _find(self, model: str, row_id: Any) -> Optional[Dict[str, Any]]:
        mapper = self._mapper(model)
        if mapper is None:
            return None
        return mapper._do_find(row_id)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            views = {
                name: spec.read(self._states[name])
                for name, spec in self._specs.items()
            }
        return {"views": views, "cache": self.cache.stats()}
