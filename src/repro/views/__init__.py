"""Subscriber-side CQRS: derived read models and the replication-driven
cache tier (docs/read_path.md).

The write side of the repro is the Synapse pipeline — publishers,
write messages, subscriber applies. This package is the read side the
paper's Crowdtap analytics service needed (§2, §6): subscribers declare
*derived* read models (incremental counts, sums, top-k rankings,
per-user feeds) that are maintained in the apply path itself, plus a
:class:`ReplicatedCache` whose invalidation rides the same
broker/subscriber stream as any replica, carrying per-key version
watermarks so a cached read is never staler than the causal frontier
the subscriber has applied.
"""

from repro.views.cache import ReplicatedCache
from repro.views.manager import ViewManager
from repro.views.specs import (
    CountView,
    FeedView,
    SumView,
    TopKView,
    ViewSpec,
)

__all__ = [
    "CountView",
    "FeedView",
    "ReplicatedCache",
    "SumView",
    "TopKView",
    "ViewManager",
    "ViewSpec",
]
