"""The replication-driven cache tier: cache-aside reads with
write-through from the apply path, over the KV engine.

Freshness is a per-key **version watermark**, not a TTL. Every key has
a monotonically increasing version counter in the KV store; the apply
path bumps it (invalidate) or bumps-and-stores the new value
(write-through) *while the write lands*, so the watermark tracks the
causal frontier the subscriber has applied. A cache-aside read:

1. captures the key's current version ``v`` *before* touching the
   backing engine,
2. serves the cached entry only if its version equals ``v`` (an entry
   filled before the latest invalidation can never be served),
3. on miss, loads from the engine and stores ``(value, v)`` — if a
   write raced in between, the current version has moved past ``v``
   and the freshly stored entry is already stale, so the next read
   reloads. A stale value can be *stored*, never *served*.

The interleave events (``cache.read`` / ``cache.invalidate``) are
record-only observe points emitted inside the cache's atomic KV script,
so the checker's event order equals version order — that is what lets
``INV_VIEW`` assert "no cached read is older than an applied write"
deterministically.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.databases.kv import RedisLike
from repro.runtime.interleave import observe_point


class ReplicatedCache:
    """Versioned cache over a Redis-like KV engine for one service."""

    def __init__(
        self, owner: str, kv: Optional[RedisLike] = None, metrics=None
    ) -> None:
        self.owner = owner
        self.kv = kv if kv is not None else RedisLike(f"{owner}-cache")
        if metrics is not None:
            self.hits = metrics.counter(f"cache.{owner}.hits")
            self.misses = metrics.counter(f"cache.{owner}.misses")
            self.stale_fills = metrics.counter(f"cache.{owner}.stale_fills")
            self.invalidations = metrics.counter(
                f"cache.{owner}.invalidations"
            )
            self.write_throughs = metrics.counter(
                f"cache.{owner}.write_throughs"
            )
        else:  # pragma: no cover - bare construction in unit tests
            self.hits = self.misses = self.stale_fills = None
            self.invalidations = self.write_throughs = None

    @staticmethod
    def row_key(model: str, row_id: Any) -> str:
        return f"row:{model}:{row_id}"

    @staticmethod
    def view_key(name: str) -> str:
        return f"view:{name}"

    # -- read side (cache-aside) -------------------------------------------

    def version(self, key: str) -> int:
        return self.kv.get(f"ver:{key}") or 0

    def read(self, key: str, loader: Callable[[], Any]) -> Tuple[Any, bool]:
        """Serve ``key`` from cache, or load-and-fill via ``loader``.
        Returns ``(value, hit)``."""

        def lookup(store: RedisLike):
            version = store.get(f"ver:{key}") or 0
            entry = store.get(f"val:{key}")
            if entry is not None and entry["v"] == version:
                observe_point(
                    "cache.read", key=key, version=version, hit=True
                )
                return version, entry["value"], True
            return version, None, False

        version, value, hit = self.kv.eval(lookup)
        if hit:
            if self.hits is not None:
                self.hits.increment()
            return value, True
        if self.misses is not None:
            self.misses.increment()
        # The engine read happens outside the cache lock (it has its own
        # engine lock and may be arbitrarily slow); ``version`` was
        # captured before it, so a write that lands mid-load moves the
        # watermark past this fill and the entry is born stale.
        value = loader()

        def fill(store: RedisLike):
            current = store.get(f"ver:{key}") or 0
            store.set(f"val:{key}", {"v": version, "value": value})
            observe_point(
                "cache.read", key=key, version=version, hit=False
            )
            return current

        current = self.kv.eval(fill)
        if current != version and self.stale_fills is not None:
            self.stale_fills.increment()
        return value, False

    # -- write side (rides the apply path) ---------------------------------

    def invalidate(self, key: str) -> int:
        """Advance the key's watermark; any cached entry is now
        unservable. Returns the new version."""

        def bump(store: RedisLike):
            version = (store.get(f"ver:{key}") or 0) + 1
            store.set(f"ver:{key}", version)
            observe_point("cache.invalidate", key=key, version=version)
            return version

        version = self.kv.eval(bump)
        if self.invalidations is not None:
            self.invalidations.increment()
        return version

    def write_through(self, key: str, value: Any) -> int:
        """Advance the watermark *and* install the new value at it in
        one atomic step — the next read hits without touching the
        engine, and can never observe the pre-write value."""

        def bump_and_store(store: RedisLike):
            version = (store.get(f"ver:{key}") or 0) + 1
            store.set(f"ver:{key}", version)
            store.set(f"val:{key}", {"v": version, "value": value})
            observe_point("cache.invalidate", key=key, version=version)
            return version

        version = self.kv.eval(bump_and_store)
        if self.write_throughs is not None:
            self.write_throughs.increment()
        return version

    def flush(self) -> None:
        """Drop every entry *and* watermark (rebuild/bootstrap): an
        empty cache serves nothing, so resetting versions is safe."""
        self.kv.flushall()

    def stats(self) -> dict:
        return {
            "hits": self.hits.value if self.hits is not None else 0,
            "misses": self.misses.value if self.misses is not None else 0,
            "invalidations": (
                self.invalidations.value
                if self.invalidations is not None else 0
            ),
            "write_throughs": (
                self.write_throughs.value
                if self.write_throughs is not None else 0
            ),
            "entries": sum(
                1 for key in self.kv.keys("val:")
            ),
        }
