"""``python -m repro views --demo`` — the subscriber read path live.

A publisher drives creates, updates and deletes through replication
while the subscriber maintains four derived read models (a count, a
running sum, a top-k board and per-author feeds) in its apply path,
fronted by a versioned cache:

1. **Incremental aggregates**: every landed write folds its row
   transition into the views; after the workload, each incremental
   state must equal a from-scratch recomputation over the base rows
   (the ``INV_VIEW`` identity).
2. **Cache freshness**: a cold read misses and fills; a repeat read
   hits; a write that rides the replication stream invalidates the key
   so the next read sees the new value. No cached read may be staler
   than an already-applied write.
3. **Restore rebuild**: a kill-and-restart over the same WAL directory
   rebuilds the views from the restored base rows and flushes the
   cache; the rebuilt aggregates must match pre-crash.

Exit 0 iff every aggregate matches recomputation, the hit/invalidate
sequence behaves, and the post-restore rebuild is value-identical.
"""

from __future__ import annotations

from typing import List


def _flag(args: List[str], name: str, default: int) -> int:
    if name in args:
        return int(args[args.index(name) + 1])
    return default


def _build(data_dir: str):
    from repro.core import Ecosystem
    from repro.databases.document import MongoLike
    from repro.databases.relational import PostgresLike
    from repro.orm import Field, Model
    from repro.views import CountView, FeedView, SumView, TopKView

    eco = Ecosystem()
    eco.enable_durability(data_dir=data_dir, snapshot_every=10_000)
    pub = eco.service("pub", database=MongoLike("pub-db"))

    @pub.model(publish=["author", "score"], name="Post")
    class Post(Model):
        author = Field(str)
        score = Field(int, default=0)

    sub = eco.service("sub", database=PostgresLike("sub-db"))

    @sub.model(
        subscribe={"from": "pub", "fields": ["author", "score"]}, name="Post"
    )
    class SubPost(Model):
        author = Field(str)
        score = Field(int, default=0)

    views = sub.enable_views()
    views.declare(CountView("posts", "Post"))
    views.declare(SumView("karma", "Post", "score"))
    views.declare(TopKView("leaderboard", "Post", "score", k=3))
    views.declare(FeedView("timelines", "Post", "author", limit=5))
    return eco, pub, sub, Post


def _check_invariant(views) -> bool:
    """The INV_VIEW identity: incremental == recomputed, per view."""
    clean = True
    for spec in views.specs():
        incremental = views.canonical(spec.name)
        recomputed = views.recompute_canonical(spec.name)
        status = "ok" if incremental == recomputed else "VIOLATION"
        if incremental != recomputed:
            clean = False
        print(f"  {spec.name:<12} incremental={incremental!r:<40} [{status}]")
    return clean


def views_command(args: List[str]) -> int:
    if "--demo" not in args:
        print("the views command currently only supports --demo")
        return 1
    writes = _flag(args, "--writes", 30)

    import shutil
    import tempfile

    data_dir = tempfile.mkdtemp(prefix="repro-views-")
    try:
        return _run_demo(args, writes, data_dir)
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def _run_demo(args: List[str], writes: int, data_dir: str) -> int:
    eco, pub, sub, post_cls = _build(data_dir)
    authors = ["ada", "bob", "cyd"]

    print(f"views demo: {writes} creates across {len(authors)} authors")
    posts = []
    with pub.controller():
        for i in range(writes):
            posts.append(
                post_cls.create(author=authors[i % len(authors)], score=i)
            )
    sub.subscriber.drain()

    print("after create workload:")
    if not _check_invariant(sub.views):
        return 1

    # Phase 2: cache behavior — miss, hit, invalidate-on-write.
    views = sub.views
    views.read("karma")  # cold: miss + fill
    views.read("karma")  # warm: hit
    hits_before = views.cache.stats()["hits"]
    with pub.controller():
        posts[0].score += 1000
        posts[0].save()
    sub.subscriber.drain()
    fresh = views.read("karma")  # invalidated by the apply: miss again
    expected = sum(range(writes)) + 1000
    stats = views.cache.stats()
    print(
        f"cache: hits={stats['hits']} misses={stats['misses']} "
        f"invalidations={stats['invalidations']} "
        f"write_through={stats['write_throughs']}"
    )
    if hits_before < 1:
        print("FAILED: warm read did not hit the cache")
        return 1
    if fresh != expected:
        print(f"FAILED: stale read after applied write ({fresh} != {expected})")
        return 1
    print(f"post-write read is fresh: karma={fresh}")

    # Phase 3: deletes and updates keep the aggregates honest.
    with pub.controller():
        for post in posts[: len(posts) // 3]:
            post.destroy()
        for post in posts[len(posts) // 3:]:
            post.score += 7
            post.save()
    sub.subscriber.drain()
    print("after delete/update workload:")
    if not _check_invariant(views):
        return 1

    # Phase 4: kill-and-restart — views rebuild from restored rows.
    before = {spec.name: views.peek(spec.name) for spec in views.specs()}
    eco.durability.wal.sync()
    eco2, pub2, sub2, _ = _build(data_dir)
    report = eco2.durability.restore()
    rebuilt = sub2.views
    print(
        f"restore: replayed={report.replayed} requeued={report.requeued} "
        f"rebuilds={eco2.metrics.value('views.sub.rebuilds')}"
    )
    for name in before:
        # Feeds lose arrival order across a rebuild; compare canonically.
        if rebuilt.canonical(name) != views.canonical(name):
            print(
                f"FAILED: rebuilt view {name!r} diverged: "
                f"{rebuilt.peek(name)!r}"
            )
            return 1
    if not _check_invariant(rebuilt):
        return 1
    print("OK: aggregates match recomputation, cache fresh, rebuild exact")
    return 0
