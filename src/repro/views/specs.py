"""Derived read-model specs: the incremental aggregations a subscriber
can maintain from the write stream.

Every spec is defined by two computations that must agree:

- :meth:`ViewSpec.apply` — the incremental step, fed one row transition
  ``(old_row, new_row)`` from the subscriber apply path. Deltas are
  *row-state-based*, not event-count-based, which is what makes them
  safe under flow-control coalescing: a message that absorbed three
  updates applies as one transition to the final attributes, and the
  view lands exactly where replaying the three would have.
- :meth:`ViewSpec.recompute` — the same aggregate from a full scan of
  the base rows. The ``INV_VIEW`` conformance invariant (and the
  durability rebuild path) is precisely ``canonical(incremental state)
  == canonical(recompute(rows))``.

``old_row is None`` means the row came into existence with this
transition; ``new_row is None`` means it was deleted. Both non-None is
an update. Specs never see the broker message — only engine row states
— so they are delivery-mode and engine agnostic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class ViewSpec:
    """One derived read model over a single subscribed model."""

    def __init__(self, name: str, model: str) -> None:
        self.name = name
        #: Local model name (the subscriber-side class name).
        self.model = model

    def initial(self) -> Dict[str, Any]:
        raise NotImplementedError

    def apply(
        self,
        state: Dict[str, Any],
        old_row: Optional[Dict[str, Any]],
        new_row: Optional[Dict[str, Any]],
    ) -> None:
        raise NotImplementedError

    def recompute(self, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        state = self.initial()
        for row in rows:
            self.apply(state, None, row)
        return state

    def read(self, state: Dict[str, Any]) -> Any:
        """The value served to readers."""
        raise NotImplementedError

    def canonical(self, state: Dict[str, Any]) -> Any:
        """Deterministic projection compared by ``INV_VIEW`` and the
        rebuild path. Defaults to :meth:`read`; order-sensitive views
        (feeds) override it with an order-free projection, because a
        full-scan recompute cannot know arrival order."""
        return self.read(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} over {self.model}>"


class CountView(ViewSpec):
    """Row count, optionally of rows matching a predicate."""

    def __init__(
        self,
        name: str,
        model: str,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> None:
        super().__init__(name, model)
        self.predicate = predicate

    def _matches(self, row: Optional[Dict[str, Any]]) -> bool:
        if row is None:
            return False
        return self.predicate(row) if self.predicate is not None else True

    def initial(self) -> Dict[str, Any]:
        return {"count": 0}

    def apply(self, state, old_row, new_row) -> None:
        state["count"] += int(self._matches(new_row)) - int(
            self._matches(old_row)
        )

    def read(self, state) -> int:
        return state["count"]


class SumView(ViewSpec):
    """Running sum of one numeric field."""

    def __init__(self, name: str, model: str, field: str) -> None:
        super().__init__(name, model)
        self.field = field

    def _value(self, row: Optional[Dict[str, Any]]):
        if row is None:
            return 0
        return row.get(self.field) or 0

    def initial(self) -> Dict[str, Any]:
        return {"sum": 0}

    def apply(self, state, old_row, new_row) -> None:
        state["sum"] += self._value(new_row) - self._value(old_row)

    def read(self, state):
        return state["sum"]


class TopKView(ViewSpec):
    """The k rows ranking highest on one numeric field.

    The state keeps every row's current value (a deletion or a score
    drop can promote *any* row into the top k, so a bounded candidate
    set cannot be maintained incrementally without rescans); ``read``
    ranks at read time. Ties break on row id so reads are
    deterministic across replicas."""

    def __init__(self, name: str, model: str, field: str, k: int = 10) -> None:
        super().__init__(name, model)
        self.field = field
        self.k = k

    def initial(self) -> Dict[str, Any]:
        return {"values": {}}

    def apply(self, state, old_row, new_row) -> None:
        values = state["values"]
        if new_row is None:
            values.pop(old_row["id"], None)
            return
        values[new_row["id"]] = new_row.get(self.field) or 0

    def read(self, state) -> List[List[Any]]:
        ranked = sorted(
            state["values"].items(), key=lambda kv: (-kv[1], str(kv[0]))
        )
        return [[row_id, value] for row_id, value in ranked[: self.k]]


class FeedView(ViewSpec):
    """Per-key activity feed: the most recent ``limit`` row ids per
    value of ``key_field`` (e.g. per-user timelines), newest first.

    Recency is apply order — the subscriber's causal frontier — so two
    replicas that applied the same stream show the same feeds. The
    :meth:`canonical` projection drops the ordering (full-scan
    recompute cannot reconstruct arrival order from bare rows)."""

    def __init__(
        self, name: str, model: str, key_field: str, limit: int = 20
    ) -> None:
        super().__init__(name, model)
        self.key_field = key_field
        self.limit = limit

    def initial(self) -> Dict[str, Any]:
        return {"feeds": {}}

    def apply(self, state, old_row, new_row) -> None:
        feeds = state["feeds"]
        if old_row is not None:
            old_key = old_row.get(self.key_field)
            if old_key in feeds and old_row["id"] in feeds[old_key]:
                feeds[old_key].remove(old_row["id"])
                if not feeds[old_key]:
                    del feeds[old_key]
        if new_row is None:
            return
        feed = feeds.setdefault(new_row.get(self.key_field), [])
        if new_row["id"] in feed:
            feed.remove(new_row["id"])
        # Full membership is kept (the limit applies at read time):
        # trimming here would make the state depend on arrival order in
        # a way a full-scan recompute could never reproduce.
        feed.insert(0, new_row["id"])

    def read(self, state) -> Dict[Any, List[Any]]:
        return {
            key: list(ids[: self.limit]) for key, ids in state["feeds"].items()
        }

    def canonical(self, state) -> Dict[str, List[str]]:
        return {
            str(key): sorted(str(row_id) for row_id in ids)
            for key, ids in state["feeds"].items()
        }
