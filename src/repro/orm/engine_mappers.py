"""Per-engine mappers (Table 3's ORM adapters).

Each mapper is the analogue of one Ruby ORM from the paper:
ActiveRecord (relational), Mongoid (document), Cequel (columnar),
Stretcher (search), Neo4j (graph). Engines without ``RETURNING`` use the
read-back protocol of §4.1: perform the write, then issue an additional
read query to capture the written row.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.databases.columnar.engine import ColumnFamily
from repro.databases.relational.expression import where_from_dict
from repro.databases.relational.schema import Column, TableSchema
from repro.databases.relational.types import (
    Boolean,
    ColumnType,
    Float,
    Integer,
    Json,
    Text,
    Timestamp,
)
from repro.errors import ORMError
from repro.orm.mapper import Mapper, Row

_PY_TO_COLUMN: Dict[type, Type[ColumnType]] = {
    int: Integer,
    float: Float,
    str: Text,
    bool: Boolean,
    list: Json,
    dict: Json,
}


def _column_type_for(py_type: Optional[type]) -> ColumnType:
    if py_type is None:
        return Json()
    if py_type is Timestamp:
        return Timestamp()
    ctype = _PY_TO_COLUMN.get(py_type)
    return ctype() if ctype is not None else Json()


class RelationalMapper(Mapper):
    """ActiveRecord stand-in over the relational engine."""

    engine_families = ("relational", "postgresql", "mysql", "oracle")

    def ensure_storage(self) -> None:
        if self.db.has_table(self.table):
            return
        columns = [
            Column(f.name, _column_type_for(f.py_type))
            for f in self.model_cls.persisted_fields().values()
            if f.name != "id"
        ]
        self.db.create_table(TableSchema(self.table, columns))

    def _do_insert(self, attrs: Row) -> Row:
        if self.db.supports_returning:
            return self.db.insert(self.table, attrs, returning=True)
        # MySQL-like path: INSERT, then an additional read query (§4.1).
        self.db.insert(self.table, attrs)
        rows = self.db.select(
            self.table, order_by=("id", "desc"), limit=1
        )
        if attrs.get("id") is not None:
            return self.db.get(self.table, attrs["id"])
        return rows[0]

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        where = where_from_dict({"id": row_id})
        if self.db.supports_returning:
            rows = self.db.update(self.table, where, attrs, returning=True)
            if not rows:
                raise ORMError(f"update of missing row {row_id} in {self.table!r}")
            return rows[0]
        changed = self.db.update(self.table, where, attrs)
        if not changed:
            raise ORMError(f"update of missing row {row_id} in {self.table!r}")
        return self.db.get(self.table, row_id)

    def _do_delete(self, row_id: Any) -> Row:
        where = where_from_dict({"id": row_id})
        if self.db.supports_returning:
            rows = self.db.delete(self.table, where, returning=True)
            return rows[0] if rows else {"id": row_id}
        # Read-back first: once deleted the row is gone.
        old = self.db.get(self.table, row_id)
        self.db.delete(self.table, where)
        return old if old is not None else {"id": row_id}

    def _do_find(self, row_id: Any) -> Optional[Row]:
        return self.db.get(self.table, row_id)

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        return self.db.select(
            self.table,
            where=where_from_dict(conditions),
            limit=limit,
            order_by=order_by,
        )

    def _do_count(self, conditions: Row) -> int:
        return self.db.count(self.table, where=where_from_dict(conditions))

    def current_transaction(self):
        return self.db.current_transaction()


class DocumentMapper(Mapper):
    """Mongoid stand-in; translates ``id`` <-> ``_id``."""

    engine_families = ("document", "mongodb", "tokumx", "rethinkdb")

    @staticmethod
    def _to_doc(attrs: Row) -> Row:
        doc = dict(attrs)
        if "id" in doc:
            doc["_id"] = doc.pop("id")
        return doc

    @staticmethod
    def _to_attrs(doc: Optional[Row]) -> Optional[Row]:
        if doc is None:
            return None
        attrs = dict(doc)
        attrs["id"] = attrs.pop("_id")
        return attrs

    def _do_insert(self, attrs: Row) -> Row:
        doc = self._to_doc({k: v for k, v in attrs.items() if v is not None or k != "id"})
        if doc.get("_id") is None:
            doc.pop("_id", None)
        return self._to_attrs(self.db.insert_one(self.table, doc))

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        patch = {k: v for k, v in attrs.items() if k != "id"}
        doc = self.db.update_one(self.table, {"_id": row_id}, {"$set": patch})
        if doc is None:
            raise ORMError(f"update of missing document {row_id} in {self.table!r}")
        return self._to_attrs(doc)

    def _do_delete(self, row_id: Any) -> Row:
        doc = self.db.delete_one(self.table, {"_id": row_id})
        return self._to_attrs(doc) if doc is not None else {"id": row_id}

    def _do_find(self, row_id: Any) -> Optional[Row]:
        return self._to_attrs(self.db.get(self.table, row_id))

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        query = self._to_doc(dict(conditions))
        sort = None
        if order_by is not None:
            field, direction = order_by
            if field == "id":
                field = "_id"
            sort = (field, -1 if direction == "desc" else 1)
        docs = self.db.find(self.table, query, sort=sort, limit=limit)
        return [self._to_attrs(d) for d in docs]

    def _do_count(self, conditions: Row) -> int:
        return self.db.count(self.table, self._to_doc(dict(conditions)))

    def current_transaction(self):
        if self.db.supports_transactions:
            return self.db.current_transaction()
        return None


class ColumnarMapper(Mapper):
    """Cequel stand-in over the Cassandra-like engine.

    No ``RETURNING``: every write is followed by a read-back (§4.1).
    Deletes capture the row before tombstoning it.
    """

    engine_families = ("columnar", "cassandra")

    def ensure_storage(self) -> None:
        if not self.db.has_table(self.table):
            self.db.create_table(ColumnFamily(self.table, partition_key="id"))

    def _do_insert(self, attrs: Row) -> Row:
        rowkey = self.db.put(self.table, {k: v for k, v in attrs.items() if v is not None})
        return self.db.get(self.table, rowkey)

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        values = dict(attrs)
        values["id"] = row_id
        self.db.put(self.table, values)
        return self.db.get_by_id(self.table, row_id)

    def _do_delete(self, row_id: Any) -> Row:
        old = self.db.get_by_id(self.table, row_id)
        self.db.delete(self.table, (row_id,))
        return old if old is not None else {"id": row_id}

    def _do_find(self, row_id: Any) -> Optional[Row]:
        return self.db.get_by_id(self.table, row_id)

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        if set(conditions) == {"id"}:
            row = self.db.get_by_id(self.table, conditions["id"])
            return [row] if row is not None else []
        rows = [
            row
            for row in self.db.scan(self.table)
            if all(row.get(k) == v for k, v in conditions.items())
        ]
        if order_by is not None:
            field, direction = order_by
            rows.sort(key=lambda r: (r.get(field) is None, r.get(field)),
                      reverse=(direction == "desc"))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def _do_count(self, conditions: Row) -> int:
        if not conditions:
            return self.db.count(self.table)
        return len(self._do_where(conditions, None, None))


class SearchMapper(Mapper):
    """Stretcher stand-in over the Elasticsearch-like engine.

    Models may declare per-field analyzers via ``__analyzers__`` on the
    model class (the ``analyzer: :simple`` of Sub1b in Fig 4).
    """

    engine_families = ("search", "elasticsearch")

    def ensure_storage(self) -> None:
        if not self.db.has_table(self.table):
            analyzers = getattr(self.model_cls, "__analyzers__", None)
            self.db.create_index(self.table, analyzers=analyzers)

    @staticmethod
    def _to_attrs(doc: Optional[Row]) -> Optional[Row]:
        if doc is None:
            return None
        attrs = dict(doc)
        attrs["id"] = attrs.pop("_id")
        return attrs

    def _do_insert(self, attrs: Row) -> Row:
        doc = {k: v for k, v in attrs.items() if k != "id"}
        if attrs.get("id") is not None:
            doc["_id"] = attrs["id"]
        return self._to_attrs(self.db.index_doc(self.table, doc))

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        doc = {k: v for k, v in attrs.items() if k != "id"}
        doc["_id"] = row_id
        return self._to_attrs(self.db.index_doc(self.table, doc))

    def _do_delete(self, row_id: Any) -> Row:
        doc = self.db.delete_doc(self.table, row_id)
        return self._to_attrs(doc) if doc is not None else {"id": row_id}

    def _do_find(self, row_id: Any) -> Optional[Row]:
        return self._to_attrs(self.db.get(self.table, row_id))

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        hits = self.db.search(self.table, size=None)
        rows = [
            self._to_attrs(doc)
            for doc, _score in hits
        ]
        rows = [
            row for row in rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]
        rows.sort(key=lambda r: str(r["id"]))
        if order_by is not None:
            field, direction = order_by
            rows.sort(key=lambda r: (r.get(field) is None, r.get(field)),
                      reverse=(direction == "desc"))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def _do_count(self, conditions: Row) -> int:
        if not conditions:
            return self.db.count(self.table)
        return len(self._do_where(conditions, None, None))


class GraphMapper(Mapper):
    """Neo4j ORM stand-in: each model instance is a labelled node.

    Relationships are managed by application code or Synapse observers
    (Example 2); the mapper handles node CRUD only.
    """

    engine_families = ("graph", "neo4j")

    @property
    def label(self) -> str:
        return self.model_cls.__name__

    def _do_insert(self, attrs: Row) -> Row:
        props = {k: v for k, v in attrs.items() if v is not None or k != "id"}
        if props.get("id") is None:
            props.pop("id", None)
        return self.db.create_node(self.label, props)

    def _do_update(self, row_id: Any, attrs: Row) -> Row:
        props = {k: v for k, v in attrs.items() if k != "id"}
        return self.db.update_node(row_id, props)

    def _do_delete(self, row_id: Any) -> Row:
        props = self.db.delete_node(row_id)
        return props if props is not None else {"id": row_id}

    def _do_find(self, row_id: Any) -> Optional[Row]:
        return self.db.get_node(row_id)

    def _do_where(
        self, conditions: Row, limit: Optional[int], order_by: Optional[tuple]
    ) -> List[Row]:
        rows = self.db.find_nodes(self.label, conditions)
        if order_by is not None:
            field, direction = order_by
            rows.sort(key=lambda r: (r.get(field) is None, r.get(field)),
                      reverse=(direction == "desc"))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def _do_count(self, conditions: Row) -> int:
        if not conditions:
            return self.db.count_nodes(self.label)
        return len(self.db.find_nodes(self.label, conditions))
