"""Field descriptors for model attributes.

``Field`` is a persisted attribute. ``VirtualField`` is the paper's
*virtual attribute* (§3.1): a programmer-provided getter/setter pair that
is not in the DB schema but can be published and subscribed, used to map
mismatching data types across engines (Example 3).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Type


class Field:
    """A persisted model attribute.

    ``default`` may be a value or a zero-argument callable (evaluated per
    instance). ``py_type`` is advisory: mappers use it to derive column
    types on schema-ful engines.
    """

    def __init__(
        self,
        py_type: Optional[Type] = None,
        default: Any = None,
        nullable: bool = True,
    ) -> None:
        self.py_type = py_type
        self.default = default
        self.nullable = nullable
        self.name: str = ""  # assigned by the metaclass

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def default_value(self) -> Any:
        if callable(self.default):
            return self.default()
        return self.default

    def __get__(self, instance: Any, owner: type) -> Any:
        if instance is None:
            return self
        return instance._attributes.get(self.name)

    def __set__(self, instance: Any, value: Any) -> None:
        instance._write_attribute(self.name, value)

    def __repr__(self) -> str:
        return f"<Field {self.name}>"


class VirtualField:
    """A non-persisted attribute backed by getter/setter methods.

    By convention the model defines ``<name>_get(self)`` and/or
    ``<name>_set(self, value)``. Publishing a virtual attribute calls the
    getter; a subscriber receiving it calls the setter.
    """

    def __init__(
        self,
        getter: Optional[Callable] = None,
        setter: Optional[Callable] = None,
    ) -> None:
        self.getter = getter
        self.setter = setter
        self.name: str = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def _resolve_getter(self, instance: Any) -> Optional[Callable]:
        if self.getter is not None:
            return lambda: self.getter(instance)
        method = getattr(instance, f"{self.name}_get", None)
        return method

    def _resolve_setter(self, instance: Any) -> Optional[Callable]:
        if self.setter is not None:
            return lambda value: self.setter(instance, value)
        return getattr(instance, f"{self.name}_set", None)

    def __get__(self, instance: Any, owner: type) -> Any:
        if instance is None:
            return self
        getter = self._resolve_getter(instance)
        if getter is None:
            raise AttributeError(
                f"virtual attribute {self.name!r} has no getter "
                f"(define {self.name}_get)"
            )
        return getter()

    def __set__(self, instance: Any, value: Any) -> None:
        setter = self._resolve_setter(instance)
        if setter is None:
            raise AttributeError(
                f"virtual attribute {self.name!r} has no setter "
                f"(define {self.name}_set)"
            )
        setter(value)

    def __repr__(self) -> str:
        return f"<VirtualField {self.name}>"
