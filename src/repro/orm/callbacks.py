"""Active-model callbacks (§2, §3.1).

Decorate instance methods to run them around persistence operations::

    class User(Model):
        email = Field(str)

        @after_create
        def send_welcome(self):
            ...

Subscribers rely on these callbacks to post-process replicated updates
(compute fields, denormalise, notify) — Fig 2 of the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

HOOK_ATTR = "_repro_callback_hooks"

EVENTS = (
    "before_create",
    "after_create",
    "before_update",
    "after_update",
    "before_destroy",
    "after_destroy",
    "before_save",
    "after_save",
)


def _make_decorator(event: str) -> Callable[[Callable], Callable]:
    def decorator(fn: Callable) -> Callable:
        hooks = list(getattr(fn, HOOK_ATTR, ()))
        hooks.append(event)
        setattr(fn, HOOK_ATTR, hooks)
        return fn

    decorator.__name__ = event
    return decorator


before_create = _make_decorator("before_create")
after_create = _make_decorator("after_create")
before_update = _make_decorator("before_update")
after_update = _make_decorator("after_update")
before_destroy = _make_decorator("before_destroy")
after_destroy = _make_decorator("after_destroy")
before_save = _make_decorator("before_save")
after_save = _make_decorator("after_save")


def collect_callbacks(namespace: Dict[str, Any], bases: Tuple[type, ...]) -> Dict[str, List[str]]:
    """Gather callback method names per event, inheriting from bases."""
    table: Dict[str, List[str]] = {event: [] for event in EVENTS}
    for base in reversed(bases):
        inherited = getattr(base, "_callbacks", None)
        if inherited:
            for event, names in inherited.items():
                for name in names:
                    if name not in table[event]:
                        table[event].append(name)
    for name, value in namespace.items():
        for event in getattr(value, HOOK_ATTR, ()):
            if name not in table[event]:
                table[event].append(name)
    return table


def run_callbacks(instance: Any, event: str) -> None:
    """Invoke every callback registered for ``event`` on the instance."""
    for name in instance._callbacks.get(event, ()):
        getattr(instance, name)()
