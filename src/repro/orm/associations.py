"""Model associations: ``belongs_to`` and ``has_many``.

``BelongsTo`` implicitly declares the ``<name>_id`` foreign-key field
(added by the model metaclass) and resolves through the model registry,
so associated models may live in the same service regardless of engine.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ORMError


def snake_case(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


class BelongsTo:
    """``author = BelongsTo("User")`` adds an ``author_id`` field and a
    lazy ``author`` accessor."""

    def __init__(self, target: str, foreign_key: Optional[str] = None) -> None:
        self.target = target
        self.name: str = ""
        self.foreign_key = foreign_key

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name
        if self.foreign_key is None:
            self.foreign_key = f"{name}_id"

    def _target_cls(self, instance: Any) -> type:
        registry = instance._registry
        target = registry.get(self.target)
        if target is None:
            raise ORMError(
                f"association {self.name!r}: model {self.target!r} not registered"
            )
        return target

    def __get__(self, instance: Any, owner: type) -> Any:
        if instance is None:
            return self
        fk_value = instance._attributes.get(self.foreign_key)
        if fk_value is None:
            return None
        return self._target_cls(instance).find_by(id=fk_value)

    def __set__(self, instance: Any, value: Any) -> None:
        instance._write_attribute(self.foreign_key, None if value is None else value.id)


class HasMany:
    """``comments = HasMany("Comment")`` resolves to
    ``Comment.where(post_id=self.id)`` for a ``Post`` owner."""

    def __init__(self, target: str, foreign_key: Optional[str] = None) -> None:
        self.target = target
        self.foreign_key = foreign_key
        self.name: str = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name
        if self.foreign_key is None:
            self.foreign_key = f"{snake_case(owner.__name__)}_id"

    def __get__(self, instance: Any, owner: type) -> List[Any]:
        if instance is None:
            return self  # type: ignore[return-value]
        registry = instance._registry
        target = registry.get(self.target)
        if target is None:
            raise ORMError(
                f"association {self.name!r}: model {self.target!r} not registered"
            )
        if instance.id is None:
            return []
        return target.where(**{self.foreign_key: instance.id})
